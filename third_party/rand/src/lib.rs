//! Offline vendored **stub** of `rand` 0.8.
//!
//! This build environment has no network access, so the real `rand`
//! cannot be fetched. The workspace uses a narrow, fully deterministic
//! slice of the API — `StdRng::seed_from_u64`, `Rng::gen_range` over
//! integer/float ranges and `Rng::gen_bool` — which this stub
//! implements on top of xoshiro256++ seeded via SplitMix64.
//!
//! The stream differs from real `rand`'s ChaCha12-based `StdRng`, so
//! seeded sequences are *internally* reproducible but not identical to
//! upstream. Everything in-repo treats seeds as opaque reproducibility
//! handles, so only determinism matters, not the exact stream.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: the entropy source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling interface, blanket-implemented for every
/// [`RngCore`] (mirrors real `rand`'s `Rng: RngCore` relationship).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface; only the `seed_from_u64` entry point is used.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// The standard deterministic generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named-generator module mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "cannot sample from empty range");
                let offset = (rng.next_u64() as u128 % span as u128) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let span = (end as i128) - (start as i128) + 1;
                assert!(span > 0, "cannot sample from empty range");
                let offset = (rng.next_u64() as u128 % span as u128) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let v: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w: u16 = rng.gen_range(1..=4);
            assert!((1..=4).contains(&w));
            let f: f64 = rng.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let n: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }
}
