//! Offline vendored stub of [loom](https://crates.io/crates/loom) 0.7.
//!
//! The real loom exhaustively explores thread interleavings of a
//! bounded concurrent model under the C11 memory model. This stub
//! keeps the same module surface (`loom::model`, `loom::thread`,
//! `loom::sync`, `loom::sync::atomic`) but re-exports the plain `std`
//! primitives and runs the model closure **once**, so `--cfg loom`
//! tests still execute as ordinary concurrent smoke tests offline.
//! Swapping in the real loom (delete the `[patch.crates-io]` entry and
//! this directory) upgrades them to exhaustive interleaving checks
//! with no source changes.

/// Runs `model` once on plain threads. The real loom runs it for every
/// distinguishable interleaving; keep closures `Fn` (re-runnable) so
/// they stay compatible with the real implementation.
pub fn model<F>(model: F)
where
    F: Fn() + Sync + Send + 'static,
{
    model();
}

/// `std::thread` stand-ins (`loom::thread::spawn` etc.).
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// `std::sync` stand-ins (`loom::sync::Arc`, mutexes, atomics).
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    /// `std::sync::atomic` stand-ins. The real loom intercepts every
    /// access to explore reorderings; the stub inherits `std`'s
    /// whole-program sequential consistency on the host.
    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}
