//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among alternatives (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("options", &self.options.len())
            .finish()
    }
}

impl<V> Union<V> {
    /// Builds a union; panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
