//! `prop::sample`: index and element selection.

use crate::arbitrary::Arbitrary;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};

/// An opaque uniform index, resolved against a collection length.
#[derive(Debug, Clone, Copy)]
pub struct Index(u64);

impl Index {
    /// Resolves the index against a collection of `size` elements.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "cannot index an empty collection");
        (self.0 % size as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index(rng.next_u64())
    }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    values: Vec<T>,
}

/// Uniformly selects one of `values`.
///
/// # Panics
///
/// Panics if `values` is empty.
#[must_use]
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select requires a non-empty list");
    Select { values }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.values[rng.gen_range(0..self.values.len())].clone()
    }
}
