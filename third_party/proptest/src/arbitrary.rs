//! `any::<T>()` for the primitive types the workspace tests use.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Unit interval: every in-repo use treats f64 as a proportion.
        rng.gen_range(0.0..1.0)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.gen_range(0.0f32..1.0)
    }
}
