//! Offline vendored **stub** of `proptest`.
//!
//! This build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate reimplements the slice of the API the
//! workspace's property tests use — [`strategy::Strategy`] with
//! `prop_map`/`prop_flat_map`, ranges and tuples as strategies,
//! [`arbitrary::any`], `prop::sample`/`prop::collection`, and the
//! `proptest!`/`prop_assert*`/`prop_oneof!` macros — as a plain
//! generate-and-test harness.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its inputs' seed, not a
//!   minimized input;
//! * **derived deterministic seeds** — each test's cases derive from a
//!   hash of the test name, so runs are reproducible without a
//!   persistence file;
//! * **rejection via regeneration** — `prop_assume!` rejects the case
//!   and the harness draws a fresh one (bounded retries).
//!
//! Case count: `ProptestConfig::with_cases(n)` or the `PROPTEST_CASES`
//! environment variable (default 32).

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Everything the workspace's `use proptest::prelude::*;` expects.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of real proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

/// Entry macro: `proptest! { fn name(x in strat, ..) { body } .. }`,
/// optionally led by `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ $(,)? ) $body:block
      )* ) => {
        $(
            // The caller writes `#[test]` inside the block (upstream
            // proptest convention); it passes through via `$meta`.
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(
                    &__config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__rng| {
                        let ( $($arg,)* ) = (
                            $($crate::strategy::Strategy::generate(&($strat), __rng),)*
                        );
                        let __result: $crate::test_runner::TestCaseResult =
                            (|| { $body Ok(()) })();
                        __result
                    },
                );
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{:?}` == `{:?}`",
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "{}: `{:?}` vs `{:?}`",
                    format!($($fmt)+),
                    __l,
                    __r
                );
            }
        }
    };
}

/// `prop_assert_ne!(left, right)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{:?}` != `{:?}`",
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "{}: `{:?}` vs `{:?}`",
                    format!($($fmt)+),
                    __l,
                    __r
                );
            }
        }
    };
}

/// `prop_assume!(cond)`: reject the current case (a fresh one is drawn).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        $crate::prop_assume!($cond, concat!("assumption failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_oneof![s1, s2, ..]`: uniform choice among boxed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
