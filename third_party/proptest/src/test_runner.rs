//! Deterministic generate-and-test harness.

use rand::{RngCore, SeedableRng, StdRng};

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed: the property is falsified.
    Fail(String),
    /// `prop_assume!` rejected the inputs; draw fresh ones.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection.
    #[must_use]
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies; deterministic per (test, case index).
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Derives a generator for one case.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

fn name_seed(name: &str) -> u64 {
    // FNV-1a over the fully qualified test name: stable across runs.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `config.cases` accepted cases of `case`, panicking on the first
/// failure with the case's derivation seed (rerun with the same build
/// for an identical sequence).
///
/// # Panics
///
/// Panics if a case fails or if rejections exhaust the retry budget.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases);
    let base = name_seed(name);
    let max_attempts = cases.saturating_mul(10).max(64);
    let mut accepted = 0u32;
    let mut attempt = 0u32;
    while accepted < cases {
        assert!(
            attempt < max_attempts,
            "{name}: too many rejected cases ({accepted}/{cases} accepted \
             after {attempt} attempts)"
        );
        let seed = base ^ (u64::from(attempt)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        attempt += 1;
        let mut rng = TestRng::from_seed(seed);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {accepted} (seed {seed:#018x}) failed: {msg}")
            }
        }
    }
}
