//! Offline vendored **stub** of `serde_json`.
//!
//! Keeps callers compiling against the `to_string`/`from_str` API; every
//! call returns [`Error::Unsupported`] at runtime because the stub
//! `serde` traits carry no serialization logic. Tests that need real
//! JSON round-trips are `#[ignore]`d while this stub is patched in.

use std::fmt;

/// Error type mirroring `serde_json::Error`'s public face.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The offline stub cannot serialize or deserialize anything.
    Unsupported,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stub: serialization unavailable in offline build")
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Always fails: the offline stub carries no serialization logic.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] unconditionally.
pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Err(Error::Unsupported)
}

/// Always fails: the offline stub carries no serialization logic.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] unconditionally.
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Err(Error::Unsupported)
}

/// Always fails: the offline stub carries no deserialization logic.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] unconditionally.
pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    Err(Error::Unsupported)
}
