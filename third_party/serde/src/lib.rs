//! Offline vendored **stub** of `serde`.
//!
//! This build environment has no network access and an empty cargo
//! registry, so the real `serde` cannot be fetched. The workspace only
//! needs the *trait bounds* and *derive attributes* to compile; actual
//! serialization is exercised nowhere in tier-1 (the serde round-trip
//! integration tests are `#[ignore]`d under the stub). The traits here
//! are blanket-implemented markers and the derives expand to nothing,
//! so `#[derive(Serialize, Deserialize)]` and `T: Serialize` bounds
//! compile unchanged against this crate.
//!
//! Replace with the real `serde` by deleting the `[patch.crates-io]`
//! entries in the workspace `Cargo.toml` once a registry is available.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Stand-ins for the `serde::de` module names used in trait bounds.
pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: Sized {}
    impl<T> DeserializeOwned for T {}

    pub use crate::Deserialize;
}

/// Stand-in for the `serde::ser` module.
pub mod ser {
    pub use crate::Serialize;
}
