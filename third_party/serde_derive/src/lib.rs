//! Offline vendored **stub** of `serde_derive`: the derives expand to
//! nothing (the stub `serde` traits are blanket-implemented, so no impl
//! needs to be generated). `attributes(serde)` keeps `#[serde(...)]`
//! field/container attributes accepted.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
