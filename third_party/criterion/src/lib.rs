//! Offline vendored **stub** of `criterion`.
//!
//! This build environment has no network access, so the real `criterion`
//! cannot be fetched. The workspace's benches only need the
//! group/`bench_with_input`/`iter` API and a trustworthy wall-clock
//! number; this stub times `sample_size` samples after a short warm-up
//! and prints mean/min per benchmark (no statistics, plots or HTML
//! reports). Benchmark names and CLI substring filtering behave like
//! the real crate, so `cargo bench -p tta-bench --bench model_checking`
//! output stays grep-compatible.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Throughput annotation; printed as elements/sec or bytes/sec.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter.
    #[must_use]
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// Identifier from a parameter only.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards CLI args; the first non-flag argument is
        // a substring filter, flags are accepted and ignored.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion {
            filter,
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Mirrors real criterion's CLI hook; the stub configures in
    /// [`Criterion::default`].
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(id.to_string(), sample_size, None, f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one<F>(
        &mut self,
        id: String,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(&id) {
            return;
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        };
        f(&mut bencher);
        bencher.report(&id, throughput);
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(full, samples, self.throughput, f);
        self
    }

    /// Benchmarks `f` under `group/id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report output is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` for a short warm-up, then `sample_size` timed samples.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: at least one run, at most ~200 ms.
        let warmup_start = Instant::now();
        loop {
            std::hint::black_box(f());
            if warmup_start.elapsed() > Duration::from_millis(200) {
                break;
            }
            if self.samples.capacity() != 0 && warmup_start.elapsed() > Duration::from_millis(50) {
                break;
            }
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{id:<50} (not exercised)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().expect("non-empty");
        let rate = throughput
            .map(|t| {
                let per_sec = match t {
                    Throughput::Elements(n) => (n as f64 / mean.as_secs_f64(), "elem/s"),
                    Throughput::Bytes(n) => (n as f64 / mean.as_secs_f64(), "B/s"),
                };
                format!("  thrpt: {} {}", format_rate(per_sec.0), per_sec.1)
            })
            .unwrap_or_default();
        println!(
            "{id:<50} time: [{} {} {}]{}",
            format_duration(min),
            format_duration(mean),
            format_duration(self.samples.iter().max().copied().expect("non-empty")),
            rate
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn format_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
