//! # tta
//!
//! Facade crate for the reproduction of *Fault Tolerance Tradeoffs in
//! Moving from Decentralized to Centralized Embedded Systems* (Morris,
//! Kroening, Koopman — DSN 2004).
//!
//! The paper asks what happens when a decentralized safety-critical
//! system (the Time-Triggered Architecture running TTP/C) centralizes
//! authority into star-coupler bus guardians. This workspace builds the
//! whole stack from scratch and answers the question executably:
//!
//! * [`types`] — bit-accurate TTP/C frames, CRC-24, C-state, MEDL;
//! * [`protocol`] — the TTP/C controller state machine (big-bang cold
//!   start, clique avoidance, membership, clock sync);
//! * [`guardian`] — local guardians and central star couplers with the
//!   four authority levels the paper compares;
//! * [`modelcheck`] — an explicit-state model checker (the SMV
//!   substitute) with shortest-counterexample BFS;
//! * [`liveness`] — temporal liveness on top of it: `F`/`G`/leads-to/`GF`
//!   properties under weak fairness, SCC-based fair-cycle detection, and
//!   lasso (stem + cycle) counterexamples;
//! * [`core`] — the paper's Section 4 cluster model and Section 5
//!   property, one call away: [`core::verify_cluster`];
//! * [`sim`] — a fault-injection simulator (the SWIFI substitute) with
//!   bus-vs-star campaigns;
//! * [`analysis`] — the Section 6 buffer/frame/clock-rate equations and
//!   the Figure 3 curve;
//! * [`conformance`] — cross-engine conformance: a trace-replay oracle
//!   lifting simulator runs into the checker's vocabulary, a TOML
//!   scenario DSL executed by both engines, and golden snapshots of the
//!   paper's two counterexample traces.
//!
//! # Quickstart
//!
//! ```
//! use tta::core::{verify_cluster, ClusterConfig, Verdict};
//! use tta::guardian::CouplerAuthority;
//!
//! // The paper's headline result in three lines: full-frame buffering in
//! // a central guardian breaks the fault-tolerance property that every
//! // lesser authority level satisfies.
//! let safe = verify_cluster(&ClusterConfig::paper(CouplerAuthority::SmallShifting));
//! let broken = verify_cluster(&ClusterConfig::paper(CouplerAuthority::FullShifting));
//! assert_eq!(safe.verdict, Verdict::Holds);
//! assert_eq!(broken.verdict, Verdict::Violated);
//! ```
//!
//! See the `examples/` directory for runnable scenarios and the `exp_*`
//! binaries in `tta-bench` for regenerating every table and figure of the
//! paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tta_analysis as analysis;
pub use tta_campaignd as campaignd;
pub use tta_conformance as conformance;
pub use tta_core as core;
pub use tta_fuzz as fuzz;
pub use tta_guardian as guardian;
pub use tta_liveness as liveness;
pub use tta_modelcheck as modelcheck;
pub use tta_protocol as protocol;
pub use tta_sim as sim;
pub use tta_types as types;
