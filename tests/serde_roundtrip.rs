//! Serde round-trips for the library's data structures: reports, traces
//! and wire types must serialize losslessly (they are the artifacts a
//! downstream tool would persist).
//!
//! Ignored by default: the offline build patches `serde_json` with a
//! stub that can serialize but not parse. Run with `--ignored` against
//! a real dependency tree to exercise the round-trips.

use tta::core::{verify_cluster, ClusterConfig, ClusterState};
use tta::guardian::CouplerAuthority;
use tta::modelcheck::Trace;
use tta::sim::{Campaign, CampaignReport, FaultPlan, Scenario, SimBuilder, Topology};
use tta::types::{CState, Frame, FrameBuilder, FrameClass, Medl, MembershipVector, NodeId};

fn json_roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
#[ignore = "requires a real serde_json; the offline stub cannot round-trip"]
fn frames_round_trip_through_serde() {
    let frame = FrameBuilder::new(FrameClass::XFrame, NodeId::new(2))
        .cstate(CState::new(77, 3, 1, MembershipVector::full(4)))
        .data_bits(&[1, 2, 3])
        .build()
        .expect("valid frame");
    let back: Frame = json_roundtrip(&frame);
    assert_eq!(back, frame);
    // Wire encoding survives too: re-encoded bits are identical.
    assert_eq!(back.encode(), frame.encode());
}

#[test]
#[ignore = "requires a real serde_json; the offline stub cannot round-trip"]
fn medls_round_trip_through_serde() {
    let medl = Medl::identity(5).expect("valid schedule");
    assert_eq!(json_roundtrip(&medl), medl);
}

#[test]
#[ignore = "requires a real serde_json; the offline stub cannot round-trip"]
fn cluster_configs_round_trip_through_serde() {
    for config in [
        ClusterConfig::paper(CouplerAuthority::Passive),
        ClusterConfig::paper_trace_cold_start(),
        ClusterConfig::paper_trace_cstate(),
    ] {
        assert_eq!(json_roundtrip(&config), config);
    }
}

#[test]
#[ignore = "requires a real serde_json; the offline stub cannot round-trip"]
fn counterexample_traces_round_trip_through_serde() {
    let report = verify_cluster(&ClusterConfig::paper(CouplerAuthority::FullShifting));
    let trace = report.counterexample.expect("violated");
    let back: Trace<ClusterState> = json_roundtrip(&trace);
    assert_eq!(back, trace);
    assert_eq!(
        back.violating_state().frozen_victim(),
        trace.violating_state().frozen_victim()
    );
}

#[test]
#[ignore = "requires a real serde_json; the offline stub cannot round-trip"]
fn sim_reports_round_trip_through_serde() {
    let report = SimBuilder::new(4)
        .topology(Topology::Star)
        .slots(120)
        .plan(FaultPlan::none())
        .build()
        .run();
    let json = serde_json::to_string(&report).expect("serializes");
    let back: tta::sim::SimReport = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back.final_states(), report.final_states());
    assert_eq!(back.startup_slot(), report.startup_slot());
    assert_eq!(back.log().entries().len(), report.log().entries().len());
}

#[test]
#[ignore = "requires a real serde_json; the offline stub cannot round-trip"]
fn campaign_reports_round_trip_through_serde() {
    let report = Campaign::new(4, Topology::Bus, CouplerAuthority::Passive)
        .trials(4)
        .run(Scenario::FaultFree);
    let back: CampaignReport = json_roundtrip(&report);
    assert_eq!(back, report);
}

#[test]
#[ignore = "requires a real serde_json; the offline stub cannot round-trip"]
fn restart_policies_and_persistence_round_trip_through_serde() {
    for policy in [
        tta::protocol::RestartPolicy::Never,
        tta::protocol::RestartPolicy::Immediate,
        tta::protocol::RestartPolicy::BoundedRetry {
            max_restarts: 3,
            backoff_slots: 4,
        },
        tta::protocol::RestartPolicy::Watchdog { silence_slots: 8 },
    ] {
        assert_eq!(json_roundtrip(&policy), policy);
    }
    for persistence in [
        tta::sim::FaultPersistence::Transient,
        tta::sim::FaultPersistence::Intermittent { period: 6, duty: 2 },
        tta::sim::FaultPersistence::Permanent,
    ] {
        assert_eq!(json_roundtrip(&persistence), persistence);
    }
}

#[test]
#[ignore = "requires a real serde_json; the offline stub cannot round-trip"]
fn recovery_reports_round_trip_through_serde() {
    let report = Campaign::new(4, Topology::Star, CouplerAuthority::FullShifting)
        .trials(4)
        .restart_policy(tta::protocol::RestartPolicy::Immediate)
        .fault_duration(40)
        .run_recovery(Scenario::CouplerReplay);
    let back: tta::sim::RecoveryReport = json_roundtrip(&report);
    assert_eq!(back, report);
}
