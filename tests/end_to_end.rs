//! Cross-crate integration tests: the model checker, simulator, analysis
//! and wire layers must tell one consistent story.

use tta::analysis;
use tta::core::{verify_cluster, ClusterConfig, Verdict};
use tta::guardian::{buffer, CouplerAuthority, CouplerFaultMode};
use tta::sim::{
    Campaign, CouplerFaultEvent, FaultPersistence, FaultPlan, Scenario, SimBuilder, Topology,
};
use tta::types::constants::{LINE_ENCODING_BITS, N_FRAME_MIN_BITS};

/// The formal model's verdicts and the simulator's observations agree on
/// passive coupler faults: tolerated by both.
#[test]
fn checker_and_simulator_agree_on_passive_faults() {
    // Checker: property holds for a small-shifting coupler (which can
    // exhibit silence and bad-frame faults but cannot replay).
    let checked = verify_cluster(&ClusterConfig::paper(CouplerAuthority::SmallShifting));
    assert_eq!(checked.verdict, Verdict::Holds);

    // Simulator: a persistent silence fault and a persistent noise fault
    // on channel 0 leave every healthy node running.
    for mode in [CouplerFaultMode::Silence, CouplerFaultMode::BadFrame] {
        let plan = FaultPlan::none().with_coupler_fault(CouplerFaultEvent {
            channel: 0,
            mode,
            from_slot: 0,
            to_slot: 400,
            persistence: FaultPersistence::Transient,
        });
        let report = SimBuilder::new(4)
            .topology(Topology::Star)
            .authority(CouplerAuthority::SmallShifting)
            .slots(400)
            .plan(plan)
            .build()
            .run();
        assert!(report.cluster_started(), "{mode:?}: {report}");
        assert!(report.healthy_frozen().is_empty(), "{mode:?}: {report}");
    }
}

/// The formal model's violation is reproducible as a concrete execution:
/// the replay fault disturbs a simulated cluster too.
#[test]
fn checker_violation_has_a_concrete_execution() {
    let checked = verify_cluster(&ClusterConfig::paper(CouplerAuthority::FullShifting));
    assert_eq!(checked.verdict, Verdict::Violated);

    let plan = FaultPlan::none().with_coupler_fault(CouplerFaultEvent {
        channel: 0,
        mode: CouplerFaultMode::OutOfSlot,
        from_slot: 12,
        to_slot: 400,
        persistence: FaultPersistence::Transient,
    });
    let report = SimBuilder::new(4)
        .topology(Topology::Star)
        .authority(CouplerAuthority::FullShifting)
        .slots(400)
        .plan(plan)
        .build()
        .run();
    assert!(
        !report.healthy_frozen().is_empty() || !report.cluster_started(),
        "{report}"
    );
}

/// Campaign-level shape of the paper's argument: each step up in guardian
/// authority removes fault classes — until full shifting adds one back.
#[test]
fn authority_ladder_matches_the_papers_tradeoff() {
    let trials = 16;
    let rate = |topology, authority, scenario| {
        Campaign::new(4, topology, authority)
            .trials(trials)
            .run(scenario)
            .propagation_rate()
    };

    // SOS: bus suffers; a reshaping star does not.
    let sos_bus = rate(
        Topology::Bus,
        CouplerAuthority::Passive,
        Scenario::SosSender,
    );
    let sos_star = rate(
        Topology::Star,
        CouplerAuthority::SmallShifting,
        Scenario::SosSender,
    );
    assert!(
        sos_bus > 0.3,
        "SOS must propagate on the bus (got {sos_bus})"
    );
    assert_eq!(sos_star, 0.0, "reshaping must contain SOS");

    // Masquerading cold start: blocked by any blocking hub.
    let masq_bus = rate(
        Topology::Bus,
        CouplerAuthority::Passive,
        Scenario::MasqueradeColdStart,
    );
    let masq_star = rate(
        Topology::Star,
        CouplerAuthority::TimeWindows,
        Scenario::MasqueradeColdStart,
    );
    assert!(masq_bus > 0.0, "masquerade must disturb the bus");
    assert_eq!(masq_star, 0.0, "semantic analysis must contain masquerade");

    // The replay fault exists only once full-frame buffering exists, and
    // it propagates there.
    let replay_small = Campaign::new(4, Topology::Star, CouplerAuthority::SmallShifting)
        .trials(trials)
        .run(Scenario::CouplerReplay);
    assert!(!replay_small.applicable());
    let replay_full = rate(
        Topology::Star,
        CouplerAuthority::FullShifting,
        Scenario::CouplerReplay,
    );
    assert!(replay_full > 0.0, "the new fault class must be observable");
}

/// The closed-form Section 6 bound and the executable guardian buffer
/// agree across a parameter sweep.
#[test]
fn closed_form_and_leaky_bucket_agree() {
    for frame_bits in [76u32, 512, 2076, 20_000, 115_000] {
        for rho in [1e-4, 2e-4, 1e-3, 1e-2] {
            let closed = analysis::min_buffer_bits(LINE_ENCODING_BITS, rho, frame_bits);
            let simulated =
                buffer::simulate_forwarding(frame_bits, 1.0, 1.0 - rho, LINE_ENCODING_BITS);
            let diff = (closed - f64::from(simulated.peak_occupancy_bits)).abs();
            assert!(
                diff <= 2.0,
                "f={frame_bits} ρ={rho}: closed {closed:.2} vs simulated {}",
                simulated.peak_occupancy_bits
            );
        }
    }
}

/// The eq. (6) frame size really is the knee: one step below the bound
/// fits in the guardian buffer, a much larger frame does not.
#[test]
fn eq6_is_the_feasibility_knee() {
    let rho = analysis::rho_from_crystal_ppm(100.0);
    let f_max = analysis::max_frame_bits(N_FRAME_MIN_BITS, LINE_ENCODING_BITS, rho)
        .expect("feasible")
        .round() as u32;
    assert_eq!(f_max, 115_000);
    let b_max = analysis::max_buffer_bits(N_FRAME_MIN_BITS);

    let at_knee = buffer::simulate_forwarding(f_max, 1.0, 1.0 - rho, LINE_ENCODING_BITS);
    assert!(
        at_knee.peak_occupancy_bits <= b_max + 1,
        "{}",
        at_knee.peak_occupancy_bits
    );

    let beyond = buffer::simulate_forwarding(2 * f_max, 1.0, 1.0 - rho, LINE_ENCODING_BITS);
    assert!(
        beyond.peak_occupancy_bits > b_max,
        "doubling the frame must overflow the permitted buffer"
    );
}

/// Wire-level sanity across crates: frames built from protocol-level
/// C-states survive the codec and the guardian's semantic filter.
#[test]
fn frames_flow_through_codec_and_semantic_filter() {
    use tta::guardian::reshape::{GuardianAction, SemanticFilter};
    use tta::types::{
        decode_frame, CState, FrameBuilder, FrameClass, MembershipVector, NodeId, SlotIndex,
    };

    let cstate = CState::new(64, 2, 0, MembershipVector::full(4));
    let frame = FrameBuilder::new(FrameClass::IFrame, NodeId::new(1))
        .cstate(cstate)
        .build()
        .expect("valid frame");
    let decoded = decode_frame(&frame.encode()).expect("codec round trip");
    assert_eq!(decoded, frame);

    let filter = SemanticFilter::new(CouplerAuthority::TimeWindows);
    let (action, _) = filter.filter(
        &decoded,
        SlotIndex::new(2),
        NodeId::new(1),
        true,
        None,
        None,
    );
    assert_eq!(action, GuardianAction::Forwarded);

    // The same frame on the wrong port is a masquerade and is blocked.
    let (action, _) = filter.filter(
        &decoded,
        SlotIndex::new(1),
        NodeId::new(0),
        true,
        None,
        None,
    );
    assert!(matches!(action, GuardianAction::BlockedMasquerade { .. }));
}

/// The conformance layer closes the loop through the facade: the checked-in
/// scenario for the paper's cold-start counterexample drives the checker,
/// the simulator and the trace-replay oracle, and all three agree.
#[test]
fn conformance_scenario_ties_the_engines_together() {
    let scenario = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join("coldstart_dup.toml");
    let outcome = tta::conformance::run_scenario_file(&scenario).expect("scenario loads");
    assert!(outcome.passed, "{}", outcome.report);
    assert!(
        outcome.report.contains("engines agree"),
        "{}",
        outcome.report
    );
}
