//! `tta-detlint` CLI: lint workspace sources for determinism and
//! concurrency-hygiene hazards.
//!
//! Exit codes follow the other lint CLIs in this tree: `0` clean under
//! the gate, `1` denied findings, `2` usage error.

use std::process::ExitCode;
use tta_detlint::{check_baseline, discover, run, Gate};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tta-detlint [PATHS...] [OPTIONS]\n\
         \n\
         Lints Rust sources for nondeterminism hazards (DL01-DL04),\n\
         concurrency hygiene (DL10-DL12) and audit bookkeeping (DL2x/DL30).\n\
         PATHS are files or directories (default: crates src), searched\n\
         recursively for .rs files; target/, third_party/, fixtures/ and\n\
         golden/ directories are skipped unless named explicitly.\n\
         \n\
         options:\n\
           --json                 line-oriented JSON output (byte-stable)\n\
           --deny warnings|CODE   fail on warnings, or on a specific code\n\
           --allow CODE           never fail on CODE (wins over --deny)\n\
           --threads N            worker threads (0 = auto; output identical)\n\
           --baseline PATH        compare allow inventory against PATH (drift = DL30)\n\
           --write-baseline PATH  write the current allow inventory to PATH\n\
           --list-codes           print the DL code catalog and exit\n\
           -q, --quiet            suppress non-denied diagnostics on stdout"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut json = false;
    let mut quiet = false;
    let mut threads = 0usize;
    let mut gate = Gate::default();
    let mut baseline: Option<String> = None;
    let mut write_baseline: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "-q" | "--quiet" => quiet = true,
            "--deny" => match args.next() {
                Some(v) if v == "warnings" => gate.deny_warnings = true,
                Some(v) => {
                    if tta_detlint::find_code(&v).is_none() {
                        eprintln!("tta-detlint: unknown code in --deny: {v}");
                        return usage();
                    }
                    gate.deny_codes.push(v);
                }
                None => return usage(),
            },
            "--allow" => match args.next() {
                Some(v) => {
                    if tta_detlint::find_code(&v).is_none() {
                        eprintln!("tta-detlint: unknown code in --allow: {v}");
                        return usage();
                    }
                    gate.allow_codes.push(v);
                }
                None => return usage(),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => threads = n,
                None => return usage(),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline = Some(v),
                None => return usage(),
            },
            "--write-baseline" => match args.next() {
                Some(v) => write_baseline = Some(v),
                None => return usage(),
            },
            "--list-codes" => {
                for code in tta_detlint::CATALOG {
                    println!(
                        "{:<7} {:<28} {:<8} {}",
                        code.id,
                        code.slug,
                        code.default_severity.name(),
                        code.summary
                    );
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => return usage(),
            other if other.starts_with('-') => {
                eprintln!("tta-detlint: unknown option: {other}");
                return usage();
            }
            other => paths.push(other.to_string()),
        }
    }

    if paths.is_empty() {
        paths = vec!["crates".into(), "src".into()];
    }
    let files = discover(&paths);
    if files.is_empty() {
        eprintln!("tta-detlint: no .rs files under {paths:?}");
        return ExitCode::from(2);
    }

    let mut report = run(&files, threads);

    if let Some(path) = &write_baseline {
        let text = tta_detlint::render_baseline(&report.allows_used);
        if let Err(err) = std::fs::write(path, text) {
            eprintln!("tta-detlint: cannot write baseline {path}: {err}");
            return ExitCode::from(2);
        }
        eprintln!(
            "tta-detlint: wrote {} allow entr{} to {path}",
            report.allows_used.len(),
            if report.allows_used.len() == 1 {
                "y"
            } else {
                "ies"
            }
        );
    }

    if let Some(path) = &baseline {
        match std::fs::read_to_string(path) {
            Ok(text) => check_baseline(&mut report, &text, path),
            Err(err) => {
                eprintln!("tta-detlint: cannot read baseline {path}: {err}");
                return ExitCode::from(2);
            }
        }
    }

    let output = if json {
        report.render_json(&gate)
    } else {
        report.render(&gate)
    };
    if !quiet || report.denied(&gate).next().is_some() {
        print!("{output}");
    }

    if report.denied(&gate).next().is_some() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
