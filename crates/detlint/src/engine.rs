//! The lint engine: file discovery, per-file rule runs with allow
//! merging, a deterministic thread pool, and baseline comparison.
//!
//! Determinism contract (the linter holds itself to the invariant it
//! checks): discovered files are sorted, each file is linted
//! independently, results are reassembled in file order, and no
//! timing or thread identity reaches the output — so `--json` output
//! is byte-stable across runs and `--threads` values.

use crate::annot::{self, AllowSite};
use crate::catalog;
use crate::diag::{Diagnostic, LintReport};
use crate::lex;
use crate::rules;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Directory names never descended into: build output, vendored stubs
/// (not first-party code), and the linter's own deliberately-dirty
/// fixtures and golden outputs.
const SKIP_DIRS: &[&str] = &["target", "third_party", "fixtures", "golden", ".git"];

/// Recursively discovers `.rs` files under each of `paths` (a path that
/// is itself a file is taken as-is, even under a skipped name — an
/// explicit argument is an explicit request). Returns `/`-separated
/// display paths, sorted and deduplicated.
#[must_use]
pub fn discover(paths: &[String]) -> Vec<String> {
    let mut found: Vec<String> = Vec::new();
    for path in paths {
        let p = Path::new(path);
        if p.is_file() {
            found.push(display_path(p));
        } else if p.is_dir() {
            walk(p, &mut found);
        }
    }
    found.sort();
    found.dedup();
    found
}

fn walk(dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for entry in entries {
        let name = entry
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if entry.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                walk(&entry, out);
            }
        } else if name.ends_with(".rs") {
            out.push(display_path(&entry));
        }
    }
}

fn display_path(p: &Path) -> String {
    let s = p.to_string_lossy().replace('\\', "/");
    s.strip_prefix("./").unwrap_or(&s).to_string()
}

/// Whole-file test context: the path runs through a `tests/`,
/// `benches/` or `examples/` directory. A `fixtures/` segment overrides
/// that — fixture files model production code (they are skipped during
/// discovery and only linted when named explicitly, precisely to be
/// judged by production rules).
#[must_use]
pub fn path_is_test(path: &str) -> bool {
    let mut is_test = false;
    for seg in path.split('/') {
        match seg {
            "tests" | "benches" | "examples" => is_test = true,
            "fixtures" => return false,
            _ => {}
        }
    }
    is_test
}

/// The outcome of linting one file: findings that survived their
/// allows, plus the allows that were actually used.
#[derive(Debug, Default)]
struct FileOutcome {
    diagnostics: Vec<Diagnostic>,
    allows_used: Vec<AllowSite>,
}

/// Lints one file's text (separated from I/O for tests).
fn lint_text(path: &str, text: &str) -> FileOutcome {
    let file = lex::scan(path, text, path_is_test(path));
    let found = rules::check_file(&file);
    let allows = annot::collect(&file);

    let mut out = FileOutcome::default();
    for bad in &allows.bad {
        out.diagnostics.push(
            Diagnostic::new(catalog::DL21, path, bad.problem.clone())
                .line(bad.line)
                .help("write `// detlint: allow(DLxx) reason=<why this site is sound>`"),
        );
    }

    let mut used = vec![false; allows.allows.len()];
    for diag in found {
        let allowed = diag.line.is_some_and(|line| {
            allows
                .allows
                .iter()
                .enumerate()
                .find(|(_, a)| a.line == line && a.code == diag.code.id)
                .map(|(i, _)| {
                    used[i] = true;
                })
                .is_some()
        });
        if !allowed {
            out.diagnostics.push(diag);
        }
    }
    for (i, allow) in allows.allows.iter().enumerate() {
        if used[i] {
            out.allows_used.push(allow.clone());
        } else {
            out.diagnostics.push(
                Diagnostic::new(
                    catalog::DL22,
                    path,
                    format!(
                        "allow({}) suppresses nothing on line {} — the site it excused is gone",
                        allow.code, allow.line
                    ),
                )
                .line(allow.line)
                .help("delete the stale annotation and regenerate the baseline"),
            );
        }
    }
    out
}

/// Clamps a requested worker count to something sensible for the number
/// of files. `0` means "pick for me".
#[must_use]
pub fn effective_threads(requested: usize, files: usize) -> usize {
    if files <= 1 {
        return 1;
    }
    let cap = if requested == 0 {
        // detlint: allow(DL03) reason=worker count only sets pool size; results are reassembled in file order
        std::thread::available_parallelism().map_or(4, usize::from)
    } else {
        requested
    };
    cap.clamp(1, files)
}

/// Runs every rule over every file in `files`, on `threads` workers,
/// returning diagnostics in deterministic (file, line, code) order.
#[must_use]
pub fn run(files: &[String], threads: usize) -> LintReport {
    let threads = effective_threads(threads, files.len());
    let outcomes: Vec<FileOutcome> = if threads <= 1 {
        files.iter().map(|f| lint_file(f)).collect()
    } else {
        // The modellint scheduler: a shared claim index hands files to
        // workers; each slot is written exactly once, then the vector
        // is drained in file order — worker identity never shows.
        let next = AtomicUsize::new(0); // Relaxed claim counter: fetch_add is the sole sync needed; results go through the Mutex.
        let slots: Mutex<Vec<Option<FileOutcome>>> =
            Mutex::new((0..files.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= files.len() {
                        break;
                    }
                    let outcome = lint_file(&files[idx]);
                    slots.lock().expect("detlint worker panicked")[idx] = Some(outcome);
                });
            }
        });
        slots
            .into_inner()
            .expect("detlint worker panicked")
            .into_iter()
            .map(|slot| slot.expect("every file slot filled"))
            .collect()
    };

    let mut report = LintReport::default();
    for outcome in outcomes {
        report.diagnostics.extend(outcome.diagnostics);
        report.allows_used.extend(outcome.allows_used);
    }
    report.diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line.unwrap_or(0), a.code.id).cmp(&(
            b.file.as_str(),
            b.line.unwrap_or(0),
            b.code.id,
        ))
    });
    report.allows_used.sort();
    report
}

fn lint_file(path: &str) -> FileOutcome {
    match fs::read_to_string(path) {
        Ok(text) => lint_text(path, &text),
        Err(err) => FileOutcome {
            diagnostics: vec![Diagnostic::new(
                catalog::DL20,
                path,
                format!("cannot read source file: {err}"),
            )],
            allows_used: Vec::new(),
        },
    }
}

/// Compares the report's in-effect allows against a baseline text,
/// appending a [`catalog::DL30`] note per drifted entry.
pub fn check_baseline(report: &mut LintReport, baseline_text: &str, baseline_path: &str) {
    let current: Vec<(String, String, String)> = {
        let mut v: Vec<_> = report
            .allows_used
            .iter()
            .map(|a| (a.code.clone(), a.file.clone(), a.reason.clone()))
            .collect();
        v.sort();
        v.dedup();
        v
    };
    let recorded = annot::parse_baseline(baseline_text);

    for entry in &current {
        if !recorded.contains(entry) {
            report.diagnostics.push(
                Diagnostic::new(
                    catalog::DL30,
                    entry.1.clone(),
                    format!(
                        "allow({}) `{}` is in effect but absent from the baseline",
                        entry.0, entry.2
                    ),
                )
                .note(format!("baseline: {baseline_path}"))
                .help("review the new annotation, then regenerate with --write-baseline"),
            );
        }
    }
    for entry in &recorded {
        if !current.contains(entry) {
            report.diagnostics.push(
                Diagnostic::new(
                    catalog::DL30,
                    entry.1.clone(),
                    format!(
                        "baseline records allow({}) `{}` but no such annotation is in effect",
                        entry.0, entry.2
                    ),
                )
                .note(format!("baseline: {baseline_path}"))
                .help("the annotation was removed or reworded; regenerate with --write-baseline"),
            );
        }
    }
    report.diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line.unwrap_or(0), a.code.id).cmp(&(
            b.file.as_str(),
            b.line.unwrap_or(0),
            b.code.id,
        ))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_suppresses_and_registers() {
        let out = lint_text(
            "x.rs",
            "fn f() {\n    // detlint: allow(DL02) reason=supervision only\n    let t = std::time::Instant::now();\n}\n",
        );
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        assert_eq!(out.allows_used.len(), 1);
        assert_eq!(out.allows_used[0].code, "DL02");
    }

    #[test]
    fn unused_allow_is_dl22() {
        let out = lint_text(
            "x.rs",
            "fn f() {\n    // detlint: allow(DL02) reason=stale\n    let t = 3;\n}\n",
        );
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].code.id, "DL22");
        assert!(out.allows_used.is_empty());
    }

    #[test]
    fn malformed_allow_is_dl21_error() {
        let out = lint_text("x.rs", "// detlint: allow(DL02)\nfn f() {}\n");
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].code.id, "DL21");
    }

    #[test]
    fn wrong_code_allow_does_not_suppress() {
        let out = lint_text(
            "x.rs",
            "fn f() {\n    // detlint: allow(DL03) reason=wrong code\n    let t = std::time::Instant::now();\n}\n",
        );
        let codes: Vec<&str> = out.diagnostics.iter().map(|d| d.code.id).collect();
        assert!(codes.contains(&"DL02"), "{codes:?}");
        assert!(codes.contains(&"DL22"), "{codes:?}");
    }

    #[test]
    fn baseline_drift_fires_both_ways() {
        let mut report = LintReport::default();
        report.allows_used.push(AllowSite {
            file: "a.rs".into(),
            line: 1,
            code: "DL02".into(),
            reason: "new".into(),
        });
        check_baseline(&mut report, "DL03\tb.rs\tgone\n", "base.tsv");
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code.id).collect();
        assert_eq!(codes, vec!["DL30", "DL30"]);
    }

    #[test]
    fn path_test_classification() {
        assert!(path_is_test("crates/x/tests/foo.rs"));
        assert!(path_is_test("crates/x/benches/foo.rs"));
        assert!(!path_is_test("crates/x/src/lib.rs"));
        assert!(
            !path_is_test("crates/x/tests/fixtures/dirty.rs"),
            "fixtures are judged as production code"
        );
    }

    #[test]
    fn threads_do_not_change_output() {
        // Lint this crate's own sources at 1 and 4 threads; reports
        // must be byte-identical.
        let files = discover(&["src".into()]);
        assert!(!files.is_empty());
        let gate = crate::diag::Gate::default();
        let a = run(&files, 1).render_json(&gate);
        let b = run(&files, 4).render_json(&gate);
        assert_eq!(a, b);
    }
}
