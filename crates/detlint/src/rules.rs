//! The DL rule implementations: token-level checks over one scanned
//! file.
//!
//! Each rule walks the code view ([`crate::lex::Line::code`]) with
//! word-boundary matching, so strings and comments can never produce a
//! false site. Nondeterminism rules (DL01–DL04, DL12) are skipped in
//! test context (`tests/`, `benches/`, `examples/`, `#[cfg(test)]`
//! spans) — tests may time things and block freely; hygiene rules
//! (DL10 SAFETY, DL11 atomic ordering) apply everywhere except that
//! DL11 also relaxes in test context, where ad-hoc atomics are
//! scaffolding, not protocol.

use crate::catalog;
use crate::diag::Diagnostic;
use crate::lex::{find_word, word_at, Line, SourceFile};

/// Runs every DL rule over `file`, returning raw findings (allow
/// filtering happens in the engine).
#[must_use]
pub fn check_file(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let hash_idents = collect_hash_idents(file);
    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        if !line.has_code {
            continue;
        }
        if !line.in_test {
            check_hash_iteration(file, idx, &hash_idents, &mut out);
            check_wall_clock(file, lineno, line, &mut out);
            check_thread_env(file, lineno, line, &mut out);
            check_float_accumulation(file, lineno, line, &mut out);
            check_unbounded_recv(file, lineno, line, &mut out);
        }
        check_unsafe(file, idx, &mut out);
        if !line.in_test {
            check_atomic_decl(file, idx, &mut out);
        }
    }
    out
}

// ---------------------------------------------------------------------
// DL01: hash iteration order.
// ---------------------------------------------------------------------

/// Identifiers this file declares (or receives) with a `HashMap`/
/// `HashSet` type: `let m = HashMap::new()`, `m: HashMap<…>`,
/// `m: &mut HashSet<…>`, fields and params alike.
fn collect_hash_idents(file: &SourceFile) -> Vec<String> {
    let mut idents: Vec<String> = Vec::new();
    for line in &file.lines {
        let code = &line.code;
        for ty in ["HashMap", "HashSet"] {
            for pos in find_word(code, ty) {
                if let Some(ident) = declared_ident(code, pos) {
                    if !idents.contains(&ident) {
                        idents.push(ident);
                    }
                }
            }
        }
    }
    idents
}

/// Walks left from a `HashMap`/`HashSet` type token to the identifier
/// it declares: the token before the last `:` or `=` preceding the
/// type, skipping reference/wrapper noise.
fn declared_ident(code: &str, type_pos: usize) -> Option<String> {
    let before = &code[..type_pos];
    let sep = before.rfind([':', '='])?;
    // `::` is path syntax (e.g. `collections::HashMap`), not an
    // ascription — walk past it to the real separator.
    let sep = if sep > 0 && before.as_bytes()[sep - 1] == b':' {
        before[..sep - 1].rfind([':', '='])?
    } else {
        sep
    };
    let head = before[..sep].trim_end();
    let ident: String = head
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    if ident.is_empty()
        || ident.chars().next().is_some_and(|c| c.is_ascii_digit())
        || ["mut", "let", "pub", "in", "where", "dyn", "impl", "for"].contains(&ident.as_str())
    {
        return None;
    }
    Some(ident)
}

/// Iteration methods whose visit order is the hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Sinks that make hash-order iteration deterministic (sorting, ordered
/// re-collection) or order-insensitive (commutative reductions).
const ORDER_SINKS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "count",
    "len",
    "is_empty",
    "any",
    "all",
    "sum",
    "product",
    "min",
    "max",
];

fn check_hash_iteration(
    file: &SourceFile,
    idx: usize,
    hash_idents: &[String],
    out: &mut Vec<Diagnostic>,
) {
    let line = &file.lines[idx];
    let code = &line.code;
    for ident in hash_idents {
        for pos in find_word(code, ident) {
            let after = &code[pos + ident.len()..];
            let iter_method_at = |rest: &str| {
                ITER_METHODS
                    .iter()
                    .any(|m| word_at(rest, 0, m) && rest[m.len()..].starts_with('('))
            };
            let is_method_iter = after.strip_prefix('.').is_some_and(iter_method_at)
                // rustfmt wraps long chains: the receiver ends the line
                // and `.iter()` opens the next code line.
                || (after.trim().is_empty()
                    && file
                        .lines
                        .iter()
                        .skip(idx + 1)
                        .find(|l| l.has_code)
                        .is_some_and(|l| {
                            l.code
                                .trim_start()
                                .strip_prefix('.')
                                .is_some_and(iter_method_at)
                        }));
            // `for x in &map {` / `for x in map {`: the ident is the
            // loop's iterated expression.
            let is_for_iter = !is_method_iter
                && code[..pos].contains(" in ")
                && code[..pos].trim_start().starts_with("for ")
                && matches!(after.trim_start().chars().next(), Some('{') | None);
            if !is_method_iter && !is_for_iter {
                continue;
            }
            if statement_has_sink(file, idx, pos) {
                continue;
            }
            out.push(
                Diagnostic::new(
                    catalog::DL01,
                    file.path.clone(),
                    format!(
                        "`{ident}` is declared as a Hash{{Map,Set}} and iterated here \
                         with no deterministic sink in the statement"
                    ),
                )
                .line(idx + 1)
                .help(
                    "sort the entries (or collect into a BTreeMap/BTreeSet) before anything \
                     order-dependent, switch the container, or annotate with \
                     `// detlint: allow(DL01) reason=…` if the order provably cannot escape",
                ),
            );
            break; // One finding per ident per line.
        }
    }
}

/// Scans the statement around `(idx, pos)` — back to the previous
/// `;`/`{`/`}` and forward to the next `;` or block open — for an
/// order sink.
fn statement_has_sink(file: &SourceFile, idx: usize, pos: usize) -> bool {
    let mut text = String::new();
    // Backward: up to 6 lines, stopping at a statement boundary.
    let start_line = idx.saturating_sub(6);
    let mut collected_back: Vec<&str> = Vec::new();
    let before = &file.lines[idx].code[..pos];
    let back_stop = before.rfind([';', '{', '}']);
    match back_stop {
        Some(b) => collected_back.push(&before[b + 1..]),
        None => {
            collected_back.push(before);
            for j in (start_line..idx).rev() {
                let code = &file.lines[j].code;
                match code.rfind([';', '{', '}']) {
                    Some(b) => {
                        collected_back.push(&code[b + 1..]);
                        break;
                    }
                    None => collected_back.push(code),
                }
            }
        }
    }
    for part in collected_back.iter().rev() {
        text.push_str(part);
        text.push(' ');
    }
    // Forward: up to 6 lines, through the end of the *next* statement
    // (the `collect(); sort();` remediation idiom spans two), stopping
    // at any `{` — a loop body's contents are not a sink on the
    // iterator itself.
    let mut semis = 0u32;
    let mut push_until_stop = |text: &mut String, code: &str| -> bool {
        for (i, c) in code.char_indices() {
            match c {
                '{' => {
                    text.push_str(&code[..i]);
                    text.push(' ');
                    return true;
                }
                ';' => {
                    semis += 1;
                    if semis == 2 {
                        text.push_str(&code[..i]);
                        text.push(' ');
                        return true;
                    }
                }
                _ => {}
            }
        }
        text.push_str(code);
        text.push(' ');
        false
    };
    if !push_until_stop(&mut text, &file.lines[idx].code[pos..]) {
        for line in file
            .lines
            .iter()
            .skip(idx + 1)
            .take(6.min(file.lines.len() - idx - 1))
        {
            if push_until_stop(&mut text, &line.code) {
                break;
            }
        }
    }
    ORDER_SINKS.iter().any(|s| !find_word(&text, s).is_empty())
}

// ---------------------------------------------------------------------
// DL02 / DL03 / DL04 / DL12: simple token rules.
// ---------------------------------------------------------------------

fn check_wall_clock(file: &SourceFile, lineno: usize, line: &Line, out: &mut Vec<Diagnostic>) {
    for pat in ["Instant::now", "SystemTime::now"] {
        if line.code.contains(pat) {
            out.push(
                Diagnostic::new(
                    catalog::DL02,
                    file.path.clone(),
                    format!("wall-clock read `{pat}()` in non-test code"),
                )
                .line(lineno)
                .help(
                    "keep clock values in out-of-band stats/supervision paths only, and annotate \
                     the site with `// detlint: allow(DL02) reason=…` naming that path",
                ),
            );
            return;
        }
    }
}

fn check_thread_env(file: &SourceFile, lineno: usize, line: &Line, out: &mut Vec<Diagnostic>) {
    for pat in ["available_parallelism", "thread::current", "ThreadId"] {
        let hit = if pat.contains("::") {
            line.code.contains(pat)
        } else {
            !find_word(&line.code, pat).is_empty()
        };
        if hit {
            out.push(
                Diagnostic::new(
                    catalog::DL03,
                    file.path.clone(),
                    format!("thread-environment read `{pat}` in non-test code"),
                )
                .line(lineno)
                .help(
                    "worker counts may pick a schedule, never a result; annotate with \
                     `// detlint: allow(DL03) reason=…` stating why output stays identical",
                ),
            );
            return;
        }
    }
}

fn check_float_accumulation(
    file: &SourceFile,
    lineno: usize,
    line: &Line,
    out: &mut Vec<Diagnostic>,
) {
    let float_reduce = [
        "sum::<f32>",
        "sum::<f64>",
        "product::<f32>",
        "product::<f64>",
    ]
    .iter()
    .any(|p| line.code.contains(p))
        || [
            "fold(0.0",
            "fold(0f32",
            "fold(0f64",
            "fold(0_f32",
            "fold(0_f64",
        ]
        .iter()
        .any(|p| line.code.contains(p));
    if float_reduce {
        out.push(
            Diagnostic::new(
                catalog::DL04,
                file.path.clone(),
                "float accumulation whose result depends on visit order",
            )
            .line(lineno)
            .note(
                "harmless over an index-ordered source; a silent divergence over an unordered one",
            ),
        );
    }
}

fn check_unbounded_recv(file: &SourceFile, lineno: usize, line: &Line, out: &mut Vec<Diagnostic>) {
    for pos in find_word(&line.code, "recv") {
        let preceded_by_dot = line.code[..pos].ends_with('.');
        if preceded_by_dot && line.code[pos + 4..].starts_with("()") {
            out.push(
                Diagnostic::new(
                    catalog::DL12,
                    file.path.clone(),
                    "blocking `recv()` with no timeout in non-test code",
                )
                .line(lineno)
                .help(
                    "a dead sender pool strands this receiver; use `recv_timeout` plus a \
                     liveness check (see campaignd's emitter), or annotate with \
                     `// detlint: allow(DL12) reason=…`",
                ),
            );
            return;
        }
    }
}

// ---------------------------------------------------------------------
// DL10: unsafe without SAFETY.
// ---------------------------------------------------------------------

fn check_unsafe(file: &SourceFile, idx: usize, out: &mut Vec<Diagnostic>) {
    let line = &file.lines[idx];
    if find_word(&line.code, "unsafe").is_empty() {
        return;
    }
    if nearby_comments(file, idx)
        .iter()
        .any(|c| c.contains("SAFETY"))
    {
        return;
    }
    out.push(
        Diagnostic::new(
            catalog::DL10,
            file.path.clone(),
            "`unsafe` without a `// SAFETY:` comment",
        )
        .line(idx + 1)
        .help("state the invariant that makes this sound in a `// SAFETY:` comment directly above"),
    );
}

// ---------------------------------------------------------------------
// DL11: atomic declarations without an ordering rationale.
// ---------------------------------------------------------------------

/// The atomic types the rule recognizes.
const ATOMICS: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

/// Words that count as an ordering rationale in a comment.
const ORDERING_WORDS: &[&str] = &[
    "ordering", "Ordering", "Relaxed", "Acquire", "Release", "AcqRel", "SeqCst",
];

fn check_atomic_decl(file: &SourceFile, idx: usize, out: &mut Vec<Diagnostic>) {
    let line = &file.lines[idx];
    let code = &line.code;
    let trimmed = code.trim_start();
    if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
        return;
    }
    let mut site: Option<&str> = None;
    for ty in ATOMICS {
        for pos in find_word(code, ty) {
            let is_ctor = code[pos + ty.len()..].starts_with("::new");
            let is_let_or_static = !find_word(trimmed, "let").is_empty()
                || trimmed.starts_with("static ")
                || trimmed.starts_with("pub static ");
            // A bare `Atomic*::new(…)` inside a struct literal is
            // initialization, not declaration — the rationale lives at
            // the field's declaration, which this rule also visits.
            if is_ctor && !is_let_or_static {
                continue;
            }
            site = Some(ty);
            break;
        }
        if site.is_some() {
            break;
        }
    }
    let Some(ty) = site else { return };
    if nearby_comments(file, idx)
        .iter()
        .any(|c| ORDERING_WORDS.iter().any(|w| c.contains(w)))
    {
        return;
    }
    out.push(
        Diagnostic::new(
            catalog::DL11,
            file.path.clone(),
            format!("`{ty}` declared without a memory-ordering rationale in its comment"),
        )
        .line(idx + 1)
        .help(
            "document why the orderings used on this atomic are sufficient (e.g. \
             \"Relaxed: monotone counter, read only after join\") in the declaration's comment",
        ),
    );
}

/// Comments attached to line `idx`: its own trailing comments plus the
/// contiguous block of comment-only / attribute lines directly above.
fn nearby_comments(file: &SourceFile, idx: usize) -> Vec<String> {
    let mut comments: Vec<String> = file.lines[idx].comments.clone();
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let line = &file.lines[j];
        let attr_only = line.has_code && {
            let t = line.code.trim();
            t.starts_with("#[") || t.starts_with("#![")
        };
        if line.has_code && !attr_only {
            break;
        }
        if !line.has_code && line.comments.is_empty() && line.code.trim().is_empty() {
            break; // Blank line ends the attached block.
        }
        comments.extend(line.comments.iter().cloned());
    }
    comments
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::scan;

    fn codes(src: &str) -> Vec<(&'static str, usize)> {
        let file = scan("t.rs", src, false);
        check_file(&file)
            .into_iter()
            .map(|d| (d.code.id, d.line.unwrap_or(0)))
            .collect()
    }

    #[test]
    fn hash_iteration_without_sink_fires() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) {\n\
                   \x20   for (k, v) in m.iter() {\n\
                   \x20       println!(\"{k} {v}\");\n\
                   \x20   }\n\
                   }\n";
        assert_eq!(codes(src), vec![("DL01", 3)]);
    }

    #[test]
    fn sorted_hash_iteration_is_clean() {
        // `collect(); sort();` — the sink lands on the next statement,
        // which the scan includes (the standard remediation idiom).
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) {\n\
                   \x20   let mut v: Vec<_> = m.keys().collect();\n\
                   \x20   v.sort();\n\
                   }\n";
        // A BTreeMap collect is a sink in the same statement.
        let src2 = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) {\n\
                   \x20   let v: std::collections::BTreeMap<_, _> = m.iter().collect();\n\
                   \x20   drop(v);\n\
                   }\n";
        // But a sink *two* statements later is out of reach: the scan
        // covers exactly one follow-up statement.
        let src3 = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) {\n\
                   \x20   let mut v: Vec<_> = m.keys().collect();\n\
                   \x20   let n = 1;\n\
                   \x20   v.sort();\n\
                   \x20   drop(n);\n\
                   }\n";
        assert_eq!(codes(src), Vec::<(&str, usize)>::new());
        assert_eq!(codes(src2), Vec::<(&str, usize)>::new());
        assert_eq!(codes(src3), vec![("DL01", 3)]);
    }

    #[test]
    fn order_insensitive_reductions_are_clean() {
        let src = "use std::collections::HashSet;\n\
                   fn f(s: &HashSet<u32>) -> usize {\n\
                   \x20   s.iter().filter(|x| **x > 3).count()\n\
                   }\n";
        assert_eq!(codes(src), Vec::<(&str, usize)>::new());
    }

    #[test]
    fn for_loop_over_hash_ref_fires() {
        let src = "use std::collections::HashSet;\n\
                   fn f(seen: &HashSet<u32>) {\n\
                   \x20   for x in seen {\n\
                   \x20       println!(\"{x}\");\n\
                   \x20   }\n\
                   }\n";
        assert_eq!(codes(src), vec![("DL01", 3)]);
    }

    #[test]
    fn wall_clock_and_thread_env_fire_outside_tests() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n\
                   fn g() -> usize { std::thread::available_parallelism().map_or(1, usize::from) }\n";
        assert_eq!(codes(src), vec![("DL02", 1), ("DL03", 2)]);
    }

    #[test]
    fn test_modules_relax_nondeterminism_rules() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn f() { let t = std::time::Instant::now(); }\n}\n";
        assert_eq!(codes(src), Vec::<(&str, usize)>::new());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let dirty = "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        assert_eq!(codes(dirty), vec![("DL10", 1)]);
        let clean = "// SAFETY: guarded by the check above.\nfn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        assert_eq!(codes(clean), Vec::<(&str, usize)>::new());
        let trailing = "fn f() { unsafe { x() } } // SAFETY: x is sound here\n";
        assert_eq!(codes(trailing), Vec::<(&str, usize)>::new());
    }

    #[test]
    fn atomic_declarations_require_ordering_rationale() {
        let dirty = "struct S {\n    count: AtomicU64,\n}\n";
        assert_eq!(codes(dirty), vec![("DL11", 2)]);
        let clean = "struct S {\n    /// Relaxed: monotone counter read after join.\n    count: AtomicU64,\n}\n";
        assert_eq!(codes(clean), Vec::<(&str, usize)>::new());
        // Struct-literal initialization alone doesn't re-fire.
        let init = "fn f() -> S { S { count: AtomicU64::new(0) } }\n";
        assert_eq!(codes(init), Vec::<(&str, usize)>::new());
        // But an undocumented local does.
        let local = "fn f() { let next = AtomicUsize::new(0); }\n";
        assert_eq!(codes(local), vec![("DL11", 1)]);
    }

    #[test]
    fn blocking_recv_fires_and_recv_timeout_does_not() {
        assert_eq!(
            codes("fn f(rx: R) { let x = rx.recv(); }\n"),
            vec![("DL12", 1)]
        );
        assert_eq!(
            codes("fn f(rx: R) { let x = rx.recv_timeout(d); }\n"),
            Vec::<(&str, usize)>::new()
        );
    }

    #[test]
    fn float_sum_is_a_note() {
        let src = "fn f(v: &[f64]) -> f64 { v.iter().copied().sum::<f64>() }\n";
        assert_eq!(codes(src), vec![("DL04", 1)]);
    }
}
