//! Diagnostics: severities, rendered and JSON output, deny/allow gates.
//!
//! The same rustc-flavored shapes as `tta-modellint` (a stable code, a
//! severity, a message anchored to `file:line`, attached `note:`/
//! `help:` lines), re-stated here so the linter stays dependency-free.
//! Rendering is deterministic — diagnostics are sorted by (file, line,
//! code) before output and carry no timings — so the JSON form is
//! byte-stable across runs and `--threads` values and can be pinned as
//! a golden fixture.

use crate::catalog::LintCode;
use std::fmt;

/// Diagnostic severity, ordered from least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: audit trail entries, order-sensitive-but-likely-
    /// fine accumulations. Never denied by `--deny warnings`.
    Note,
    /// Probably a hazard: hash iteration feeding somewhere unknown, an
    /// undocumented atomic.
    Warning,
    /// Definitely broken: an unreadable file, a malformed annotation.
    Error,
}

impl Severity {
    /// Lowercase name used in rendered and JSON output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, anchored to a source file.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The stable lint code this finding instantiates.
    pub code: &'static LintCode,
    /// Severity (the code's default; gates may deny on top).
    pub severity: Severity,
    /// The source file, as passed/discovered (normalized separators).
    pub file: String,
    /// 1-based line within the file, when the construct has one.
    pub line: Option<usize>,
    /// Primary message.
    pub message: String,
    /// Attached `= note:` lines.
    pub notes: Vec<String>,
    /// Attached `= help:` line.
    pub help: Option<String>,
}

impl Diagnostic {
    /// A new diagnostic at the code's default severity.
    #[must_use]
    pub fn new(
        code: &'static LintCode,
        file: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity,
            file: file.into(),
            line: None,
            message: message.into(),
            notes: Vec::new(),
            help: None,
        }
    }

    /// Anchors the diagnostic to a 1-based line.
    #[must_use]
    pub fn line(mut self, line: usize) -> Self {
        self.line = Some(line);
        self
    }

    /// Attaches a `= note:` line.
    #[must_use]
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Attaches the `= help:` line.
    #[must_use]
    pub fn help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Renders the diagnostic in the rustc style:
    ///
    /// ```text
    /// warning[DL01-hash-iteration-order]: `running` is iterated ...
    ///   --> crates/campaignd/src/server.rs:298
    ///   = help: sort the entries, or annotate ...
    /// ```
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}[{}]: {}\n",
            self.severity,
            self.code.full_name(),
            self.message
        );
        match self.line {
            Some(line) => out.push_str(&format!("  --> {}:{line}\n", self.file)),
            None => out.push_str(&format!("  --> {}\n", self.file)),
        }
        for note in &self.notes {
            out.push_str(&format!("  = note: {note}\n"));
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("  = help: {help}\n"));
        }
        out
    }

    /// Renders the diagnostic as one deterministic JSON object (one
    /// line, keys in fixed order; hand-rolled like every other JSON in
    /// this tree).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"code\":{}", json_string(self.code.id)));
        out.push_str(&format!(",\"slug\":{}", json_string(self.code.slug)));
        out.push_str(&format!(
            ",\"severity\":{}",
            json_string(self.severity.name())
        ));
        out.push_str(&format!(",\"file\":{}", json_string(&self.file)));
        match self.line {
            Some(line) => out.push_str(&format!(",\"line\":{line}")),
            None => out.push_str(",\"line\":null"),
        }
        out.push_str(&format!(",\"message\":{}", json_string(&self.message)));
        out.push_str(",\"notes\":[");
        for (i, note) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(note));
        }
        out.push(']');
        match &self.help {
            Some(help) => out.push_str(&format!(",\"help\":{}", json_string(help))),
            None => out.push_str(",\"help\":null"),
        }
        out.push('}');
        out
    }
}

/// Escapes `text` as a JSON string literal.
fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Which diagnostics fail the run: `--deny` / `--allow` gates. Same
/// semantics as `tta-modellint`: `allow` wins over `deny` for specific
/// codes, `deny_warnings` denies warning-or-worse, errors are always
/// denied.
#[derive(Debug, Clone, Default)]
pub struct Gate {
    /// Deny every warning-or-worse diagnostic (`--deny warnings`).
    pub deny_warnings: bool,
    /// Codes denied regardless of severity (`--deny DL30`).
    pub deny_codes: Vec<String>,
    /// Codes never denied (`--allow DL22`). Wins over `deny`.
    pub allow_codes: Vec<String>,
}

impl Gate {
    /// Whether `diag` fails the run under this gate.
    #[must_use]
    pub fn denies(&self, diag: &Diagnostic) -> bool {
        let code = diag.code.id;
        if self
            .allow_codes
            .iter()
            .any(|c| c.eq_ignore_ascii_case(code) && diag.severity != Severity::Error)
        {
            return false;
        }
        if diag.severity == Severity::Error {
            return true;
        }
        if self.deny_codes.iter().any(|c| c.eq_ignore_ascii_case(code)) {
            return true;
        }
        self.deny_warnings && diag.severity >= Severity::Warning
    }
}

/// The result of a full lint run: every diagnostic in deterministic
/// (file, line, code) order, plus the audit inventory of allow sites.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Every allow annotation that suppressed a finding, in (file,
    /// line) order — the audit trail the baseline is built from.
    pub allows_used: Vec<crate::annot::AllowSite>,
}

impl LintReport {
    /// Diagnostics failing under `gate`.
    pub fn denied<'a>(&'a self, gate: &'a Gate) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics.iter().filter(move |d| gate.denies(d))
    }

    /// Number of diagnostics at exactly `severity`.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Renders every diagnostic plus a one-line summary.
    #[must_use]
    pub fn render(&self, gate: &Gate) -> String {
        let mut out = String::new();
        for diag in &self.diagnostics {
            out.push_str(&diag.render());
            out.push('\n');
        }
        let denied = self.denied(gate).count();
        out.push_str(&format!(
            "detlint summary: {} error(s), {} warning(s), {} note(s); \
             {} allow(s) in effect; {} denied\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note),
            self.allows_used.len(),
            denied
        ));
        out
    }

    /// Renders the whole report as line-oriented JSON: one object per
    /// diagnostic, then a summary object.
    #[must_use]
    pub fn render_json(&self, gate: &Gate) -> String {
        let mut out = String::new();
        for diag in &self.diagnostics {
            out.push_str(&diag.render_json());
            out.push('\n');
        }
        out.push_str(&format!(
            "{{\"summary\":{{\"errors\":{},\"warnings\":{},\"notes\":{},\
             \"allows_used\":{},\"denied\":{}}}}}\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note),
            self.allows_used.len(),
            self.denied(gate).count()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn render_includes_code_file_and_help() {
        let diag = Diagnostic::new(catalog::DL01, "x.rs", "`m` iterated without a sort")
            .line(7)
            .help("sort the entries");
        let text = diag.render();
        assert!(
            text.starts_with("warning[DL01-hash-iteration-order]:"),
            "{text}"
        );
        assert!(text.contains("--> x.rs:7"), "{text}");
        assert!(text.contains("= help: sort the entries"), "{text}");
    }

    #[test]
    fn json_escapes_and_orders_keys() {
        let diag = Diagnostic::new(catalog::DL20, "a\"b.rs", "bad \"file\"");
        let json = diag.render_json();
        assert!(json.starts_with("{\"code\":\"DL20\""), "{json}");
        assert!(json.contains("\"file\":\"a\\\"b.rs\""), "{json}");
        assert!(json.contains("\"line\":null"), "{json}");
    }

    #[test]
    fn gate_semantics() {
        let warn = Diagnostic::new(catalog::DL01, "x", "w");
        let note = Diagnostic::new(catalog::DL30, "x", "n");
        let err = Diagnostic::new(catalog::DL21, "x", "e");
        assert_eq!(note.severity, Severity::Note);

        let gate = Gate::default();
        assert!(!gate.denies(&warn));
        assert!(gate.denies(&err), "errors are always denied");

        let gate = Gate {
            deny_warnings: true,
            ..Gate::default()
        };
        assert!(gate.denies(&warn));
        assert!(!gate.denies(&note), "notes survive --deny warnings");

        let gate = Gate {
            deny_codes: vec!["dl30".into()],
            ..Gate::default()
        };
        assert!(gate.denies(&note), "--deny CODE denies notes too");

        let gate = Gate {
            deny_warnings: true,
            allow_codes: vec!["DL01".into()],
            ..Gate::default()
        };
        assert!(!gate.denies(&warn), "--allow wins over --deny warnings");
    }
}
