//! Token-level source scanning: comment/string stripping, per-line
//! code + comment views, and lightweight scope resolution (`#[cfg(test)]`
//! module spans, test-context classification by path).
//!
//! detlint deliberately does not parse Rust — a parser would need a
//! grammar the workspace's no-deps policy rules out, and a lint that
//! dies on a syntax error is useless mid-refactor. Instead the scanner
//! produces, per line, the *code view* (string and char literal
//! contents blanked to spaces, comments removed) and the *comment view*
//! (every comment's text, including doc comments), which is exactly
//! what the DL rules need: token matching that can never be fooled by
//! a `"HashMap"` inside a string or an `unsafe` inside a comment, plus
//! access to the comments where `SAFETY:`/ordering rationales and
//! `detlint: allow` annotations live.

/// One scanned source line.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line's code with comments removed and string/char literal
    /// *contents* replaced by spaces (the delimiting quotes stay, so
    /// adjacent tokens never merge).
    pub code: String,
    /// Text of every comment starting or continuing on this line,
    /// without the `//`/`///`/`/*`..`*/` markers.
    pub comments: Vec<String>,
    /// Whether any non-whitespace code survives on this line.
    pub has_code: bool,
    /// Whether the line lies inside a `#[cfg(test)]`-gated module (or
    /// the file itself is test context): nondeterminism lints are
    /// relaxed there, hygiene lints are not.
    pub in_test: bool,
}

/// A scanned file: its display path and line views.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path as discovered, `/`-separated.
    pub path: String,
    /// 0-based line views (diagnostics add 1).
    pub lines: Vec<Line>,
    /// Whole-file test context: the path runs through `tests/`,
    /// `benches/` or `examples/`.
    pub file_is_test: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Scans `text` into per-line code/comment views and marks
/// `#[cfg(test)]` module spans.
#[must_use]
pub fn scan(path: &str, text: &str, file_is_test: bool) -> SourceFile {
    let mut lines: Vec<Line> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut comments: Vec<String> = Vec::new();
    let mut mode = Mode::Code;

    let flush_comment = |comment: &mut String, comments: &mut Vec<String>| {
        if !comment.is_empty() {
            comments.push(std::mem::take(comment));
        }
    };

    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    while i <= chars.len() {
        let c = if i < chars.len() { chars[i] } else { '\n' };
        let at_end = i == chars.len();
        if c == '\n' {
            match mode {
                Mode::LineComment => {
                    flush_comment(&mut comment, &mut comments);
                    mode = Mode::Code;
                }
                Mode::BlockComment(_) => flush_comment(&mut comment, &mut comments),
                _ => {}
            }
            if !(at_end && code.is_empty() && comments.is_empty() && lines.is_empty()) {
                let has_code = code.chars().any(|c| !c.is_whitespace() && c != '"');
                lines.push(Line {
                    code: std::mem::take(&mut code),
                    comments: std::mem::take(&mut comments),
                    has_code,
                    in_test: false,
                });
            }
            if at_end {
                break;
            }
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        mode = Mode::LineComment;
                        i += 2;
                        // Skip doc-comment extras (`///`, `//!`).
                        while matches!(chars.get(i), Some('/' | '!')) {
                            i += 1;
                        }
                        continue;
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::BlockComment(1);
                        i += 2;
                        while matches!(chars.get(i), Some('*' | '!'))
                            && chars.get(i + 1) != Some(&'/')
                        {
                            i += 1;
                        }
                        continue;
                    }
                    '"' => {
                        code.push('"');
                        mode = Mode::Str;
                    }
                    'r' | 'b' => {
                        // Possible string prefix: r", r#…#", br", b"
                        // (an identifier character before rules it out).
                        let prev_is_ident = code
                            .chars()
                            .last()
                            .is_some_and(|p| p.is_alphanumeric() || p == '_');
                        let mut j = i + 1;
                        let mut is_raw = c == 'r';
                        if c == 'b' && chars.get(j) == Some(&'r') {
                            is_raw = true;
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        if is_raw {
                            while chars.get(j) == Some(&'#') {
                                hashes += 1;
                                j += 1;
                            }
                        }
                        if !prev_is_ident && chars.get(j) == Some(&'"') {
                            for _ in i..j {
                                code.push(' ');
                            }
                            code.push('"');
                            i = j;
                            mode = if is_raw {
                                Mode::RawStr(hashes)
                            } else {
                                Mode::Str
                            };
                        } else {
                            code.push(c);
                        }
                    }
                    '\'' => {
                        // Lifetime (`'a`) vs char literal (`'a'`,
                        // `'\n'`). A lifetime is `'` + ident with no
                        // closing quote right after.
                        let is_lifetime = next.is_some_and(|n| n.is_alphabetic() || n == '_') && {
                            let mut j = i + 1;
                            while chars
                                .get(j)
                                .is_some_and(|c| c.is_alphanumeric() || *c == '_')
                            {
                                j += 1;
                            }
                            chars.get(j) != Some(&'\'')
                        };
                        code.push('\'');
                        if !is_lifetime {
                            mode = Mode::Char;
                        }
                    }
                    c => code.push(c),
                }
            }
            Mode::LineComment => comment.push(c),
            Mode::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    if depth == 1 {
                        flush_comment(&mut comment, &mut comments);
                        mode = Mode::Code;
                    } else {
                        mode = Mode::BlockComment(depth - 1);
                    }
                    i += 2;
                    continue;
                }
                comment.push(c);
            }
            Mode::Str => {
                let next = chars.get(i + 1).copied();
                if c == '\\' && next.is_some() {
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                if c == '"' {
                    code.push('"');
                    mode = Mode::Code;
                } else {
                    code.push(' ');
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k as usize) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push(' ');
                        }
                        i += 1 + hashes as usize;
                        mode = Mode::Code;
                        continue;
                    }
                }
                code.push(' ');
            }
            Mode::Char => {
                let next = chars.get(i + 1).copied();
                if c == '\\' && next.is_some() {
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    code.push('\'');
                    mode = Mode::Code;
                } else {
                    code.push(' ');
                }
            }
        }
        i += 1;
    }

    let mut file = SourceFile {
        path: path.to_string(),
        lines,
        file_is_test,
    };
    mark_test_spans(&mut file);
    if file_is_test {
        for line in &mut file.lines {
            line.in_test = true;
        }
    }
    file
}

/// Marks every line inside a `#[cfg(test)]`- or `#[cfg(all(test, …))]`-
/// gated item (almost always `mod tests { … }`) as test context by
/// brace matching from the attribute.
fn mark_test_spans(file: &mut SourceFile) {
    let mut i = 0;
    while i < file.lines.len() {
        let code = &file.lines[i].code;
        let gated = code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test");
        if !gated {
            i += 1;
            continue;
        }
        // Find the opening brace of the gated item (same line or one of
        // the next few), then match braces to the item's end.
        let mut depth: i32 = 0;
        let mut opened = false;
        let mut j = i;
        'span: while j < file.lines.len() {
            for c in file.lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    // A gated `use`/`fn` declaration without a body
                    // ends at `;` before any brace opens.
                    ';' if !opened => break 'span,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
            if j - i > 10_000 {
                break; // Unbalanced braces; give up on the span.
            }
        }
        if opened {
            let end = j.min(file.lines.len() - 1);
            for line in &mut file.lines[i..=end] {
                line.in_test = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

/// True when `hay[pos..]` starts with `needle` as a whole word: the
/// characters on both sides are not identifier characters.
#[must_use]
pub fn word_at(hay: &str, pos: usize, needle: &str) -> bool {
    if !hay[pos..].starts_with(needle) {
        return false;
    }
    let before_ok = pos == 0
        || hay[..pos]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
    let after = hay[pos + needle.len()..].chars().next();
    let after_ok = after.is_none_or(|c| !c.is_alphanumeric() && c != '_');
    before_ok && after_ok
}

/// Every position where `needle` occurs in `hay` as a whole word.
#[must_use]
pub fn find_word(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = hay[from..].find(needle) {
        let pos = from + rel;
        if word_at(hay, pos, needle) {
            out.push(pos);
        }
        from = pos + needle.len().max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped() {
        let f = scan(
            "x.rs",
            "let a = \"HashMap // not code\"; // real comment\nlet b = 2; /* block\nstill */ let c = 3;\n",
            false,
        );
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].code.contains("let a ="));
        assert_eq!(f.lines[0].comments, vec![" real comment".to_string()]);
        assert!(f.lines[1].comments[0].contains("block"));
        assert!(f.lines[2].code.contains("let c = 3;"));
    }

    #[test]
    fn doc_comments_are_comments() {
        let f = scan("x.rs", "/// SAFETY: fine\nunsafe fn f() {}\n", false);
        assert!(f.lines[0].comments[0].contains("SAFETY"));
        assert!(!f.lines[0].has_code);
        assert!(f.lines[1].code.contains("unsafe fn"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = scan("x.rs", "fn f<'a>(x: &'a str) -> char { 'x' }\n", false);
        assert!(f.lines[0].code.contains("&'a str"));
        assert!(!f.lines[0].code.contains("'x'"), "{}", f.lines[0].code);
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = scan("x.rs", "let s = r#\"unsafe { HashMap }\"#;\n", false);
        assert!(!f.lines[0].code.contains("unsafe"), "{}", f.lines[0].code);
        assert!(!f.lines[0].code.contains("HashMap"));
    }

    #[test]
    fn cfg_test_mod_spans_are_marked() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = scan("x.rs", src, false);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn file_test_context_marks_everything() {
        let f = scan("tests/x.rs", "fn a() {}\n", true);
        assert!(f.lines[0].in_test);
    }

    #[test]
    fn word_matching_respects_boundaries() {
        assert_eq!(find_word("unsafe unsafe_code", "unsafe"), vec![0]);
        assert!(find_word("m.recv_timeout()", "recv").is_empty());
        assert_eq!(find_word("x.recv()", "recv"), vec![2]);
    }
}
