//! `tta-detlint`: the determinism audit layer for this workspace's own
//! Rust sources.
//!
//! The exploration/campaign stack promises that its output streams are
//! bit-identical for a given seed at any worker count, interrupted or
//! not. `tta-modellint` audits the *scenarios* fed into that stack;
//! this crate audits the *code* — a token-level static analysis (no
//! rustc plumbing, no dependencies, per workspace policy) that walks
//! every first-party `.rs` file and reports the constructs that
//! historically break that promise:
//!
//! - **Nondeterminism sources** (`DL01`–`DL04`): hash-order iteration
//!   with no deterministic sink, wall-clock reads outside supervision
//!   paths, thread-environment reads, order-sensitive float
//!   accumulation.
//! - **Concurrency hygiene** (`DL10`–`DL12`): `unsafe` without a
//!   `SAFETY:` comment, `Atomic*` declarations without an ordering
//!   rationale, blocking `recv()` without a timeout.
//! - **Audit bookkeeping** (`DL2x`/`DL30`): malformed or stale
//!   `// detlint: allow(DLxx) reason=…` annotations, and drift against
//!   the checked-in allow baseline.
//!
//! Every suppression is an annotation with a reason, inventoried in a
//! baseline file, so "the workspace lints clean" always means "every
//! exception has been argued for in writing". See DESIGN.md's
//! "Determinism audit" section for the full code table and workflow.

pub mod annot;
pub mod catalog;
pub mod diag;
pub mod engine;
pub mod lex;
pub mod rules;

pub use annot::{render_baseline, AllowSite};
pub use catalog::{find as find_code, LintCode, CATALOG};
pub use diag::{Diagnostic, Gate, LintReport, Severity};
pub use engine::{check_baseline, discover, run};
