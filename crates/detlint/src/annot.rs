//! The audited escape hatch: `detlint: allow(DLxx) reason=…`
//! annotations and the checked-in baseline inventory built from them.
//!
//! An allow is a *comment*, so it survives rustfmt and never affects
//! compilation:
//!
//! ```text
//! // detlint: allow(DL02) reason=supervision deadline, out-of-band
//! let started = Instant::now();
//! ```
//!
//! A same-line trailing comment applies to its own line; a comment-only
//! line applies to the next line that has code (attributes and further
//! comments in between are skipped over). Every allow must name a known
//! code and carry a non-empty `reason=` — a reasonless allow is a
//! [`crate::catalog::DL21`] error, and an allow that suppressed nothing
//! is a [`crate::catalog::DL22`] warning, so the escape hatch stays an
//! audit trail instead of a mute button.
//!
//! The baseline (`--baseline` / `--write-baseline`) is the sorted,
//! line-oriented inventory of every allow *in effect*:
//!
//! ```text
//! DL02<TAB>crates/campaignd/src/runner.rs<TAB>supervision deadline, out-of-band
//! ```
//!
//! keyed by (code, file, reason) — deliberately not by line number, so
//! unrelated edits above an annotated site don't churn the baseline.
//! New or vanished entries surface as [`crate::catalog::DL30`] notes;
//! CI denies DL30, making every audit change a reviewed change.

use crate::catalog;
use crate::lex::SourceFile;

/// One parsed allow annotation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AllowSite {
    /// The file the annotation lives in.
    pub file: String,
    /// 1-based line the allow *applies to* (not the comment's line).
    pub line: usize,
    /// The allowed code id, e.g. `DL02`.
    pub code: String,
    /// The justification after `reason=` (trimmed).
    pub reason: String,
}

/// A malformed annotation: where and why.
#[derive(Debug, Clone)]
pub struct BadAllow {
    /// 1-based line of the comment.
    pub line: usize,
    /// What is wrong.
    pub problem: String,
}

/// All annotations of one file, plus the malformed ones.
#[derive(Debug, Clone, Default)]
pub struct FileAllows {
    /// Well-formed allows, keyed by the line they apply to.
    pub allows: Vec<AllowSite>,
    /// Malformed annotations (DL21 material).
    pub bad: Vec<BadAllow>,
}

const MARKER: &str = "detlint:";

/// Extracts every `detlint:` annotation from `file`'s comments.
#[must_use]
pub fn collect(file: &SourceFile) -> FileAllows {
    let mut out = FileAllows::default();
    for (idx, line) in file.lines.iter().enumerate() {
        for comment in &line.comments {
            // The marker must open the comment (`// detlint: …`);
            // prose that merely *mentions* `detlint:` mid-sentence —
            // like this crate's own documentation — is not an
            // annotation.
            let Some(rest) = comment.trim_start().strip_prefix(MARKER) else {
                continue;
            };
            let body = rest.trim();
            let applies_to = if line.has_code {
                idx + 1
            } else {
                // Comment-only line: applies to the next code line,
                // looking through attributes so an allow above
                // `#[derive(…)]` still reaches the item it annotates.
                file.lines
                    .iter()
                    .enumerate()
                    .skip(idx + 1)
                    .find(|(_, l)| {
                        l.has_code && {
                            let t = l.code.trim_start();
                            !t.starts_with("#[") && !t.starts_with("#![")
                        }
                    })
                    .map_or(idx + 1, |(j, _)| j + 1)
            };
            match parse_allow(body) {
                Ok((code, reason)) => out.allows.push(AllowSite {
                    file: file.path.clone(),
                    line: applies_to,
                    code,
                    reason,
                }),
                Err(problem) => out.bad.push(BadAllow {
                    line: idx + 1,
                    problem,
                }),
            }
        }
    }
    out
}

/// Parses the body after `detlint:` into `(code, reason)`.
fn parse_allow(body: &str) -> Result<(String, String), String> {
    let rest = body
        .strip_prefix("allow(")
        .ok_or_else(|| format!("expected `allow(CODE) reason=…`, found `{body}`"))?;
    let close = rest
        .find(')')
        .ok_or_else(|| "unclosed `allow(` annotation".to_string())?;
    let code_name = rest[..close].trim();
    let code =
        catalog::find(code_name).ok_or_else(|| format!("unknown lint code `{code_name}`"))?;
    let after = rest[close + 1..].trim();
    let reason = after
        .strip_prefix("reason=")
        .map(str::trim)
        .ok_or_else(|| "allow annotation carries no `reason=` justification".to_string())?;
    if reason.is_empty() {
        return Err("allow annotation's `reason=` is empty".to_string());
    }
    Ok((code.id.to_string(), reason.to_string()))
}

/// Serializes allow sites as the baseline text: one
/// `CODE\tFILE\tREASON` line, sorted, deduplicated.
#[must_use]
pub fn render_baseline(allows: &[AllowSite]) -> String {
    let mut lines: Vec<String> = allows
        .iter()
        .map(|a| format!("{}\t{}\t{}", a.code, a.file, a.reason))
        .collect();
    lines.sort();
    lines.dedup();
    let mut out = String::from(
        "# detlint allow baseline — one `CODE<TAB>FILE<TAB>REASON` per line, sorted.\n\
         # Regenerate with: tta-detlint --write-baseline <this file> <paths>\n",
    );
    for line in &lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Parses a baseline file back into its `CODE\tFILE\tREASON` entries.
#[must_use]
pub fn parse_baseline(text: &str) -> Vec<(String, String, String)> {
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .filter_map(|l| {
            let mut parts = l.splitn(3, '\t');
            Some((
                parts.next()?.to_string(),
                parts.next()?.to_string(),
                parts.next().unwrap_or("").to_string(),
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::scan;

    #[test]
    fn trailing_allow_applies_to_its_own_line() {
        let f = scan(
            "x.rs",
            "let t = now(); // detlint: allow(DL02) reason=stats only\n",
            false,
        );
        let allows = collect(&f);
        assert_eq!(allows.allows.len(), 1);
        assert_eq!(allows.allows[0].line, 1);
        assert_eq!(allows.allows[0].code, "DL02");
        assert_eq!(allows.allows[0].reason, "stats only");
    }

    #[test]
    fn standalone_allow_applies_to_next_code_line() {
        let f = scan(
            "x.rs",
            "// detlint: allow(DL01) reason=sorted below\n// more prose\n#[derive(Debug)]\nfor k in m.keys() {}\n",
            false,
        );
        let allows = collect(&f);
        assert_eq!(allows.allows.len(), 1);
        assert_eq!(allows.allows[0].line, 4, "attributes are looked through");
    }

    #[test]
    fn missing_reason_and_unknown_code_are_malformed() {
        let f = scan(
            "x.rs",
            "// detlint: allow(DL02)\n// detlint: allow(DL99) reason=x\n// detlint: allow(DL02) reason=\n",
            false,
        );
        let allows = collect(&f);
        assert!(allows.allows.is_empty());
        assert_eq!(allows.bad.len(), 3);
        assert!(allows.bad[0].problem.contains("reason"));
        assert!(allows.bad[1].problem.contains("unknown lint code"));
        assert!(allows.bad[2].problem.contains("empty"));
    }

    #[test]
    fn baseline_round_trips() {
        let sites = vec![
            AllowSite {
                file: "b.rs".into(),
                line: 9,
                code: "DL02".into(),
                reason: "stats".into(),
            },
            AllowSite {
                file: "a.rs".into(),
                line: 3,
                code: "DL03".into(),
                reason: "thread count only picks a schedule".into(),
            },
        ];
        let text = render_baseline(&sites);
        let parsed = parse_baseline(&text);
        assert_eq!(
            parsed,
            vec![
                ("DL02".into(), "b.rs".into(), "stats".into()),
                (
                    "DL03".into(),
                    "a.rs".into(),
                    "thread count only picks a schedule".into()
                ),
            ]
        );
    }
}
