//! The stable DL lint-code registry.
//!
//! Codes are grouped by family: `DL0x` nondeterminism sources reachable
//! from deterministic-stream code, `DL1x` concurrency hygiene, `DL2x`
//! lint-artifact problems (unreadable files, malformed or unused allow
//! annotations), `DL3x` baseline bookkeeping. Like `tta-modellint`'s
//! ML codes, DL codes are append-only: a shipped code never changes
//! meaning or disappears, so `--deny`/`--allow` lists, annotation
//! sites, and the checked-in baseline stay valid across releases.

use crate::diag::Severity;

/// One registered lint: stable id, human slug, default severity and a
/// one-line summary (the table in DESIGN.md mirrors this).
#[derive(Debug)]
pub struct LintCode {
    /// Stable short id, e.g. `DL01`.
    pub id: &'static str,
    /// Human-readable slug, e.g. `hash-iteration-order`.
    pub slug: &'static str,
    /// Default severity.
    pub default_severity: Severity,
    /// One-line description.
    pub summary: &'static str,
}

impl LintCode {
    /// `id-slug`, the form rendered in brackets:
    /// `DL01-hash-iteration-order`.
    #[must_use]
    pub fn full_name(&self) -> String {
        format!("{}-{}", self.id, self.slug)
    }
}

macro_rules! codes {
    ($($name:ident = $id:literal, $slug:literal, $sev:ident, $summary:literal;)*) => {
        $(
            #[doc = $summary]
            pub static $name: &LintCode = &LintCode {
                id: $id,
                slug: $slug,
                default_severity: Severity::$sev,
                summary: $summary,
            };
        )*
        /// Every registered lint, id order.
        pub static CATALOG: &[&LintCode] = &[$($name),*];
    };
}

codes! {
    // ── nondeterminism sources ─────────────────────────────────────
    DL01 = "DL01", "hash-iteration-order", Warning,
        "iteration over a HashMap/HashSet with no deterministic sink (sort, BTree collect, order-insensitive reduction): the visit order varies per process and can leak into output, cache keys, or goldens";
    DL02 = "DL02", "wall-clock-read", Warning,
        "an Instant::now()/SystemTime::now() read outside test code: wall-clock values must stay in out-of-band stats/supervision paths, never in the deterministic stream";
    DL03 = "DL03", "thread-environment-read", Warning,
        "logic reads the thread environment (available_parallelism, thread::current, ThreadId): output must be bit-identical at any worker count, so this may only pick a schedule, never a result";
    DL04 = "DL04", "float-accumulation-order", Note,
        "a float sum/fold whose result depends on accumulation order: fine over an ordered source, a silent divergence over an unordered one";
    // ── concurrency hygiene ────────────────────────────────────────
    DL10 = "DL10", "undocumented-unsafe", Warning,
        "an unsafe block/fn/impl without a `// SAFETY:` comment justifying it";
    DL11 = "DL11", "undocumented-atomic-ordering", Warning,
        "an Atomic* declaration whose comment does not state the memory-ordering rationale (why Relaxed suffices, or what an Acquire/Release pairing protects)";
    DL12 = "DL12", "unbounded-recv", Warning,
        "a blocking channel recv() with no timeout: a dead sender pool strands the receiver — supervisor/emitter paths must use recv_timeout plus a liveness check";
    // ── lint artifacts ─────────────────────────────────────────────
    DL20 = "DL20", "unreadable-source", Error,
        "a source file cannot be read";
    DL21 = "DL21", "malformed-allow", Error,
        "a `detlint: allow(...)` annotation names an unknown code or carries no reason= justification";
    DL22 = "DL22", "unused-allow", Warning,
        "an allow annotation that suppressed nothing: the site it excused is gone, so the annotation is stale";
    // ── baseline bookkeeping ───────────────────────────────────────
    DL30 = "DL30", "baseline-drift", Note,
        "the allow-annotation inventory drifted from the checked-in baseline (new or removed allows); regenerate with --write-baseline after review";
}

/// Looks up a code by id (`DL01`), slug (`hash-iteration-order`) or
/// full name, case-insensitively.
#[must_use]
pub fn find(name: &str) -> Option<&'static LintCode> {
    CATALOG.iter().copied().find(|c| {
        c.id.eq_ignore_ascii_case(name)
            || c.slug.eq_ignore_ascii_case(name)
            || c.full_name().eq_ignore_ascii_case(name)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_sorted() {
        for pair in CATALOG.windows(2) {
            assert!(pair[0].id < pair[1].id, "{} !< {}", pair[0].id, pair[1].id);
        }
    }

    #[test]
    fn find_accepts_all_spellings() {
        assert_eq!(find("DL01").unwrap().slug, "hash-iteration-order");
        assert_eq!(find("hash-iteration-order").unwrap().id, "DL01");
        assert_eq!(
            find("dl11-undocumented-atomic-ordering").unwrap().id,
            "DL11"
        );
        assert!(find("DL99").is_none());
    }
}
