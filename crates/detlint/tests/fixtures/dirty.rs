//! Deliberately nondeterministic module: every DL rule family must fire
//! on this file. It is never compiled into any crate — it exists only
//! as lint-fixture input, the `detlint` analogue of modellint's
//! `vacuous.toml`. `tta-detlint --deny warnings` over this file must
//! exit nonzero; the golden JSON pins the exact findings.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Receiver;
use std::time::Instant;

/// DL11: an atomic field with no ordering rationale anywhere nearby.
struct Counters {
    lines_emitted: AtomicU64,
}

/// DL11: an undocumented atomic local.
fn undocumented_latch() -> bool {
    let done = AtomicBool::new(false);
    done.load(Ordering::Relaxed)
}

/// DL01: unsorted HashMap iteration feeding the output stream — the
/// canonical way a per-seed-deterministic tool starts printing results
/// in a different order on every run.
fn emit_results(results: &HashMap<u64, String>, counters: &Counters) {
    for (seed, verdict) in results.iter() {
        counters.lines_emitted.fetch_add(1, Ordering::Relaxed);
        println!("{seed}\t{verdict}");
    }
}

/// DL01: `for … in &set` without a sink.
fn emit_seen(seen: &HashSet<u64>) {
    for seed in seen {
        println!("seen {seed}");
    }
}

/// DL02: wall-clock read in result-producing code.
fn stamp() -> u128 {
    Instant::now().elapsed().as_nanos()
}

/// DL03: worker count leaking into a computed value.
fn shard_count() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// DL04: float accumulation whose result depends on visit order.
fn total(results: &HashMap<u64, f64>) -> f64 {
    results.values().copied().sum::<f64>()
}

/// DL10: unsafe without a SAFETY comment.
fn peek(buf: &[u8]) -> u8 {
    unsafe { *buf.get_unchecked(0) }
}

/// DL12: blocking recv with no timeout — a dead sender pool strands
/// this loop forever.
fn drain(rx: &Receiver<u64>) {
    while let Ok(v) = rx.recv() {
        println!("{v}");
    }
}

/// DL22 bait: an allow that suppresses nothing.
// detlint: allow(DL02) reason=stale annotation kept to exercise DL22
fn quiet() -> u32 {
    7
}
