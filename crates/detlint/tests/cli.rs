//! Integration tests for the determinism audit: the seeded dirty
//! fixture must fire every rule family and be denied (its JSON pinned
//! as a golden file), the workspace's own first-party sources must lint
//! clean under `--deny warnings` with the checked-in baseline, and the
//! JSON output must be byte-identical across runs and `--threads`
//! values.
//!
//! Regenerate the golden JSON deliberately with `TTA_BLESS=1` after
//! confirming the new diagnostics are the intended ones.

use std::path::{Path, PathBuf};
use std::process::Command;
use tta_detlint::{discover, run, Diagnostic, Gate};

/// The repository root (this crate lives at `crates/detlint`).
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

fn deny_warnings() -> Gate {
    Gate {
        deny_warnings: true,
        ..Gate::default()
    }
}

/// Golden comparison with the workspace's `TTA_BLESS=1` regeneration
/// convention (hand-rolled so this crate stays dependency-free).
fn compare_golden(golden: &Path, rendered: &str) {
    if std::env::var_os("TTA_BLESS").is_some() {
        std::fs::write(golden, rendered).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(golden).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {}: {e}\n(seed it with TTA_BLESS=1)",
            golden.display()
        )
    });
    assert!(
        expected == rendered,
        "golden drift against {}\n--- expected ---\n{expected}\n--- actual ---\n{rendered}\n\
         (regenerate deliberately with TTA_BLESS=1 if the change is intended)",
        golden.display()
    );
}

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tta-detlint"))
}

// ---------------------------------------------------------------------
// The dirty fixture.
// ---------------------------------------------------------------------

#[test]
fn dirty_fixture_matches_golden_json() {
    // Lint with a path relative to this crate so the JSON is stable.
    let report = run(&["tests/fixtures/dirty.rs".into()], 1);
    let rendered = report.render_json(&deny_warnings());
    let golden =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/dirty_diagnostics.json");
    compare_golden(&golden, &rendered);
}

#[test]
fn dirty_fixture_fires_every_rule_family() {
    let report = run(&["tests/fixtures/dirty.rs".into()], 1);
    let fired: Vec<&str> = report.diagnostics.iter().map(|d| d.code.id).collect();
    for code in [
        "DL01", "DL02", "DL03", "DL04", "DL10", "DL11", "DL12", "DL22",
    ] {
        assert!(
            fired.contains(&code),
            "{code} must fire on dirty.rs, got {fired:?}"
        );
    }
}

#[test]
fn dirty_fixture_is_denied_by_the_binary() {
    let out = bin()
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .args(["tests/fixtures/dirty.rs", "--deny", "warnings"])
        .output()
        .expect("run tta-detlint");
    assert_eq!(
        out.status.code(),
        Some(1),
        "dirty fixture must exit 1 under --deny warnings\nstdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn malformed_allow_is_denied_even_without_deny_flags() {
    let dir = std::env::temp_dir().join(format!("detlint-malformed-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("bad.rs");
    std::fs::write(&path, "// detlint: allow(DL02)\nfn f() {}\n").expect("write fixture");
    let out = bin()
        .arg(path.display().to_string())
        .output()
        .expect("run tta-detlint");
    assert_eq!(
        out.status.code(),
        Some(1),
        "a reasonless allow is a DL21 error and errors always deny\nstdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// The workspace audit itself.
// ---------------------------------------------------------------------

/// First-party lint targets, as absolute paths.
fn workspace_targets() -> Vec<String> {
    let root = repo_root();
    vec![
        root.join("crates").display().to_string(),
        root.join("src").display().to_string(),
    ]
}

#[test]
fn workspace_lints_clean_under_deny_warnings() {
    let report = run(&discover(&workspace_targets()), 0);
    let gate = deny_warnings();
    let denied: Vec<String> = report.denied(&gate).map(Diagnostic::render).collect();
    assert!(
        denied.is_empty(),
        "first-party sources must lint clean under --deny warnings:\n{}",
        denied.join("\n")
    );
}

#[test]
fn every_workspace_allow_carries_a_reason() {
    // By construction a reasonless allow is a DL21 error (caught by the
    // clean-run test above); this pins the stronger audit property: the
    // in-effect inventory is non-trivial and every entry's reason is
    // non-empty prose, not filler.
    let report = run(&discover(&workspace_targets()), 0);
    assert!(
        report.allows_used.len() >= 30,
        "the audited workspace carries a substantial allow inventory, got {}",
        report.allows_used.len()
    );
    for allow in &report.allows_used {
        assert!(
            allow.reason.split_whitespace().count() >= 2,
            "allow({}) in {} has a filler reason: `{}`",
            allow.code,
            allow.file,
            allow.reason
        );
    }
}

#[test]
fn workspace_allow_inventory_matches_checked_in_baseline() {
    let root = repo_root();
    let baseline_path = root.join("crates/detlint/detlint.baseline");
    let baseline = std::fs::read_to_string(&baseline_path).expect("read checked-in baseline");
    let mut report = run(&discover(&workspace_targets()), 0);
    // Baseline entries are keyed by repo-relative paths; re-run through
    // the binary's working directory instead of rewriting — simplest is
    // to lint with repo-relative targets from the repo root.
    let out = bin()
        .current_dir(&root)
        .args([
            "crates",
            "src",
            "--baseline",
            "crates/detlint/detlint.baseline",
            "--deny",
            "DL30",
            "-q",
        ])
        .output()
        .expect("run tta-detlint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "allow inventory drifted from crates/detlint/detlint.baseline \
         (review, then regenerate with --write-baseline):\nstdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    // And the library-level inventory agrees in size with the baseline.
    report.allows_used.sort();
    report.allows_used.dedup();
    let entries = baseline
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .count();
    let mut keys: Vec<(String, String, String)> = report
        .allows_used
        .iter()
        .map(|a| (a.code.clone(), a.file.clone(), a.reason.clone()))
        .collect();
    keys.sort();
    keys.dedup();
    assert_eq!(
        keys.len(),
        entries,
        "baseline entry count must match the deduplicated in-effect inventory"
    );
}

// ---------------------------------------------------------------------
// Determinism of the linter itself.
// ---------------------------------------------------------------------

#[test]
fn json_output_is_byte_stable_across_threads_and_runs() {
    let files = discover(&workspace_targets());
    let gate = deny_warnings();
    let reference = run(&files, 1).render_json(&gate);
    for threads in [2usize, 4, 8] {
        let rendered = run(&files, threads).render_json(&gate);
        assert_eq!(
            reference, rendered,
            "--threads {threads} changed the JSON output"
        );
    }
    let rerun = run(&files, 1).render_json(&gate);
    assert_eq!(reference, rerun, "a second run changed the JSON output");
}

#[test]
fn list_codes_covers_the_catalog() {
    let out = bin().arg("--list-codes").output().expect("run tta-detlint");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for code in tta_detlint::CATALOG {
        assert!(text.contains(code.id), "--list-codes omits {}", code.id);
    }
}
