//! Property-based tests of the guardian crate: coupler relay laws,
//! window algebra, SOS acceptance monotonicity, and the leaky-bucket vs.
//! closed-form agreement across the parameter space.

use proptest::prelude::*;
use tta_guardian::buffer::{closed_form_min_buffer, simulate_forwarding};
use tta_guardian::sos::{ReceiverTolerance, SosDefect, SosDomain};
use tta_guardian::window::TimeWindow;
use tta_guardian::{CouplerAuthority, CouplerFaultMode, StarCoupler};
use tta_protocol::ChannelObservation;
use tta_types::FrameKind;

fn arb_authority() -> impl Strategy<Value = CouplerAuthority> {
    prop::sample::select(CouplerAuthority::all().to_vec())
}

fn arb_frame() -> impl Strategy<Value = ChannelObservation> {
    prop_oneof![
        Just(ChannelObservation::silence()),
        (1u16..=8).prop_map(|id| ChannelObservation::frame(FrameKind::ColdStart, id)),
        (1u16..=8).prop_map(|id| ChannelObservation::frame(FrameKind::CState, id)),
        (1u16..=8).prop_map(|id| ChannelObservation::frame(FrameKind::Other, id)),
    ]
}

proptest! {
    /// A fault-free coupler is an identity function on the channel,
    /// whatever its authority and whatever has been buffered before.
    #[test]
    fn fault_free_relay_is_identity(
        authority in arb_authority(),
        history in prop::collection::vec(arb_frame(), 0..8),
        input in arb_frame(),
    ) {
        let mut coupler = StarCoupler::new(authority);
        for frame in history {
            let _ = coupler.relay(frame, CouplerFaultMode::None);
        }
        prop_assert_eq!(coupler.relay(input, CouplerFaultMode::None), input);
    }

    /// A replay reproduces exactly the last id-bearing frame that was on
    /// the channel, regardless of interleaved silence.
    #[test]
    fn replay_reproduces_last_valid_frame(
        frames in prop::collection::vec(arb_frame(), 1..10),
        trailing_silence in 0usize..4,
    ) {
        let mut coupler = StarCoupler::new(CouplerAuthority::FullShifting);
        let mut last_valid = None;
        for frame in &frames {
            let out = coupler.relay(*frame, CouplerFaultMode::None);
            if out.id != 0 {
                last_valid = Some(out);
            }
        }
        for _ in 0..trailing_silence {
            let _ = coupler.relay(ChannelObservation::silence(), CouplerFaultMode::None);
        }
        let replay = coupler.relay(ChannelObservation::silence(), CouplerFaultMode::OutOfSlot);
        match last_valid {
            Some(expected) => prop_assert_eq!(replay, expected),
            None => prop_assert_eq!(replay, ChannelObservation::silence()),
        }
    }

    /// Below full shifting the buffer stays empty forever: the structural
    /// reason restricted couplers cannot replay.
    #[test]
    fn restricted_couplers_never_buffer(
        authority in prop::sample::select(vec![
            CouplerAuthority::Passive,
            CouplerAuthority::TimeWindows,
            CouplerAuthority::SmallShifting,
        ]),
        frames in prop::collection::vec(arb_frame(), 0..12),
    ) {
        let mut coupler = StarCoupler::new(authority);
        for frame in frames {
            let _ = coupler.relay(frame, CouplerFaultMode::None);
            prop_assert_eq!(coupler.buffer(), tta_guardian::BufferedFrame::empty());
        }
    }

    /// SOS acceptance is monotone: a receiver that accepts a defect also
    /// accepts every smaller defect in the same domain.
    #[test]
    fn sos_acceptance_is_monotone(
        tol_time in 0.0f64..=1.0,
        tol_value in 0.0f64..=1.0,
        m1 in 0.0f64..=1.0,
        m2 in 0.0f64..=1.0,
        time_domain in any::<bool>(),
    ) {
        let tolerance = ReceiverTolerance::new(tol_time, tol_value);
        let domain = if time_domain { SosDomain::Time } else { SosDomain::Value };
        let (small, large) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        let small = SosDefect::new(domain, small);
        let large = SosDefect::new(domain, large);
        if tolerance.accepts(Some(&large)) {
            prop_assert!(tolerance.accepts(Some(&small)));
        }
    }

    /// Window classification is consistent with the shift computation: a
    /// transmission classified Inside needs zero shift; anything that
    /// fits after shifting really lands inside.
    #[test]
    fn window_shift_lands_inside(
        open in 0.0f64..1000.0,
        len in 1.0f64..500.0,
        margin in 0.0f64..50.0,
        start in -200.0f64..1500.0,
        txlen in 1.0f64..600.0,
    ) {
        let window = TimeWindow::new(open, open + len, margin);
        let end = start + txlen;
        match window.shift_to_fit(start, end) {
            Some(shift) => {
                // Allow a floating-point ulp of slack at the boundaries.
                let eps = 1e-9 * (1.0 + open.abs() + len);
                prop_assert!(start + shift >= window.open() - eps);
                prop_assert!(end + shift <= window.close() + eps);
                if window.contains(start, end) {
                    prop_assert_eq!(shift, 0.0);
                }
            }
            None => prop_assert!(txlen > len, "only oversized transmissions fail to fit"),
        }
    }

    /// The bit-exact forwarding simulation tracks the paper's closed form
    /// within rounding across the whole (frame, ρ) space.
    #[test]
    fn leaky_bucket_matches_closed_form(
        frame_bits in 64u32..60_000,
        rho_scaled in 1u32..2_000, // ρ in [0.0001, 0.2]
        le in 0u32..16,
    ) {
        let rho = f64::from(rho_scaled) * 1e-4;
        let closed = closed_form_min_buffer(frame_bits, rho, le);
        let simulated = simulate_forwarding(frame_bits, 1.0, 1.0 - rho, le);
        let diff = (i64::from(closed) - i64::from(simulated.peak_occupancy_bits)).abs();
        // Eq. (1) is a first-order approximation; at large ρ (far beyond
        // the paper's crystal regime) it drifts by a few bits.
        let tolerance = 2 + (rho * 16.0).ceil() as i64;
        prop_assert!(
            diff <= tolerance,
            "f={frame_bits} ρ={rho}: closed {closed} vs simulated {}",
            simulated.peak_occupancy_bits
        );
    }

    /// Faster guardians need prebuffering, slower ones accumulate — both
    /// directions cost the same order of buffer (the paper treats ρ
    /// symmetrically).
    #[test]
    fn buffer_cost_is_direction_symmetric(
        frame_bits in 1_000u32..50_000,
        rho_scaled in 1u32..500,
    ) {
        let rho = f64::from(rho_scaled) * 1e-4;
        let slow_guardian = simulate_forwarding(frame_bits, 1.0, 1.0 - rho, 4);
        let fast_guardian = simulate_forwarding(frame_bits, 1.0 - rho, 1.0, 4);
        let a = i64::from(slow_guardian.peak_occupancy_bits);
        let b = i64::from(fast_guardian.prebuffer_bits);
        prop_assert!((a - b).abs() <= 3, "slow {a} vs fast {b}");
    }
}
