//! Table-driven coverage of the authority ladder: for every
//! [`CouplerAuthority`] level, one row states what the semantic filter
//! must do with each defect class, which fault modes the coupler may
//! exhibit, and whether full-frame buffering is permitted. The tables
//! make the paper's central tradeoff mechanical: each added capability
//! (blocking, shifting, buffering) both masks a defect class *and*
//! widens the guardian's own failure modes.

use tta_guardian::enhanced::{audit, BufferedFunction, MailboxService, PriorityRelay};
use tta_guardian::reshape::{GuardianAction, SemanticFilter};
use tta_guardian::sos::{SosDefect, SosDomain};
use tta_guardian::{BufferedFrame, CouplerAuthority, CouplerFaultMode, StarCoupler};
use tta_types::{CState, Frame, FrameBuilder, FrameClass, MembershipVector, NodeId, SlotIndex};

use CouplerAuthority::{FullShifting, Passive, SmallShifting, TimeWindows};

fn iframe(sender: u8) -> Frame {
    FrameBuilder::new(FrameClass::IFrame, NodeId::new(sender))
        .cstate(CState::new(5, 1, 0, MembershipVector::full(4)))
        .build()
        .unwrap()
}

/// One row per authority level: what the filter does with (a) an
/// off-slot transmission, (b) a masquerading sender, (c) a time-domain
/// SOS defect, (d) a value-domain SOS defect.
#[test]
fn filter_actions_follow_the_authority_table() {
    struct Row {
        authority: CouplerAuthority,
        blocks_off_slot: bool,
        blocks_masquerade: bool,
        reshapes_time_sos: bool,
        reshapes_value_sos: bool,
    }
    let table = [
        Row {
            authority: Passive,
            blocks_off_slot: false,
            blocks_masquerade: false,
            reshapes_time_sos: false,
            reshapes_value_sos: false,
        },
        Row {
            authority: TimeWindows,
            blocks_off_slot: true,
            blocks_masquerade: true,
            reshapes_time_sos: false,
            reshapes_value_sos: true,
        },
        Row {
            authority: SmallShifting,
            blocks_off_slot: true,
            blocks_masquerade: true,
            reshapes_time_sos: true,
            reshapes_value_sos: true,
        },
        Row {
            authority: FullShifting,
            blocks_off_slot: true,
            blocks_masquerade: true,
            reshapes_time_sos: true,
            reshapes_value_sos: true,
        },
    ];

    for row in table {
        let filter = SemanticFilter::new(row.authority);
        let a = row.authority;

        // (a) Off-slot: honest frame, outside its window.
        let (action, _) = filter.filter(
            &iframe(0),
            SlotIndex::new(1),
            NodeId::new(0),
            false,
            None,
            None,
        );
        assert_eq!(
            action == GuardianAction::BlockedOffSlot,
            row.blocks_off_slot,
            "{a}: off-slot handling"
        );

        // (b) Masquerade: node 3 transmits in node 0's window.
        let (action, _) = filter.filter(
            &iframe(3),
            SlotIndex::new(1),
            NodeId::new(0),
            true,
            None,
            None,
        );
        assert_eq!(
            matches!(action, GuardianAction::BlockedMasquerade { .. }),
            row.blocks_masquerade,
            "{a}: masquerade handling"
        );

        // (c)/(d) SOS defects in each domain on an otherwise honest frame.
        for (domain, expect_fix) in [
            (SosDomain::Time, row.reshapes_time_sos),
            (SosDomain::Value, row.reshapes_value_sos),
        ] {
            let defect = SosDefect::new(domain, 0.5);
            let (action, residual) = filter.filter(
                &iframe(0),
                SlotIndex::new(1),
                NodeId::new(0),
                true,
                Some(defect),
                None,
            );
            assert!(action.passed(), "{a}: SOS frames are never dropped");
            assert_eq!(
                action == GuardianAction::Reshaped(domain),
                expect_fix,
                "{a}: {domain:?}-domain reshaping"
            );
            assert_eq!(
                residual.is_none(),
                expect_fix,
                "{a}: defect must survive iff not reshaped"
            );
        }
    }
}

/// The coupler's enumerable fault modes grow with authority exactly once:
/// `out_of_slot` appears at full shifting and nowhere below.
#[test]
fn fault_modes_grow_only_at_full_shifting() {
    for authority in CouplerAuthority::all() {
        let modes = StarCoupler::new(authority).fault_modes();
        assert_eq!(
            modes.contains(&CouplerFaultMode::OutOfSlot),
            authority == FullShifting,
            "{authority}: replay capability"
        );
        assert_eq!(
            modes.len(),
            if authority == FullShifting { 4 } else { 3 },
            "{authority}: no other mode may appear"
        );
        assert_eq!(
            authority.preserves_passive_fault_hypothesis(),
            authority != FullShifting,
            "{authority}: passive-channel hypothesis"
        );
    }
}

/// The out-of-slot buffering boundary: reconstructing a coupler with a
/// non-empty buffer must panic for every authority that cannot buffer
/// full frames, and succeed only for full shifting.
#[test]
fn with_buffer_rejects_non_buffering_authorities() {
    let held = BufferedFrame {
        id: 2,
        kind: tta_types::FrameKind::CState,
    };
    for authority in CouplerAuthority::all() {
        let attempt = std::panic::catch_unwind(|| StarCoupler::with_buffer(authority, held));
        assert_eq!(
            attempt.is_ok(),
            authority.can_buffer_full_frames(),
            "{authority}: non-empty buffer acceptance"
        );
        // The empty buffer is representable everywhere.
        let empty = StarCoupler::with_buffer(authority, BufferedFrame::empty());
        assert_eq!(empty.buffer(), BufferedFrame::empty());
    }
}

/// Eq. (3) boundary, exactly: a function needing `f_min − 1` bits is
/// fault tolerant, one more bit violates the bound.
#[test]
fn fault_tolerance_bound_boundary_is_exact() {
    struct Needs(u32);
    impl BufferedFunction for Needs {
        fn required_buffer_bits(&self) -> u32 {
            self.0
        }
    }
    let f_min = tta_types::constants::N_FRAME_MIN_BITS;
    assert!(!Needs(f_min - 1).violates_fault_tolerance_bound(f_min));
    assert!(Needs(f_min).violates_fault_tolerance_bound(f_min));
    assert!(Needs(f_min - 1).violates_fault_tolerance_bound(f_min - 1));
    // Degenerate input: a zero-bit minimum frame must not underflow.
    assert!(Needs(1).violates_fault_tolerance_bound(0));
    assert!(!Needs(0).violates_fault_tolerance_bound(0));
}

/// Both enhanced functions from Section 6 audit as bound violations the
/// moment they hold a single real frame, and both enable the replay
/// fault mode — the capability the golden traces show freezing healthy
/// nodes.
#[test]
fn enhanced_functions_audit_as_replay_enablers() {
    let f_min = tta_types::constants::N_FRAME_MIN_BITS;
    let frame = iframe(0);

    let mut mailbox = MailboxService::new();
    mailbox.store(NodeId::new(0), frame.clone());
    let mut relay = PriorityRelay::new();
    relay.enqueue(1, frame);

    for (name, function) in [
        ("mailboxes", &mailbox as &dyn BufferedFunction),
        ("CAN emulation", &relay as &dyn BufferedFunction),
    ] {
        assert!(
            function.violates_fault_tolerance_bound(f_min),
            "{name}: any stored frame exceeds B_max"
        );
        assert_eq!(
            function.enabled_fault_mode(),
            CouplerFaultMode::OutOfSlot,
            "{name}: full-frame buffers enable replay"
        );
    }

    let report = audit("mailboxes", &mailbox, f_min);
    assert!(!report.fault_tolerant);
    assert_eq!(report.permitted_bits, f_min - 1);
    assert!(report.to_string().contains("VIOLATES"));
}
