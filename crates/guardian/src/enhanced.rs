//! Enhanced central-guardian functions — and why they are dangerous.
//!
//! Section 6 of the paper lists reasons a system architect "might be
//! tempted to buffer an entire frame" in the central guardian:
//!
//! 1. **Mailboxes**: "an active central guardian that keeps 'mailboxes'
//!    with recent data values could help provide data continuity if
//!    frames are corrupted by providing slightly stale values instead of
//!    no value."
//! 2. **Prioritized message service (CAN emulation)**: "a central
//!    guardian could also provide prioritized message service … if it
//!    were allowed to buffer frames and send them in a specially reserved
//!    time slice, in priority order."
//!
//! "Both of these enhanced functions would require buffering full
//! frames." This module implements both functions *and* their buffer
//! accounting, so the conflict with the fault-tolerance bound
//! `B_max = f_min − 1` (eq. 3) is checkable rather than rhetorical:
//! [`BufferedFunction::violates_fault_tolerance_bound`] is true for every
//! useful configuration of either service.

use crate::CouplerFaultMode;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use tta_types::{Frame, NodeId};

/// A guardian value-added function that holds frame bits.
///
/// Implementors report how many bits of a frame they must hold; the
/// trait supplies the comparison against the paper's eq. (3) bound.
pub trait BufferedFunction {
    /// Bits of the longest frame this function must hold to operate.
    fn required_buffer_bits(&self) -> u32;

    /// Whether operating this function forces the guardian past the
    /// largest buffer a fault-tolerant design permits
    /// (`B_max = f_min − 1`, eq. 3).
    fn violates_fault_tolerance_bound(&self, min_frame_bits: u32) -> bool {
        self.required_buffer_bits() > min_frame_bits.saturating_sub(1)
    }

    /// The fault mode this function's buffer enables in a faulty
    /// guardian. Holding complete frames always enables replay.
    fn enabled_fault_mode(&self) -> CouplerFaultMode {
        CouplerFaultMode::OutOfSlot
    }
}

/// A stale-value mailbox service: the guardian remembers each sender's
/// last complete frame and can serve it when the live slot is corrupted.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MailboxService {
    boxes: HashMap<u8, Frame>,
    longest_seen_bits: u32,
}

impl MailboxService {
    /// Creates an empty mailbox service.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `frame` as `sender`'s most recent value. This is the
    /// operation that requires holding the *entire* frame.
    pub fn store(&mut self, sender: NodeId, frame: Frame) {
        self.longest_seen_bits = self.longest_seen_bits.max(frame.bit_len() as u32);
        self.boxes.insert(sender.index(), frame);
    }

    /// The slightly stale value for `sender`, if any — what the guardian
    /// would substitute for a corrupted slot.
    #[must_use]
    pub fn stale_value(&self, sender: NodeId) -> Option<&Frame> {
        self.boxes.get(&sender.index())
    }

    /// Number of mailboxes currently populated.
    #[must_use]
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// Whether no mailbox is populated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }
}

impl BufferedFunction for MailboxService {
    fn required_buffer_bits(&self) -> u32 {
        // A mailbox is only useful if it can hold the frames that flow
        // through it, i.e. complete frames up to the longest seen.
        self.longest_seen_bits
    }
}

/// A CAN-style prioritized relay: frames wait in the guardian, lowest
/// arbitration id first, to be transmitted in a reserved time slice.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PriorityRelay {
    queue: Vec<(u32, Frame)>,
}

impl PriorityRelay {
    /// Creates an empty relay.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues `frame` with a CAN-style arbitration id (lower id = higher
    /// priority).
    pub fn enqueue(&mut self, arbitration_id: u32, frame: Frame) {
        self.queue.push((arbitration_id, frame));
        // Stable insertion order for equal ids, CAN arbitration otherwise.
        self.queue.sort_by_key(|(id, _)| *id);
    }

    /// Dequeues the highest-priority frame for the reserved time slice.
    pub fn transmit_next(&mut self) -> Option<(u32, Frame)> {
        if self.queue.is_empty() {
            None
        } else {
            Some(self.queue.remove(0))
        }
    }

    /// Frames currently waiting.
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }
}

impl BufferedFunction for PriorityRelay {
    fn required_buffer_bits(&self) -> u32 {
        // Every queued frame is held in full until its slice arrives.
        self.queue.iter().map(|(_, f)| f.bit_len() as u32).sum()
    }
}

/// Summary row for design reviews: function, buffer need, bound, verdict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionAudit {
    /// Function name.
    pub function: String,
    /// Bits the function must buffer.
    pub required_bits: u32,
    /// The fault-tolerance bound `f_min − 1`.
    pub permitted_bits: u32,
    /// Whether the function is compatible with the bound.
    pub fault_tolerant: bool,
}

impl fmt::Display for FunctionAudit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: needs {} bits, permitted {} → {}",
            self.function,
            self.required_bits,
            self.permitted_bits,
            if self.fault_tolerant {
                "OK"
            } else {
                "VIOLATES eq. (3)"
            }
        )
    }
}

/// Audits a buffered function against the eq. (3) bound.
#[must_use]
pub fn audit<F: BufferedFunction>(name: &str, function: &F, min_frame_bits: u32) -> FunctionAudit {
    FunctionAudit {
        function: name.to_string(),
        required_bits: function.required_buffer_bits(),
        permitted_bits: min_frame_bits.saturating_sub(1),
        fault_tolerant: !function.violates_fault_tolerance_bound(min_frame_bits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_types::constants::N_FRAME_MIN_BITS;
    use tta_types::{CState, FrameBuilder, FrameClass, MembershipVector};

    fn frame(sender: u8, data: &[u8]) -> Frame {
        FrameBuilder::new(FrameClass::XFrame, NodeId::new(sender))
            .cstate(CState::new(
                10,
                u16::from(sender) + 1,
                0,
                MembershipVector::full(4),
            ))
            .data_bits(data)
            .build()
            .expect("valid frame")
    }

    #[test]
    fn mailboxes_serve_stale_values() {
        let mut service = MailboxService::new();
        assert!(service.is_empty());
        let f1 = frame(0, &[1, 2, 3]);
        let f2 = frame(0, &[4, 5, 6]);
        service.store(NodeId::new(0), f1);
        service.store(NodeId::new(0), f2.clone());
        assert_eq!(service.stale_value(NodeId::new(0)), Some(&f2));
        assert_eq!(service.stale_value(NodeId::new(1)), None);
        assert_eq!(service.len(), 1);
    }

    #[test]
    fn mailboxes_require_full_frames() {
        let mut service = MailboxService::new();
        service.store(NodeId::new(0), frame(0, &[0; 64]));
        // Holding a 64-byte X-frame cannot fit inside f_min − 1 = 27 bits.
        assert!(service.required_buffer_bits() > 500);
        assert!(service.violates_fault_tolerance_bound(N_FRAME_MIN_BITS));
        assert_eq!(service.enabled_fault_mode(), CouplerFaultMode::OutOfSlot);
    }

    #[test]
    fn empty_mailbox_is_trivially_compliant() {
        // The only fault-tolerant mailbox service is one that never stored
        // anything — i.e. the feature is unusable under eq. (3).
        let service = MailboxService::new();
        assert!(!service.violates_fault_tolerance_bound(N_FRAME_MIN_BITS));
    }

    #[test]
    fn priority_relay_implements_can_arbitration() {
        let mut relay = PriorityRelay::new();
        relay.enqueue(0x300, frame(2, &[3]));
        relay.enqueue(0x100, frame(0, &[1]));
        relay.enqueue(0x200, frame(1, &[2]));
        let order: Vec<u32> =
            std::iter::from_fn(|| relay.transmit_next().map(|(id, _)| id)).collect();
        assert_eq!(order, [0x100, 0x200, 0x300]);
        assert_eq!(relay.backlog(), 0);
    }

    #[test]
    fn priority_relay_buffer_grows_with_backlog() {
        let mut relay = PriorityRelay::new();
        relay.enqueue(1, frame(0, &[0; 8]));
        let single = relay.required_buffer_bits();
        relay.enqueue(2, frame(1, &[0; 8]));
        assert_eq!(relay.required_buffer_bits(), 2 * single);
        assert!(relay.violates_fault_tolerance_bound(N_FRAME_MIN_BITS));
    }

    #[test]
    fn audit_reports_the_conflict() {
        let mut relay = PriorityRelay::new();
        relay.enqueue(7, frame(3, &[9, 9]));
        let audit = audit("CAN emulation", &relay, N_FRAME_MIN_BITS);
        assert!(!audit.fault_tolerant);
        assert_eq!(audit.permitted_bits, 27);
        assert!(audit.to_string().contains("VIOLATES"));
    }

    #[test]
    fn any_single_stored_frame_violates_the_bound() {
        // Even the shortest legal frame cannot be stored: every frame is
        // at least f_min bits, the buffer may hold at most f_min − 1.
        let mut service = MailboxService::new();
        let minimal = FrameBuilder::new(FrameClass::IFrame, NodeId::new(0))
            .cstate(CState::new(0, 1, 0, MembershipVector::new()))
            .build()
            .expect("valid frame");
        let bits = minimal.bit_len() as u32;
        service.store(NodeId::new(0), minimal);
        assert!(service.violates_fault_tolerance_bound(bits));
    }
}
