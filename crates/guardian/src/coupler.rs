//! The star-coupler channel model (paper Section 4.4).
//!
//! Each of the two redundant channels runs through one star coupler. The
//! coupler forwards the frame the slot's sender puts on its input — unless
//! a fault transforms it. A full-shifting coupler additionally remembers
//! the last frame it forwarded (`buffered_id` / `buffered_frame`), which
//! is what a faulty coupler can replay out of slot.

use crate::{CouplerAuthority, CouplerFaultMode};
use serde::{Deserialize, Serialize};
use std::fmt;
use tta_protocol::ChannelObservation;
use tta_types::FrameKind;

/// The frame a full-shifting coupler holds in its buffer: the paper's
/// `buffered_id` and `buffered_frame` state variables, initialized to
/// `(0, none)`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BufferedFrame {
    /// Id of the last frame observed on the channel (0 = none yet).
    pub id: u16,
    /// Kind of the last frame observed on the channel.
    pub kind: FrameKind,
}

impl BufferedFrame {
    /// The empty buffer (`id = 0`, `kind = none`).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether the buffer holds a replayable frame.
    #[must_use]
    pub fn is_replayable(self) -> bool {
        self.id != 0 && self.kind.is_traffic() && self.kind != FrameKind::Bad
    }

    /// The observation a replay of this buffer puts on the channel;
    /// silence if nothing replayable is buffered.
    #[must_use]
    pub fn as_observation(self) -> ChannelObservation {
        if self.is_replayable() {
            ChannelObservation::frame(self.kind, self.id)
        } else {
            ChannelObservation::silence()
        }
    }
}

impl fmt::Display for BufferedFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.id == 0 {
            write!(f, "empty")
        } else {
            write!(f, "{}(id={})", self.kind, self.id)
        }
    }
}

/// One star coupler: authority level plus (for full shifting) the frame
/// buffer.
///
/// # Example
///
/// ```
/// use tta_guardian::{CouplerAuthority, CouplerFaultMode, StarCoupler};
/// use tta_protocol::ChannelObservation;
/// use tta_types::FrameKind;
///
/// let mut coupler = StarCoupler::new(CouplerAuthority::FullShifting);
/// let cold_start = ChannelObservation::frame(FrameKind::ColdStart, 1);
///
/// // Fault-free slot: the coupler forwards and buffers the frame.
/// let out = coupler.relay(cold_start, CouplerFaultMode::None);
/// assert_eq!(out, cold_start);
///
/// // Faulty slot: the buffered cold-start frame is replayed out of slot.
/// let replay = coupler.relay(ChannelObservation::silence(), CouplerFaultMode::OutOfSlot);
/// assert_eq!(replay, cold_start);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StarCoupler {
    authority: CouplerAuthority,
    buffer: BufferedFrame,
}

impl StarCoupler {
    /// Creates a coupler of the given authority with an empty buffer.
    #[must_use]
    pub fn new(authority: CouplerAuthority) -> Self {
        StarCoupler {
            authority,
            buffer: BufferedFrame::empty(),
        }
    }

    /// Reconstructs a coupler from its authority and buffer contents —
    /// used by the model checker, which stores coupler buffers in the
    /// packed global state and rebuilds couplers per transition.
    ///
    /// # Panics
    ///
    /// Panics if a non-empty buffer is supplied for an authority that
    /// cannot buffer frames.
    #[must_use]
    pub fn with_buffer(authority: CouplerAuthority, buffer: BufferedFrame) -> Self {
        assert!(
            buffer == BufferedFrame::empty() || authority.can_buffer_full_frames(),
            "{authority} couplers cannot hold a buffered frame"
        );
        StarCoupler { authority, buffer }
    }

    /// The coupler's authority level.
    #[must_use]
    pub fn authority(&self) -> CouplerAuthority {
        self.authority
    }

    /// The current buffer contents (always empty below full shifting).
    #[must_use]
    pub fn buffer(&self) -> BufferedFrame {
        self.buffer
    }

    /// Relays one slot's traffic through the coupler, applying `fault` and
    /// updating the frame buffer. `input` is what the slot's sender put on
    /// the coupler's input port (silence if nobody sends).
    ///
    /// Implements the paper's channel equation:
    ///
    /// ```text
    /// channel_frame = if fault=silence      then none
    ///                 else if fault=bad_frame then bad_frame
    ///                 else if fault=out_of_slot then buffered_frame
    ///                 else input
    /// ```
    ///
    /// and the buffer equation (the buffer latches whatever valid id is
    /// *on the channel*):
    ///
    /// ```text
    /// buffered_id' = if channel_id=0 then buffered_id else channel_id
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `fault` is [`CouplerFaultMode::OutOfSlot`] on a coupler
    /// whose authority cannot buffer frames — such a fault is not
    /// physically possible there, and asking for it indicates a harness
    /// bug rather than a modeled fault.
    pub fn relay(
        &mut self,
        input: ChannelObservation,
        fault: CouplerFaultMode,
    ) -> ChannelObservation {
        assert!(
            fault != CouplerFaultMode::OutOfSlot || self.authority.can_buffer_full_frames(),
            "out_of_slot fault requires full-frame buffering authority ({} has none)",
            self.authority
        );
        let on_channel = match fault {
            CouplerFaultMode::None => input,
            CouplerFaultMode::Silence => ChannelObservation::silence(),
            CouplerFaultMode::BadFrame => ChannelObservation::bad(),
            CouplerFaultMode::OutOfSlot => self.buffer.as_observation(),
        };
        if self.authority.can_buffer_full_frames() && on_channel.id != 0 {
            self.buffer = BufferedFrame {
                id: on_channel.id,
                kind: on_channel.kind,
            };
        }
        on_channel
    }

    /// The fault modes this coupler can exhibit (delegates to its
    /// authority).
    #[must_use]
    pub fn fault_modes(&self) -> Vec<CouplerFaultMode> {
        self.authority.fault_modes()
    }
}

impl fmt::Display for StarCoupler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "coupler[{}, buffer {}]", self.authority, self.buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(kind: FrameKind, id: u16) -> ChannelObservation {
        ChannelObservation::frame(kind, id)
    }

    #[test]
    fn fault_free_coupler_is_transparent() {
        for auth in CouplerAuthority::all() {
            let mut c = StarCoupler::new(auth);
            let input = frame(FrameKind::CState, 3);
            assert_eq!(c.relay(input, CouplerFaultMode::None), input);
            assert_eq!(
                c.relay(ChannelObservation::silence(), CouplerFaultMode::None),
                ChannelObservation::silence()
            );
        }
    }

    #[test]
    fn silence_fault_drops_frames() {
        let mut c = StarCoupler::new(CouplerAuthority::Passive);
        let out = c.relay(frame(FrameKind::ColdStart, 1), CouplerFaultMode::Silence);
        assert_eq!(out, ChannelObservation::silence());
    }

    #[test]
    fn bad_frame_fault_emits_noise_even_on_silence() {
        let mut c = StarCoupler::new(CouplerAuthority::TimeWindows);
        let out = c.relay(ChannelObservation::silence(), CouplerFaultMode::BadFrame);
        assert_eq!(out, ChannelObservation::bad());
    }

    #[test]
    fn only_full_shifting_buffers() {
        for auth in CouplerAuthority::all() {
            let mut c = StarCoupler::new(auth);
            let _ = c.relay(frame(FrameKind::ColdStart, 1), CouplerFaultMode::None);
            let buffered = c.buffer().id != 0;
            assert_eq!(buffered, auth.can_buffer_full_frames(), "{auth}");
        }
    }

    #[test]
    fn replay_reproduces_last_buffered_frame() {
        let mut c = StarCoupler::new(CouplerAuthority::FullShifting);
        let _ = c.relay(frame(FrameKind::ColdStart, 1), CouplerFaultMode::None);
        let _ = c.relay(frame(FrameKind::CState, 2), CouplerFaultMode::None);
        let replay = c.relay(ChannelObservation::silence(), CouplerFaultMode::OutOfSlot);
        assert_eq!(replay, frame(FrameKind::CState, 2));
    }

    #[test]
    fn replay_with_empty_buffer_is_silence() {
        let mut c = StarCoupler::new(CouplerAuthority::FullShifting);
        let out = c.relay(ChannelObservation::silence(), CouplerFaultMode::OutOfSlot);
        assert_eq!(out, ChannelObservation::silence());
    }

    #[test]
    fn silence_on_the_channel_does_not_clear_the_buffer() {
        let mut c = StarCoupler::new(CouplerAuthority::FullShifting);
        let _ = c.relay(frame(FrameKind::ColdStart, 1), CouplerFaultMode::None);
        let _ = c.relay(ChannelObservation::silence(), CouplerFaultMode::None);
        assert_eq!(c.buffer().id, 1);
    }

    #[test]
    fn silence_fault_hides_frame_from_buffer_too() {
        // The buffer latches what is on the *channel*; a silenced frame
        // never reaches it.
        let mut c = StarCoupler::new(CouplerAuthority::FullShifting);
        let _ = c.relay(frame(FrameKind::CState, 4), CouplerFaultMode::Silence);
        assert_eq!(c.buffer(), BufferedFrame::empty());
    }

    #[test]
    fn replay_can_repeat_indefinitely() {
        // The replayed frame is on the channel, so the buffer re-latches
        // it — a stuck coupler can replay the same frame forever (the
        // unconstrained failure the checker's shortest trace exploits).
        let mut c = StarCoupler::new(CouplerAuthority::FullShifting);
        let _ = c.relay(frame(FrameKind::ColdStart, 1), CouplerFaultMode::None);
        for _ in 0..3 {
            let out = c.relay(ChannelObservation::silence(), CouplerFaultMode::OutOfSlot);
            assert_eq!(out, frame(FrameKind::ColdStart, 1));
        }
    }

    #[test]
    #[should_panic(expected = "out_of_slot fault requires")]
    fn out_of_slot_without_authority_is_a_harness_bug() {
        let mut c = StarCoupler::new(CouplerAuthority::SmallShifting);
        let _ = c.relay(ChannelObservation::silence(), CouplerFaultMode::OutOfSlot);
    }

    #[test]
    fn display_shows_buffer() {
        let mut c = StarCoupler::new(CouplerAuthority::FullShifting);
        let _ = c.relay(frame(FrameKind::ColdStart, 1), CouplerFaultMode::None);
        assert!(c.to_string().contains("cold_start(id=1)"));
    }
}
