//! Coupler fault modes (paper Section 4.4).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The error state of one star coupler during one TDMA slot.
///
/// The fault hypothesis requires that at most one of the two redundant
/// couplers is faulty at a time (`couplerA.fault = none ∨
/// couplerB.fault = none`); the cluster model enforces that constraint.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum CouplerFaultMode {
    /// Error-free operation.
    #[default]
    None,
    /// Replaces whatever is sent on the coupler's channel by silence.
    Silence,
    /// Places a bad frame or noise on the bus, regardless of whether a
    /// frame was sent.
    BadFrame,
    /// Re-sends the last frame the coupler received — only possible for a
    /// coupler authorized to buffer entire frames.
    OutOfSlot,
}

impl CouplerFaultMode {
    /// All four modes.
    #[must_use]
    pub fn all() -> [CouplerFaultMode; 4] {
        [
            CouplerFaultMode::None,
            CouplerFaultMode::Silence,
            CouplerFaultMode::BadFrame,
            CouplerFaultMode::OutOfSlot,
        ]
    }

    /// Whether this mode stays within TTP/C's passive-channel fault
    /// hypothesis (corrupting or dropping frames, never generating them).
    #[must_use]
    pub fn is_passive(self) -> bool {
        !matches!(self, CouplerFaultMode::OutOfSlot)
    }

    /// Whether the coupler is faulty at all this slot.
    #[must_use]
    pub fn is_faulty(self) -> bool {
        self != CouplerFaultMode::None
    }
}

impl fmt::Display for CouplerFaultMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CouplerFaultMode::None => "none",
            CouplerFaultMode::Silence => "silence",
            CouplerFaultMode::BadFrame => "bad_frame",
            CouplerFaultMode::OutOfSlot => "out_of_slot",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_slot_is_the_only_active_fault() {
        for mode in CouplerFaultMode::all() {
            assert_eq!(mode.is_passive(), mode != CouplerFaultMode::OutOfSlot);
        }
    }

    #[test]
    fn none_is_not_faulty() {
        assert!(!CouplerFaultMode::None.is_faulty());
        assert!(CouplerFaultMode::Silence.is_faulty());
        assert!(CouplerFaultMode::BadFrame.is_faulty());
        assert!(CouplerFaultMode::OutOfSlot.is_faulty());
    }

    #[test]
    fn display_matches_paper_naming() {
        assert_eq!(CouplerFaultMode::OutOfSlot.to_string(), "out_of_slot");
        assert_eq!(CouplerFaultMode::BadFrame.to_string(), "bad_frame");
    }
}
