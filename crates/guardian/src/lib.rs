//! # tta-guardian
//!
//! Bus-guardian models for the TTA: decentralized (per-node) guardians for
//! the bus topology and centralized star couplers for the star topology,
//! with the four authority levels the paper compares (Section 4.1):
//!
//! * **Passive** — cannot stop frames, cannot shift frames in time;
//! * **Time windows** — can open/close bus write access per slot;
//! * **Small shifting** — can additionally nudge frame timing slightly;
//! * **Full shifting** — can additionally *buffer whole frames* and send
//!   them later.
//!
//! The paper's central result is that the last capability converts a
//! coupler fault into an active masquerading failure: a faulty
//! full-shifting coupler can replay the last buffered frame in a later
//! slot (the `out_of_slot` fault mode), which no less-authorized coupler
//! can exhibit. [`StarCoupler`] implements exactly the Section 4.4
//! equations; [`CouplerAuthority::fault_modes`] ties fault modes to
//! authority.
//!
//! For the simulator the crate additionally models slightly-off-
//! specification defects ([`sos`]), central signal reshaping and semantic
//! analysis ([`reshape`]), local per-node guardians ([`local`]) and the
//! leaky-bucket bit buffer behind the Section 6 analysis ([`buffer`]).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod authority;
pub mod buffer;
mod coupler;
pub mod enhanced;
mod fault;
pub mod local;
pub mod reshape;
pub mod sos;
pub mod window;

pub use authority::CouplerAuthority;
pub use coupler::{BufferedFrame, StarCoupler};
pub use fault::CouplerFaultMode;
