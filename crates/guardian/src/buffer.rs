//! The guardian's leaky-bucket bit buffer — an *executable* counterpart of
//! the paper's Section 6 buffer analysis.
//!
//! When the clock of the central guardian differs from the clock of the
//! sending node, the guardian must buffer part of every frame it
//! forwards: if its clock is slower, incoming bits pile up; if it is
//! faster, it must pre-buffer enough bits not to run dry mid-frame. The
//! paper's closed form (eq. 1) is `B_min = le + ρ · f_max`. This module
//! simulates the forwarding bit-by-bit and reports the actual peak buffer
//! occupancy, which the test suite and benches compare against the closed
//! form in `tta-analysis`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Result of forwarding one frame through a rate-mismatched guardian.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForwardingReport {
    /// Peak number of bits simultaneously held in the buffer.
    pub peak_occupancy_bits: u32,
    /// Bits the guardian had to accumulate before starting to forward.
    pub prebuffer_bits: u32,
    /// Total forwarding latency added by the guardian, in incoming bit
    /// times.
    pub added_latency_bits: f64,
}

impl fmt::Display for ForwardingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "peak {} bits (prebuffer {}, +{:.2} bit-times latency)",
            self.peak_occupancy_bits, self.prebuffer_bits, self.added_latency_bits
        )
    }
}

/// Simulates forwarding a frame of `frame_bits` bits arriving at
/// `node_rate` (bits per unit time) and leaving at `guardian_rate`,
/// after mandatorily accumulating `line_encoding_bits` bits for start-of-
/// frame detection.
///
/// The guardian starts transmitting as early as possible without ever
/// running dry: the prebuffer is the minimal number of initially held
/// bits such that every output bit has already arrived when its
/// transmission starts.
///
/// # Panics
///
/// Panics if any rate is non-positive, non-finite, or `frame_bits == 0`.
#[must_use]
pub fn simulate_forwarding(
    frame_bits: u32,
    node_rate: f64,
    guardian_rate: f64,
    line_encoding_bits: u32,
) -> ForwardingReport {
    assert!(frame_bits > 0, "cannot forward an empty frame");
    assert!(
        node_rate.is_finite() && node_rate > 0.0,
        "node rate must be positive, got {node_rate}"
    );
    assert!(
        guardian_rate.is_finite() && guardian_rate > 0.0,
        "guardian rate must be positive, got {guardian_rate}"
    );

    let f = f64::from(frame_bits);
    let le = f64::from(line_encoding_bits);

    // Arrival time of incoming bit k (0-based, completed at t_a):
    //   t_a(k) = (k + 1) / node_rate
    // Output of bit k starts at t_start + k / guardian_rate and needs the
    // bit to be fully arrived: t_start + k/r_g >= (k+1)/r_n for all k.
    // The binding constraint maximizes (k+1)/r_n - k/r_g over k in
    // [0, f-1]; it is linear in k so the extremum is at an endpoint.
    let constraint = |k: f64| (k + 1.0) / node_rate - k / guardian_rate;
    let t_start_min = constraint(0.0).max(constraint(f - 1.0)).max(0.0);
    // The le line-encoding bits are consumed by start-of-frame detection,
    // not forwarded, so their arrival time adds on top of the
    // rate-compensation delay (the paper's B_min = le + ρ·f is additive).
    let t_start = t_start_min + le / node_rate;

    // Prebuffer: bits arrived by t_start (capped by the frame length).
    let prebuffer = (t_start * node_rate).min(f).ceil();

    // Peak occupancy: occupancy(t) = arrived(t) - sent(t). Both are
    // piecewise linear; the peak is at one of: transmission start, end of
    // arrivals, or end of transmission.
    let arrivals_end = f / node_rate;
    let sending_end = t_start + f / guardian_rate;
    let occupancy = |t: f64| -> f64 {
        let arrived = (t * node_rate).floor().clamp(0.0, f);
        let sent = if t <= t_start {
            0.0
        } else {
            ((t - t_start) * guardian_rate).floor().clamp(0.0, f)
        };
        arrived - sent
    };
    let peak = occupancy(t_start)
        .max(occupancy(arrivals_end))
        .max(occupancy(sending_end.min(arrivals_end)));

    ForwardingReport {
        peak_occupancy_bits: peak.max(0.0) as u32,
        prebuffer_bits: prebuffer.max(0.0) as u32,
        added_latency_bits: t_start * node_rate,
    }
}

/// Closed-form minimum buffer from the paper's eq. (1):
/// `B_min = le + ρ · f_max`, rounded up to whole bits.
#[must_use]
pub fn closed_form_min_buffer(frame_bits: u32, rho: f64, line_encoding_bits: u32) -> u32 {
    assert!(
        rho.is_finite() && (0.0..1.0).contains(&rho),
        "ρ must be in [0, 1), got {rho}"
    );
    line_encoding_bits + (rho * f64::from(frame_bits)).ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_clocks_need_only_line_encoding() {
        let r = simulate_forwarding(1000, 1.0, 1.0, 4);
        assert!(
            (4..=5).contains(&r.prebuffer_bits),
            "prebuffer {}",
            r.prebuffer_bits
        );
        assert!(r.peak_occupancy_bits <= 6);
    }

    #[test]
    fn slow_guardian_accumulates_proportionally() {
        // Guardian 1% slower: ~1% of the frame piles up on top of le.
        let frame = 10_000;
        let r = simulate_forwarding(frame, 1.0, 0.99, 4);
        let expected = closed_form_min_buffer(frame, 0.01, 4);
        let diff = (i64::from(r.peak_occupancy_bits) - i64::from(expected)).abs();
        assert!(
            diff <= 2,
            "simulated {} vs closed form {expected}",
            r.peak_occupancy_bits
        );
    }

    #[test]
    fn fast_guardian_prebuffers_proportionally() {
        // Guardian 1% faster: must pre-hold ~1% of the frame or run dry.
        let frame = 10_000;
        let r = simulate_forwarding(frame, 0.99, 1.0, 4);
        // ρ = (1.0 - 0.99) / 1.0 = 0.01
        let expected = closed_form_min_buffer(frame, 0.01, 4);
        let diff = (i64::from(r.prebuffer_bits) - i64::from(expected)).abs();
        assert!(
            diff <= 2,
            "prebuffer {} vs closed form {expected}",
            r.prebuffer_bits
        );
    }

    #[test]
    fn paper_crystal_example_matches_eq_six_scale() {
        // ±100 ppm crystals: ρ = 0.0002. For the largest frame that fits a
        // 27-bit buffer budget (115,000 bits, eq. 6), the peak occupancy
        // must come out at B_max = f_min - 1 = 27 bits.
        let r = simulate_forwarding(115_000, 1.0, 1.0 - 2e-4, 4);
        assert!(
            (26..=28).contains(&r.peak_occupancy_bits),
            "expected ~27 bits, got {}",
            r.peak_occupancy_bits
        );
    }

    #[test]
    fn occupancy_grows_with_frame_length() {
        let short = simulate_forwarding(100, 1.0, 0.97, 4).peak_occupancy_bits;
        let long = simulate_forwarding(10_000, 1.0, 0.97, 4).peak_occupancy_bits;
        assert!(long > short);
    }

    #[test]
    fn occupancy_grows_with_rate_mismatch() {
        let mild = simulate_forwarding(10_000, 1.0, 0.999, 4).peak_occupancy_bits;
        let severe = simulate_forwarding(10_000, 1.0, 0.9, 4).peak_occupancy_bits;
        assert!(severe > mild);
    }

    #[test]
    fn latency_includes_line_encoding() {
        let r = simulate_forwarding(100, 1.0, 1.0, 8);
        assert!(r.added_latency_bits >= 8.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_is_rejected() {
        let _ = simulate_forwarding(10, 0.0, 1.0, 4);
    }

    #[test]
    #[should_panic(expected = "empty frame")]
    fn empty_frame_is_rejected() {
        let _ = simulate_forwarding(0, 1.0, 1.0, 4);
    }

    #[test]
    fn closed_form_rounds_up() {
        assert_eq!(closed_form_min_buffer(1000, 0.0015, 4), 4 + 2);
        assert_eq!(closed_form_min_buffer(1000, 0.0, 4), 4);
    }

    #[test]
    fn report_display_is_informative() {
        let r = simulate_forwarding(100, 1.0, 1.0, 4);
        assert!(r.to_string().contains("peak"));
    }
}
