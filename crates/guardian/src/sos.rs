//! Slightly-off-specification (SOS) defects.
//!
//! An SOS fault (Ademaj, HLDVT'02; paper Section 2.2) is a frame that is
//! *marginally* out of specification — slightly late, slightly early, or
//! slightly under-powered — so that receivers with slightly different
//! hardware tolerances disagree on whether it is valid. In a bus topology
//! this disagreement splits the membership into cliques and shuts down
//! healthy nodes; a central guardian with signal-reshaping authority
//! repairs the defect before the receivers ever see it.
//!
//! This module models the defect and the per-receiver acceptance decision.
//! Acceptance is deterministic given the receiver's tolerance: receiver
//! tolerances are drawn once per node (manufacturing variation), and a
//! defect of magnitude `m` is accepted exactly by receivers whose
//! tolerance exceeds `m`. This captures the paper's mechanism (receivers
//! *systematically* disagree) without random per-frame coin flips.

use serde::{Deserialize, Serialize};
use std::fmt;

/// In which domain a frame is slightly off specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SosDomain {
    /// Frame timing is marginally outside its slot window.
    Time,
    /// Signal amplitude is marginally below the required level.
    Value,
}

impl fmt::Display for SosDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SosDomain::Time => "time",
            SosDomain::Value => "value",
        })
    }
}

/// A slightly-off-specification defect attached to a frame.
///
/// `magnitude` is normalized to `[0, 1]`: 0 is perfectly in spec, 1 is
/// fully out of spec (rejected by every receiver). Values strictly
/// between those extremes are the SOS region where receivers disagree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SosDefect {
    domain: SosDomain,
    magnitude: f64,
}

impl SosDefect {
    /// Creates a defect.
    ///
    /// # Panics
    ///
    /// Panics if `magnitude` is outside `[0, 1]` or not finite.
    #[must_use]
    pub fn new(domain: SosDomain, magnitude: f64) -> Self {
        assert!(
            magnitude.is_finite() && (0.0..=1.0).contains(&magnitude),
            "SOS magnitude must be in [0, 1], got {magnitude}"
        );
        SosDefect { domain, magnitude }
    }

    /// The affected domain.
    #[must_use]
    pub fn domain(&self) -> SosDomain {
        self.domain
    }

    /// Normalized defect magnitude.
    #[must_use]
    pub fn magnitude(&self) -> f64 {
        self.magnitude
    }

    /// Whether this defect can split receivers at all (it is in the open
    /// interval where tolerances differ).
    #[must_use]
    pub fn is_marginal(&self) -> bool {
        self.magnitude > 0.0 && self.magnitude < 1.0
    }
}

impl fmt::Display for SosDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SOS({} domain, magnitude {:.2})",
            self.domain, self.magnitude
        )
    }
}

/// A receiver's hardware tolerance: the largest defect magnitude it still
/// accepts, per domain. Manufacturing variation makes these differ
/// slightly between nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReceiverTolerance {
    time: f64,
    value: f64,
}

impl ReceiverTolerance {
    /// Creates a tolerance profile.
    ///
    /// # Panics
    ///
    /// Panics if either tolerance is outside `[0, 1]`.
    #[must_use]
    pub fn new(time: f64, value: f64) -> Self {
        for (name, t) in [("time", time), ("value", value)] {
            assert!(
                t.is_finite() && (0.0..=1.0).contains(&t),
                "{name} tolerance must be in [0, 1], got {t}"
            );
        }
        ReceiverTolerance { time, value }
    }

    /// The nominal receiver: accepts defects up to magnitude 0.5 in both
    /// domains.
    #[must_use]
    pub fn nominal() -> Self {
        ReceiverTolerance::new(0.5, 0.5)
    }

    /// Tolerance in the given domain.
    #[must_use]
    pub fn in_domain(&self, domain: SosDomain) -> f64 {
        match domain {
            SosDomain::Time => self.time,
            SosDomain::Value => self.value,
        }
    }

    /// Whether this receiver accepts a frame carrying `defect` (no defect
    /// is always accepted).
    #[must_use]
    pub fn accepts(&self, defect: Option<&SosDefect>) -> bool {
        match defect {
            None => true,
            Some(d) => d.magnitude() <= self.in_domain(d.domain()),
        }
    }
}

impl fmt::Display for ReceiverTolerance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tolerance(time {:.2}, value {:.2})",
            self.time, self.value
        )
    }
}

/// Whether a set of receivers disagrees about a defective frame — the
/// definition of an SOS *failure* (some accept, some reject).
#[must_use]
pub fn receivers_disagree(tolerances: &[ReceiverTolerance], defect: &SosDefect) -> bool {
    let accepted = tolerances
        .iter()
        .filter(|t| t.accepts(Some(defect)))
        .count();
    accepted != 0 && accepted != tolerances.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_defect_is_always_accepted() {
        assert!(ReceiverTolerance::new(0.0, 0.0).accepts(None));
    }

    #[test]
    fn acceptance_thresholds_on_tolerance() {
        let tol = ReceiverTolerance::new(0.3, 0.7);
        let mild_time = SosDefect::new(SosDomain::Time, 0.2);
        let bad_time = SosDefect::new(SosDomain::Time, 0.4);
        assert!(tol.accepts(Some(&mild_time)));
        assert!(!tol.accepts(Some(&bad_time)));
        // Same magnitudes in the value domain use the other threshold.
        let mild_value = SosDefect::new(SosDomain::Value, 0.4);
        assert!(tol.accepts(Some(&mild_value)));
    }

    #[test]
    fn marginal_defects_split_heterogeneous_receivers() {
        let tolerances = [
            ReceiverTolerance::new(0.45, 0.5),
            ReceiverTolerance::new(0.55, 0.5),
        ];
        let defect = SosDefect::new(SosDomain::Time, 0.5);
        assert!(receivers_disagree(&tolerances, &defect));
    }

    #[test]
    fn extreme_defects_produce_agreement() {
        let tolerances = [
            ReceiverTolerance::new(0.45, 0.5),
            ReceiverTolerance::new(0.55, 0.5),
        ];
        let perfect = SosDefect::new(SosDomain::Time, 0.0);
        let hopeless = SosDefect::new(SosDomain::Time, 1.0);
        assert!(!receivers_disagree(&tolerances, &perfect));
        assert!(!receivers_disagree(&tolerances, &hopeless));
    }

    #[test]
    fn homogeneous_receivers_never_disagree() {
        let tolerances = [ReceiverTolerance::nominal(); 4];
        for m in [0.0, 0.3, 0.5, 0.7, 1.0] {
            let defect = SosDefect::new(SosDomain::Value, m);
            assert!(!receivers_disagree(&tolerances, &defect), "magnitude {m}");
        }
    }

    #[test]
    fn is_marginal_excludes_extremes() {
        assert!(!SosDefect::new(SosDomain::Time, 0.0).is_marginal());
        assert!(SosDefect::new(SosDomain::Time, 0.5).is_marginal());
        assert!(!SosDefect::new(SosDomain::Time, 1.0).is_marginal());
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn magnitude_is_range_checked() {
        let _ = SosDefect::new(SosDomain::Time, 1.5);
    }

    #[test]
    fn display_is_informative() {
        let d = SosDefect::new(SosDomain::Value, 0.25);
        assert!(d.to_string().contains("value"));
        assert!(ReceiverTolerance::nominal().to_string().contains("0.50"));
    }
}
