//! Star-coupler authority levels (paper Section 4.1).

use crate::CouplerFaultMode;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How much centralized authority a star coupler has been given.
///
/// Each level strictly includes the capabilities of the previous one; each
/// capability enlarges the set of fault modes the coupler can exhibit
/// when *it* fails — the tradeoff the paper quantifies.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum CouplerAuthority {
    /// Does not stop frames and does not shift frames in time — a plain
    /// signal distributor.
    #[default]
    Passive,
    /// Can open and close bus write access to nodes (TDMA window
    /// enforcement), but cannot shift frames in time.
    TimeWindows,
    /// Same as [`CouplerAuthority::TimeWindows`], plus slight adjustments
    /// to frame timing (e.g. shifting a frame slightly ahead to fit its
    /// window) — requires buffering *less than one frame*.
    SmallShifting,
    /// Same as [`CouplerAuthority::SmallShifting`], plus buffering entire
    /// frames for large timing adjustments — the capability the paper
    /// shows must be prohibited.
    FullShifting,
}

impl CouplerAuthority {
    /// All four levels in increasing order of authority.
    #[must_use]
    pub fn all() -> [CouplerAuthority; 4] {
        [
            CouplerAuthority::Passive,
            CouplerAuthority::TimeWindows,
            CouplerAuthority::SmallShifting,
            CouplerAuthority::FullShifting,
        ]
    }

    /// Whether the coupler can block transmissions (cut a babbling node
    /// off outside its slot).
    #[must_use]
    pub fn can_block(self) -> bool {
        self >= CouplerAuthority::TimeWindows
    }

    /// Whether the coupler can make small (sub-frame) timing adjustments,
    /// e.g. to repair time-domain SOS defects.
    #[must_use]
    pub fn can_shift_small(self) -> bool {
        self >= CouplerAuthority::SmallShifting
    }

    /// Whether the coupler can store a complete frame and transmit it at a
    /// later time.
    #[must_use]
    pub fn can_buffer_full_frames(self) -> bool {
        self == CouplerAuthority::FullShifting
    }

    /// The fault modes a coupler of this authority can exhibit
    /// (Section 4.4): every coupler can drop or corrupt traffic; only a
    /// full-shifting coupler can re-send a buffered frame out of its slot,
    /// because only it holds complete frames.
    #[must_use]
    pub fn fault_modes(self) -> Vec<CouplerFaultMode> {
        let mut modes = vec![
            CouplerFaultMode::None,
            CouplerFaultMode::Silence,
            CouplerFaultMode::BadFrame,
        ];
        if self.can_buffer_full_frames() {
            modes.push(CouplerFaultMode::OutOfSlot);
        }
        modes
    }

    /// Whether faults of this coupler stay within TTP/C's *passive
    /// channel* fault hypothesis (channels may corrupt or drop frames but
    /// never generate them). Full-frame buffering breaks the hypothesis.
    #[must_use]
    pub fn preserves_passive_fault_hypothesis(self) -> bool {
        !self.can_buffer_full_frames()
    }
}

impl fmt::Display for CouplerAuthority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CouplerAuthority::Passive => "passive",
            CouplerAuthority::TimeWindows => "time windows",
            CouplerAuthority::SmallShifting => "small shifting",
            CouplerAuthority::FullShifting => "full shifting",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn authority_levels_are_strictly_ordered() {
        let all = CouplerAuthority::all();
        for w in all.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn capabilities_are_cumulative() {
        use CouplerAuthority::*;
        assert!(!Passive.can_block());
        assert!(TimeWindows.can_block() && !TimeWindows.can_shift_small());
        assert!(SmallShifting.can_block() && SmallShifting.can_shift_small());
        assert!(!SmallShifting.can_buffer_full_frames());
        assert!(FullShifting.can_block() && FullShifting.can_shift_small());
        assert!(FullShifting.can_buffer_full_frames());
    }

    #[test]
    fn only_full_shifting_exhibits_out_of_slot() {
        for auth in CouplerAuthority::all() {
            let has_oos = auth.fault_modes().contains(&CouplerFaultMode::OutOfSlot);
            assert_eq!(has_oos, auth == CouplerAuthority::FullShifting, "{auth}");
        }
    }

    #[test]
    fn every_authority_can_drop_and_corrupt() {
        for auth in CouplerAuthority::all() {
            let modes = auth.fault_modes();
            assert!(modes.contains(&CouplerFaultMode::Silence));
            assert!(modes.contains(&CouplerFaultMode::BadFrame));
            assert!(modes.contains(&CouplerFaultMode::None));
        }
    }

    #[test]
    fn passive_fault_hypothesis_breaks_exactly_at_full_shifting() {
        use CouplerAuthority::*;
        assert!(Passive.preserves_passive_fault_hypothesis());
        assert!(TimeWindows.preserves_passive_fault_hypothesis());
        assert!(SmallShifting.preserves_passive_fault_hypothesis());
        assert!(!FullShifting.preserves_passive_fault_hypothesis());
    }

    #[test]
    fn display_matches_paper_naming() {
        assert_eq!(CouplerAuthority::FullShifting.to_string(), "full shifting");
        assert_eq!(CouplerAuthority::TimeWindows.to_string(), "time windows");
    }
}
