//! Central-guardian protections: active signal reshaping and semantic
//! analysis (Bauer/Kopetz/Steiner, ISADS'03; paper Sections 1–2).
//!
//! A central guardian in the star topology may be authorized to
//!
//! 1. **reshape** frames — boost value-domain SOS signals and re-time
//!    time-domain SOS signals so all receivers see a clean frame,
//! 2. **enforce windows** — block any transmission outside the sender's
//!    slot (babbling-idiot and masquerading protection), and
//! 3. **semantically analyze** frames — drop cold-start frames whose
//!    claimed round-slot position does not match their slot of arrival and
//!    frames whose C-state the guardian knows to be wrong.
//!
//! These protections require the guardian to buffer `B_min` bits of each
//! frame (Section 6, eq. 1); [`crate::buffer`] quantifies that cost.

use crate::sos::{SosDefect, SosDomain};
use crate::CouplerAuthority;
use serde::{Deserialize, Serialize};
use std::fmt;
use tta_types::{Frame, FrameClass, NodeId, SlotIndex};

/// What a central guardian did with a frame that passed through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GuardianAction {
    /// Forwarded unchanged.
    Forwarded,
    /// Forwarded after repairing an SOS defect (reshaping).
    Reshaped(SosDomain),
    /// Blocked: transmission outside the sender's window.
    BlockedOffSlot,
    /// Blocked: frame claims an identity inconsistent with its slot
    /// (masquerading).
    BlockedMasquerade {
        /// Identity the frame claimed.
        claimed: NodeId,
        /// Sender the schedule assigns to the slot.
        scheduled: NodeId,
    },
    /// Blocked: cold-start frame whose round-slot position is inconsistent
    /// with the guardian's own startup observation.
    BlockedBadColdStart,
}

impl GuardianAction {
    /// Whether the frame reached the receivers.
    #[must_use]
    pub fn passed(self) -> bool {
        matches!(
            self,
            GuardianAction::Forwarded | GuardianAction::Reshaped(_)
        )
    }
}

impl fmt::Display for GuardianAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardianAction::Forwarded => write!(f, "forwarded"),
            GuardianAction::Reshaped(d) => write!(f, "reshaped ({d} domain)"),
            GuardianAction::BlockedOffSlot => write!(f, "blocked (off slot)"),
            GuardianAction::BlockedMasquerade { claimed, scheduled } => {
                write!(f, "blocked (masquerade: {claimed} in {scheduled}'s slot)")
            }
            GuardianAction::BlockedBadColdStart => write!(f, "blocked (bad cold-start)"),
        }
    }
}

/// The protective filter of a central guardian, parameterized by the
/// coupler's authority: only authorities that can block may block; only
/// authorities that can shift may reshape time-domain defects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SemanticFilter {
    authority: CouplerAuthority,
}

impl SemanticFilter {
    /// Creates a filter for a guardian of the given authority.
    #[must_use]
    pub fn new(authority: CouplerAuthority) -> Self {
        SemanticFilter { authority }
    }

    /// The guardian's authority.
    #[must_use]
    pub fn authority(&self) -> CouplerAuthority {
        self.authority
    }

    /// Filters one wire frame arriving in `slot`, which the MEDL assigns
    /// to `scheduled_sender`. `in_window` reports whether the transmission
    /// respected its time window, `defect` any SOS defect it carries, and
    /// `expected_round_slot` the guardian's own belief about the current
    /// round-slot position during startup (None before it has one).
    ///
    /// Returns the action taken and, when the frame passes, the (possibly
    /// repaired) defect status.
    #[must_use]
    pub fn filter(
        &self,
        frame: &Frame,
        slot: SlotIndex,
        scheduled_sender: NodeId,
        in_window: bool,
        defect: Option<SosDefect>,
        expected_round_slot: Option<u16>,
    ) -> (GuardianAction, Option<SosDefect>) {
        let can_block = self.authority.can_block();

        // 1. Window enforcement (babbling idiot / off-slot).
        if !in_window && can_block {
            return (GuardianAction::BlockedOffSlot, None);
        }

        // 2. Masquerading: claimed sender vs scheduled sender. Requires
        //    inspecting header bits, which any blocking guardian buffers.
        if can_block && frame.sender() != scheduled_sender {
            return (
                GuardianAction::BlockedMasquerade {
                    claimed: frame.sender(),
                    scheduled: scheduled_sender,
                },
                None,
            );
        }

        // 3. Cold-start semantic analysis: the claimed round-slot position
        //    must match the guardian's expectation. This is the check
        //    that stops masquerading during startup (frames arrive before
        //    a global time exists, so arrival time proves nothing).
        if can_block && frame.class() == FrameClass::ColdStart {
            if let (Some(expected), Some(cs)) = (expected_round_slot, frame.cstate()) {
                if cs.round_slot().get() != expected {
                    return (GuardianAction::BlockedBadColdStart, None);
                }
            }
            // Cold-start frames must also claim the slot they arrive in
            // under the identity schedule.
            if let Some(cs) = frame.cstate() {
                if cs.round_slot().get() != slot.get() {
                    return (GuardianAction::BlockedBadColdStart, None);
                }
            }
        }

        // 4. Signal reshaping of SOS defects.
        match defect {
            Some(d) if d.magnitude() > 0.0 => {
                let can_fix = match d.domain() {
                    SosDomain::Value => can_block, // amplitude boost: any active hub
                    SosDomain::Time => self.authority.can_shift_small(),
                };
                if can_fix {
                    (GuardianAction::Reshaped(d.domain()), None)
                } else {
                    (GuardianAction::Forwarded, Some(d))
                }
            }
            other => (GuardianAction::Forwarded, other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_types::{CState, FrameBuilder, MembershipVector};

    fn cold_start_frame(sender: u8, round_slot: u16) -> Frame {
        FrameBuilder::new(FrameClass::ColdStart, NodeId::new(sender))
            .cold_start(0, round_slot)
            .build()
            .unwrap()
    }

    fn iframe(sender: u8) -> Frame {
        FrameBuilder::new(FrameClass::IFrame, NodeId::new(sender))
            .cstate(CState::new(5, 1, 0, MembershipVector::full(4)))
            .build()
            .unwrap()
    }

    fn filter(auth: CouplerAuthority) -> SemanticFilter {
        SemanticFilter::new(auth)
    }

    #[test]
    fn passive_hub_forwards_everything() {
        let f = filter(CouplerAuthority::Passive);
        let frame = iframe(3); // masquerading: slot 1 belongs to node 0
        let (action, _) = f.filter(&frame, SlotIndex::new(1), NodeId::new(0), false, None, None);
        assert_eq!(action, GuardianAction::Forwarded);
    }

    #[test]
    fn blocking_hub_stops_off_slot_transmissions() {
        let f = filter(CouplerAuthority::TimeWindows);
        let frame = iframe(0);
        let (action, _) = f.filter(&frame, SlotIndex::new(1), NodeId::new(0), false, None, None);
        assert_eq!(action, GuardianAction::BlockedOffSlot);
        assert!(!action.passed());
    }

    #[test]
    fn blocking_hub_stops_masquerading() {
        let f = filter(CouplerAuthority::TimeWindows);
        let frame = iframe(3);
        let (action, _) = f.filter(&frame, SlotIndex::new(1), NodeId::new(0), true, None, None);
        assert_eq!(
            action,
            GuardianAction::BlockedMasquerade {
                claimed: NodeId::new(3),
                scheduled: NodeId::new(0),
            }
        );
    }

    #[test]
    fn cold_start_round_slot_is_checked_against_expectation() {
        let f = filter(CouplerAuthority::SmallShifting);
        let frame = cold_start_frame(0, 1);
        // Guardian expects round-slot 1: passes.
        let (ok, _) = f.filter(
            &frame,
            SlotIndex::new(1),
            NodeId::new(0),
            true,
            None,
            Some(1),
        );
        assert_eq!(ok, GuardianAction::Forwarded);
        // Guardian expects round-slot 3: blocked.
        let (bad, _) = f.filter(
            &frame,
            SlotIndex::new(1),
            NodeId::new(0),
            true,
            None,
            Some(3),
        );
        assert_eq!(bad, GuardianAction::BlockedBadColdStart);
    }

    #[test]
    fn cold_start_must_claim_its_arrival_slot() {
        let f = filter(CouplerAuthority::TimeWindows);
        let frame = cold_start_frame(0, 2); // claims slot 2, arrives in slot 1
        let (action, _) = f.filter(&frame, SlotIndex::new(1), NodeId::new(0), true, None, None);
        assert_eq!(action, GuardianAction::BlockedBadColdStart);
    }

    #[test]
    fn value_sos_is_reshaped_by_any_active_hub() {
        let f = filter(CouplerAuthority::TimeWindows);
        let frame = iframe(0);
        let defect = SosDefect::new(SosDomain::Value, 0.5);
        let (action, residual) = f.filter(
            &frame,
            SlotIndex::new(1),
            NodeId::new(0),
            true,
            Some(defect),
            None,
        );
        assert_eq!(action, GuardianAction::Reshaped(SosDomain::Value));
        assert_eq!(residual, None);
    }

    #[test]
    fn time_sos_needs_shifting_authority() {
        let frame = iframe(0);
        let defect = SosDefect::new(SosDomain::Time, 0.5);
        // Time-windows hub cannot re-time: the defect passes through.
        let (action, residual) = filter(CouplerAuthority::TimeWindows).filter(
            &frame,
            SlotIndex::new(1),
            NodeId::new(0),
            true,
            Some(defect),
            None,
        );
        assert_eq!(action, GuardianAction::Forwarded);
        assert_eq!(residual, Some(defect));
        // Small-shifting hub repairs it.
        let (action, residual) = filter(CouplerAuthority::SmallShifting).filter(
            &frame,
            SlotIndex::new(1),
            NodeId::new(0),
            true,
            Some(defect),
            None,
        );
        assert_eq!(action, GuardianAction::Reshaped(SosDomain::Time));
        assert_eq!(residual, None);
    }

    #[test]
    fn clean_frames_pass_all_authorities() {
        for auth in CouplerAuthority::all() {
            let frame = iframe(0);
            let (action, residual) =
                filter(auth).filter(&frame, SlotIndex::new(1), NodeId::new(0), true, None, None);
            assert_eq!(action, GuardianAction::Forwarded, "{auth}");
            assert_eq!(residual, None);
        }
    }

    #[test]
    fn action_display_is_informative() {
        let action = GuardianAction::BlockedMasquerade {
            claimed: NodeId::new(3),
            scheduled: NodeId::new(0),
        };
        assert!(action.to_string().contains("masquerade"));
    }
}
