//! TDMA transmission windows.
//!
//! A bus guardian — local or central — enforces fail-silence in the time
//! domain by opening the bus to a node only during that node's slot
//! window. Windows are measured in microticks; the window includes a
//! guard margin around the nominal slot so that correct frames with
//! benign jitter pass while off-slot transmissions are blocked.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open time window `[open, close)` in microticks, with a tolerance
/// margin for judging near-boundary transmissions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWindow {
    open: f64,
    close: f64,
    margin: f64,
}

impl TimeWindow {
    /// Creates a window.
    ///
    /// # Panics
    ///
    /// Panics if `close <= open` or `margin < 0`.
    #[must_use]
    pub fn new(open: f64, close: f64, margin: f64) -> Self {
        assert!(close > open, "window must have positive length");
        assert!(margin >= 0.0, "margin must be non-negative");
        TimeWindow {
            open,
            close,
            margin,
        }
    }

    /// Window opening time.
    #[must_use]
    pub fn open(&self) -> f64 {
        self.open
    }

    /// Window closing time.
    #[must_use]
    pub fn close(&self) -> f64 {
        self.close
    }

    /// Guard margin.
    #[must_use]
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// Whether a transmission spanning `[start, end)` lies fully inside
    /// the window (ignoring the margin).
    #[must_use]
    pub fn contains(&self, start: f64, end: f64) -> bool {
        start >= self.open && end <= self.close
    }

    /// Classifies a transmission against the window: inside, slightly off
    /// (within the margin — the time-domain SOS region where receivers
    /// may disagree), or clearly outside.
    #[must_use]
    pub fn classify(&self, start: f64, end: f64) -> WindowVerdict {
        if self.contains(start, end) {
            WindowVerdict::Inside
        } else if start >= self.open - self.margin && end <= self.close + self.margin {
            WindowVerdict::SlightlyOff
        } else {
            WindowVerdict::Outside
        }
    }

    /// The smallest forward shift that brings `[start, end)` inside the
    /// window, if the transmission fits at all. This is the "small
    /// shifting" adjustment a [`crate::CouplerAuthority::SmallShifting`]
    /// coupler may apply.
    #[must_use]
    pub fn shift_to_fit(&self, start: f64, end: f64) -> Option<f64> {
        let len = end - start;
        if len > self.close - self.open {
            return None;
        }
        if self.contains(start, end) {
            return Some(0.0);
        }
        let shifted_start = if start < self.open {
            self.open
        } else {
            self.close - len
        };
        Some(shifted_start - start)
    }
}

impl fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}) ±{}", self.open, self.close, self.margin)
    }
}

/// Verdict of a window check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WindowVerdict {
    /// Fully inside the nominal window.
    Inside,
    /// Within the margin: some receivers will accept it, others will not
    /// — the time-domain SOS condition.
    SlightlyOff,
    /// Clearly off slot; every correct guardian blocks it.
    Outside,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> TimeWindow {
        TimeWindow::new(100.0, 200.0, 5.0)
    }

    #[test]
    fn containment_is_exact() {
        let w = window();
        assert!(w.contains(100.0, 200.0));
        assert!(w.contains(120.0, 180.0));
        assert!(!w.contains(99.9, 150.0));
        assert!(!w.contains(150.0, 200.1));
    }

    #[test]
    fn classification_has_three_zones() {
        let w = window();
        assert_eq!(w.classify(110.0, 190.0), WindowVerdict::Inside);
        assert_eq!(w.classify(97.0, 150.0), WindowVerdict::SlightlyOff);
        assert_eq!(w.classify(150.0, 203.0), WindowVerdict::SlightlyOff);
        assert_eq!(w.classify(80.0, 150.0), WindowVerdict::Outside);
        assert_eq!(w.classify(150.0, 250.0), WindowVerdict::Outside);
    }

    #[test]
    fn shift_to_fit_computes_minimal_correction() {
        let w = window();
        assert_eq!(w.shift_to_fit(110.0, 150.0), Some(0.0));
        assert_eq!(w.shift_to_fit(95.0, 135.0), Some(5.0));
        assert_eq!(w.shift_to_fit(180.0, 220.0), Some(-20.0));
    }

    #[test]
    fn oversized_transmission_cannot_fit() {
        let w = window();
        assert_eq!(w.shift_to_fit(50.0, 260.0), None);
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn inverted_window_is_rejected() {
        let _ = TimeWindow::new(10.0, 10.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_margin_is_rejected() {
        let _ = TimeWindow::new(0.0, 10.0, -1.0);
    }

    #[test]
    fn display_mentions_bounds() {
        assert_eq!(window().to_string(), "[100, 200) ±5");
    }
}
