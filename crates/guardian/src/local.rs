//! Decentralized (per-node) bus guardians — the bus-topology alternative
//! the paper compares the central design against.
//!
//! A local guardian sits between one node and the bus and opens the
//! transmission path only during that node's slot, enforcing fail-silence
//! in the time domain. Crucially, a local guardian cannot repair SOS
//! defects or check frame semantics — and a *fault* in one local guardian
//! affects only its own node, whereas a faulty central guardian affects a
//! whole channel (the asymmetry the paper examines).

use crate::window::{TimeWindow, WindowVerdict};
use serde::{Deserialize, Serialize};
use std::fmt;
use tta_types::{NodeId, SlotIndex};

/// Fault modes of a local guardian.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum LocalGuardianFault {
    /// Working correctly.
    #[default]
    None,
    /// Stuck closed: the guarded node is muted in every slot.
    StuckClosed,
    /// Stuck open: the guarded node can babble into any slot.
    StuckOpen,
}

impl fmt::Display for LocalGuardianFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LocalGuardianFault::None => "none",
            LocalGuardianFault::StuckClosed => "stuck_closed",
            LocalGuardianFault::StuckOpen => "stuck_open",
        })
    }
}

/// A per-node bus guardian.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalBusGuardian {
    node: NodeId,
    slot: SlotIndex,
    fault: LocalGuardianFault,
}

impl LocalBusGuardian {
    /// Creates a guardian for `node`, which owns `slot`.
    #[must_use]
    pub fn new(node: NodeId, slot: SlotIndex) -> Self {
        LocalBusGuardian {
            node,
            slot,
            fault: LocalGuardianFault::None,
        }
    }

    /// The guarded node.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The guarded node's slot.
    #[must_use]
    pub fn slot(&self) -> SlotIndex {
        self.slot
    }

    /// Current fault mode.
    #[must_use]
    pub fn fault(&self) -> LocalGuardianFault {
        self.fault
    }

    /// Injects (or clears) a fault.
    pub fn set_fault(&mut self, fault: LocalGuardianFault) {
        self.fault = fault;
    }

    /// Whether a transmission attempt by the guarded node in
    /// `current_slot` passes onto the bus.
    ///
    /// A healthy guardian opens exactly in the node's own slot; a
    /// stuck-closed one never opens; a stuck-open one always does — which
    /// is precisely what lets a faulty *node* behind a faulty guardian
    /// babble or masquerade.
    #[must_use]
    pub fn admits(&self, current_slot: SlotIndex) -> bool {
        match self.fault {
            LocalGuardianFault::None => current_slot == self.slot,
            LocalGuardianFault::StuckClosed => false,
            LocalGuardianFault::StuckOpen => true,
        }
    }

    /// Fine-grained time-domain check used by the simulator: a healthy
    /// guardian admits a transmission iff it fits its window. Local
    /// guardians cannot reshape, so slightly-off transmissions *pass
    /// through unrepaired* — the verdict is reported so receivers can
    /// disagree about them.
    #[must_use]
    pub fn admit_timed(&self, window: &TimeWindow, start: f64, end: f64) -> WindowVerdict {
        match self.fault {
            LocalGuardianFault::StuckClosed => WindowVerdict::Outside,
            LocalGuardianFault::StuckOpen => WindowVerdict::Inside,
            LocalGuardianFault::None => match window.classify(start, end) {
                // A local guardian's own clock is also marginal in the SOS
                // region, so it lets slightly-off frames through.
                WindowVerdict::SlightlyOff => WindowVerdict::SlightlyOff,
                v => v,
            },
        }
    }
}

impl fmt::Display for LocalBusGuardian {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "guardian[{} @ {}, fault {}]",
            self.node, self.slot, self.fault
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guardian() -> LocalBusGuardian {
        LocalBusGuardian::new(NodeId::new(1), SlotIndex::new(2))
    }

    #[test]
    fn healthy_guardian_opens_only_in_own_slot() {
        let g = guardian();
        assert!(g.admits(SlotIndex::new(2)));
        assert!(!g.admits(SlotIndex::new(1)));
        assert!(!g.admits(SlotIndex::new(3)));
    }

    #[test]
    fn stuck_closed_mutes_the_node() {
        let mut g = guardian();
        g.set_fault(LocalGuardianFault::StuckClosed);
        for s in 1..=4 {
            assert!(!g.admits(SlotIndex::new(s)));
        }
    }

    #[test]
    fn stuck_open_enables_babbling() {
        let mut g = guardian();
        g.set_fault(LocalGuardianFault::StuckOpen);
        for s in 1..=4 {
            assert!(g.admits(SlotIndex::new(s)));
        }
    }

    #[test]
    fn timed_check_passes_sos_frames_through() {
        let g = guardian();
        let w = TimeWindow::new(0.0, 100.0, 10.0);
        assert_eq!(g.admit_timed(&w, 10.0, 90.0), WindowVerdict::Inside);
        assert_eq!(g.admit_timed(&w, -5.0, 50.0), WindowVerdict::SlightlyOff);
        assert_eq!(g.admit_timed(&w, 200.0, 260.0), WindowVerdict::Outside);
    }

    #[test]
    fn faults_override_timed_check() {
        let mut g = guardian();
        let w = TimeWindow::new(0.0, 100.0, 10.0);
        g.set_fault(LocalGuardianFault::StuckClosed);
        assert_eq!(g.admit_timed(&w, 10.0, 90.0), WindowVerdict::Outside);
        g.set_fault(LocalGuardianFault::StuckOpen);
        assert_eq!(g.admit_timed(&w, 500.0, 600.0), WindowVerdict::Inside);
    }

    #[test]
    fn display_names_node_and_fault() {
        let mut g = guardian();
        g.set_fault(LocalGuardianFault::StuckOpen);
        let s = g.to_string();
        assert!(s.contains('B') && s.contains("stuck_open"));
    }
}
