//! Integration tests for the recovery layer: restart policies against
//! transient faults, end to end through the simulator.
//!
//! The pinned fault is the conformance suite's cold-start replay (a
//! full-shifting coupler replaying out of slot from slot 12) cut down
//! to a *transient* window, so the disturbance is real but the cause
//! goes away — exactly the case where a restart policy should matter.

use proptest::prelude::*;
use tta_guardian::{CouplerAuthority, CouplerFaultMode};
use tta_protocol::{ProtocolState, RestartPolicy};
use tta_sim::{CouplerFaultEvent, FaultPersistence, FaultPlan, SimBuilder, SlotEvent, Topology};

const SLOTS: u64 = 400;

/// A transient replay window: opens during startup (so the buffered
/// frame carries a cold-start frame and freezes a healthy node), closes
/// at slot 60.
fn transient_replay() -> FaultPlan {
    FaultPlan::none().with_coupler_fault(CouplerFaultEvent {
        channel: 0,
        mode: CouplerFaultMode::OutOfSlot,
        from_slot: 12,
        to_slot: 60,
        persistence: FaultPersistence::Transient,
    })
}

fn run(policy: RestartPolicy) -> tta_sim::SimReport {
    SimBuilder::new(4)
        .topology(Topology::Star)
        .authority(CouplerAuthority::FullShifting)
        .slots(SLOTS)
        .plan(transient_replay())
        .restart_policy(policy)
        .build()
        .run()
}

#[test]
fn never_turns_a_transient_replay_into_a_permanent_loss() {
    let report = run(RestartPolicy::Never);
    assert!(
        !report.healthy_frozen().is_empty(),
        "the replay must disturb the cluster:\n{report}"
    );
    // Freeze is absorbing: an episode opens but nothing restarts, and
    // the frozen node is lost for good even though the fault is over.
    assert!(!report.recovery().is_empty());
    assert!(report.recovery().iter().all(|e| e.restart_slot.is_none()));
    assert_eq!(report.time_to_reintegration(), None);
    assert!(!report.permanently_lost().is_empty(), "{report}");
    assert_eq!(
        report
            .log()
            .count(|e| matches!(e, SlotEvent::NodeRestarted { .. })),
        0
    );
}

#[test]
fn watchdog_recovers_the_same_transient_replay_with_bounded_ttr() {
    let report = run(RestartPolicy::Watchdog { silence_slots: 8 });
    assert!(!report.healthy_frozen().is_empty(), "{report}");
    assert!(report.permanently_lost().is_empty(), "{report}");
    assert!(
        report
            .recovery()
            .iter()
            .all(tta_sim::RecoveryEpisode::recovered),
        "every episode reintegrates:\n{report}"
    );
    // Bounded time to repair: the watchdog waits its silence threshold,
    // then the node re-runs startup; well under the remaining horizon.
    let ttr = report
        .time_to_reintegration()
        .expect("a recovered node has a TTR");
    assert!(ttr >= 8, "TTR includes the watchdog delay, got {ttr}");
    assert!(ttr < 120, "TTR should be far below the horizon, got {ttr}");
    // The restart shows up in the log and the recovered cluster ends at
    // full strength, strictly more available than the absorbing freeze.
    assert!(
        report
            .log()
            .count(|e| matches!(e, SlotEvent::NodeRestarted { .. }))
            > 0
    );
    assert!(
        report
            .log()
            .count(|e| matches!(e, SlotEvent::NodeReintegrated { .. }))
            > 0
    );
    assert_eq!(report.steady_state(), tta_sim::SteadyState::FullyUp);
    let lost = run(RestartPolicy::Never);
    assert!(report.unavailability(4) < lost.unavailability(4));
}

#[test]
fn zero_retry_budget_is_indistinguishable_from_never() {
    let never = run(RestartPolicy::Never);
    let zero = run(RestartPolicy::BoundedRetry {
        max_restarts: 0,
        backoff_slots: 4,
    });
    // Everything but the recorded policy itself must coincide.
    assert_eq!(never.log(), zero.log());
    assert_eq!(never.final_states(), zero.final_states());
    assert_eq!(never.recovery(), zero.recovery());
    assert_eq!(never.healthy_frozen(), zero.healthy_frozen());
    assert_eq!(never.permanently_lost(), zero.permanently_lost());
    assert_eq!(never.startup_slot(), zero.startup_slot());
}

#[test]
fn watchdog_does_not_fire_during_a_slow_cold_start() {
    // An aggressive watchdog (1 slot of silence) with staggered start
    // delays: nodes sit in pre-start freeze for many slots, but that is
    // a host that has not powered up yet, not a frozen controller — the
    // supervisor must not open episodes or restart anything.
    let build = |policy| {
        SimBuilder::new(4)
            .topology(Topology::Star)
            .authority(CouplerAuthority::Passive)
            .slots(300)
            .start_delays(vec![0, 9, 17, 23])
            .plan(FaultPlan::none())
            .restart_policy(policy)
            .build()
            .run()
    };
    let watchdog = build(RestartPolicy::Watchdog { silence_slots: 1 });
    assert_eq!(
        watchdog
            .log()
            .count(|e| matches!(e, SlotEvent::NodeRestarted { .. })),
        0
    );
    assert!(watchdog.recovery().is_empty());
    // And the whole run is byte-identical to the absorbing-freeze one.
    let never = build(RestartPolicy::Never);
    assert_eq!(watchdog.log(), never.log());
    assert_eq!(watchdog.final_states(), never.final_states());
}

#[test]
fn recovered_nodes_end_integrated() {
    let report = run(RestartPolicy::Immediate);
    for episode in report.recovery() {
        if episode.recovered() {
            assert!(
                report.final_states()[episode.node.as_usize()].is_integrated()
                    || report
                        .recovery()
                        .iter()
                        .any(|later| later.node == episode.node
                            && later.freeze_slot > episode.freeze_slot),
                "a recovered node without a later episode must end integrated"
            );
        }
    }
    assert_eq!(report.final_states().len(), 4);
    assert!(report
        .final_states()
        .iter()
        .all(|s| *s != ProtocolState::Freeze));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `RestartPolicy::Never` is the seed's semantics: a builder that
    /// never mentions restart policies and one that pins `Never` produce
    /// byte-identical runs, for any topology/authority and any replay
    /// window.
    #[test]
    fn default_policy_is_never_and_changes_nothing(
        topology in prop_oneof![Just(Topology::Bus), Just(Topology::Star)],
        authority in prop::sample::select(CouplerAuthority::all().to_vec()),
        from in 5u64..40,
        len in 1u64..80,
    ) {
        let plan = || FaultPlan::none().with_coupler_fault(CouplerFaultEvent {
            channel: 0,
            mode: CouplerFaultMode::BadFrame,
            from_slot: from,
            to_slot: from + len,
            persistence: FaultPersistence::Transient,
        });
        let seed_style = SimBuilder::new(4)
            .topology(topology)
            .authority(authority)
            .slots(200)
            .plan(plan())
            .build()
            .run();
        let explicit = SimBuilder::new(4)
            .topology(topology)
            .authority(authority)
            .slots(200)
            .plan(plan())
            .restart_policy(RestartPolicy::Never)
            .build()
            .run();
        prop_assert_eq!(seed_style, explicit);
    }
}
