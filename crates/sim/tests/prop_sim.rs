//! Property-based tests of the simulator: determinism, fault-free
//! invariants, and containment guarantees across randomized
//! configurations.

use proptest::prelude::*;
use tta_guardian::sos::{ReceiverTolerance, SosDomain};
use tta_guardian::{CouplerAuthority, CouplerFaultMode};
use tta_sim::{
    CouplerFaultEvent, FaultPersistence, FaultPlan, NodeFault, NodeFaultKind, SimBuilder, Topology,
};
use tta_types::NodeId;

const SLOTS: u64 = 320;

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![Just(Topology::Bus), Just(Topology::Star)]
}

fn arb_authority() -> impl Strategy<Value = CouplerAuthority> {
    prop::sample::select(CouplerAuthority::all().to_vec())
}

fn arb_delays(nodes: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..20, nodes)
}

fn arb_tolerances(nodes: usize) -> impl Strategy<Value = Vec<ReceiverTolerance>> {
    prop::collection::vec((0.3f64..0.7, 0.3f64..0.7), nodes).prop_map(|ts| {
        ts.into_iter()
            .map(|(t, v)| ReceiverTolerance::new(t, v))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A fault-free cluster always starts and nobody ever freezes,
    /// regardless of topology, authority, start staggering and receiver
    /// tolerances.
    #[test]
    fn fault_free_runs_always_start(
        nodes in 3usize..6,
        topology in arb_topology(),
        authority in arb_authority(),
        delays in arb_delays(5),
        tolerances in arb_tolerances(5),
    ) {
        let report = SimBuilder::new(nodes)
            .topology(topology)
            .authority(authority)
            .slots(SLOTS)
            .start_delays(delays[..nodes].to_vec())
            .tolerances(tolerances[..nodes].to_vec())
            .plan(FaultPlan::none())
            .build()
            .run();
        prop_assert!(report.cluster_started(), "{report}");
        prop_assert!(report.healthy_frozen().is_empty(), "{report}");
        prop_assert_eq!(report.integrated_at_end(), nodes, "{}", report);
    }

    /// Simulations are deterministic: identical configurations produce
    /// identical reports.
    #[test]
    fn runs_are_deterministic(
        topology in arb_topology(),
        delays in arb_delays(4),
        onset in 0u64..40,
    ) {
        let plan = FaultPlan::none().with_node_fault(NodeFault {
            node: NodeId::new(1),
            kind: NodeFaultKind::Sos {
                domain: SosDomain::Value,
                magnitude: 0.5,
            },
            from_slot: onset,
            to_slot: SLOTS,
            persistence: FaultPersistence::Transient,
        });
        let build = || {
            SimBuilder::new(4)
                .topology(topology)
                .slots(SLOTS)
                .start_delays(delays.clone())
                .plan(plan.clone())
                .build()
                .run()
        };
        let a = build();
        let b = build();
        prop_assert_eq!(a.final_states(), b.final_states());
        prop_assert_eq!(a.healthy_frozen(), b.healthy_frozen());
        prop_assert_eq!(a.startup_slot(), b.startup_slot());
        prop_assert_eq!(a.log().entries().len(), b.log().entries().len());
    }

    /// A small-shifting star contains every SOS sender: no healthy node
    /// freezes for any defect magnitude, domain or onset.
    #[test]
    fn reshaping_star_contains_all_sos(
        magnitude in 0.01f64..0.99,
        time_domain in any::<bool>(),
        onset in 20u64..200,
        faulty in 0u8..4,
    ) {
        let plan = FaultPlan::none().with_node_fault(NodeFault {
            node: NodeId::new(faulty),
            kind: NodeFaultKind::Sos {
                domain: if time_domain { SosDomain::Time } else { SosDomain::Value },
                magnitude,
            },
            from_slot: onset,
            to_slot: SLOTS,
            persistence: FaultPersistence::Transient,
        });
        let report = SimBuilder::new(4)
            .topology(Topology::Star)
            .authority(CouplerAuthority::SmallShifting)
            .slots(SLOTS)
            .plan(plan)
            .build()
            .run();
        prop_assert!(report.healthy_frozen().is_empty(), "{report}");
    }

    /// Passive channel faults (silence/noise) on a single channel never
    /// freeze a healthy node in any topology — the sim-side mirror of the
    /// E1 verification result.
    #[test]
    fn single_channel_passive_faults_are_tolerated(
        topology in arb_topology(),
        authority in arb_authority(),
        channel in 0usize..2,
        silence in any::<bool>(),
        from in 0u64..60,
        delays in arb_delays(4),
    ) {
        let plan = FaultPlan::none().with_coupler_fault(CouplerFaultEvent {
            channel,
            mode: if silence { CouplerFaultMode::Silence } else { CouplerFaultMode::BadFrame },
            from_slot: from,
            to_slot: SLOTS,
            persistence: FaultPersistence::Transient,
        });
        let report = SimBuilder::new(4)
            .topology(topology)
            .authority(authority)
            .slots(SLOTS)
            .start_delays(delays)
            .plan(plan)
            .build()
            .run();
        prop_assert!(report.healthy_frozen().is_empty(), "{report}");
    }

    /// Central blocking contains every masquerading cold-start and
    /// invalid-C-state sender, whatever slot they claim and whenever they
    /// start — provided the faulty node is not the cluster founder.
    /// (A founder whose transmissions turn bogus additionally *crashes*
    /// out of its role: its valid cold-start traffic disappears, which no
    /// guardian can mask. See `founder_content_fault_recovers` below.)
    #[test]
    fn central_blocking_contains_content_faults(
        faulty in 1u8..4,
        claimed in 1u16..=4,
        cold_start in any::<bool>(),
        onset in 0u64..80,
    ) {
        prop_assume!(claimed != u16::from(faulty) + 1); // claiming one's own slot is honest
        let kind = if cold_start {
            NodeFaultKind::MasqueradeColdStart { claimed_slot: claimed }
        } else {
            NodeFaultKind::InvalidCState { claimed_slot: claimed }
        };
        let plan = FaultPlan::none().with_node_fault(NodeFault {
            node: NodeId::new(faulty),
            kind,
            from_slot: onset,
            to_slot: SLOTS,
            persistence: FaultPersistence::Transient,
        });
        let report = SimBuilder::new(4)
            .topology(Topology::Star)
            .authority(CouplerAuthority::TimeWindows)
            .slots(SLOTS)
            .plan(plan)
            .build()
            .run();
        prop_assert!(report.healthy_frozen().is_empty(), "{report}");
        prop_assert!(report.cluster_started(), "{report}");
    }
}

/// The founder edge case, pinned: node A (earliest starter, hence cluster
/// founder) develops an invalid-C-state fault right after two nodes
/// integrated on its grid. The guardian blocks every bogus frame, which
/// also removes A's valid traffic — a crash in effect. Thanks to slot
/// acquisition (freshly integrated nodes start transmitting at their own
/// slot), the integrators keep the grid alive themselves: the cluster
/// ends fully up with no healthy freeze. (Before slot acquisition was
/// modeled, the integrators were stranded and froze transiently — the
/// protocol feature exists precisely for this situation.)
#[test]
fn founder_content_fault_recovers() {
    let plan = FaultPlan::none().with_node_fault(NodeFault {
        node: NodeId::new(0),
        kind: NodeFaultKind::InvalidCState { claimed_slot: 2 },
        from_slot: 13,
        to_slot: SLOTS,
        persistence: FaultPersistence::Transient,
    });
    let report = SimBuilder::new(4)
        .topology(Topology::Star)
        .authority(CouplerAuthority::TimeWindows)
        .slots(SLOTS)
        .plan(plan)
        .build()
        .run();
    // Content containment: not a single bogus frame reached the bus.
    use tta_sim::SlotEvent;
    assert!(
        report
            .log()
            .count(|e| matches!(e, SlotEvent::GuardianBlocked { .. }))
            > 0
    );
    // The surviving integrators keep the cluster alive on their own.
    assert!(report.healthy_frozen().is_empty(), "{report}");
    assert!(report.cluster_started(), "{report}");
    assert_eq!(report.integrated_at_end(), 3, "{report}");
}
