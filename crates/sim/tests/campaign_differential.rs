//! Differential test: a fault-injection campaign's report is a pure
//! function of its configuration and seed, independent of how many
//! worker threads execute the trials. Each trial derives its RNG from
//! the campaign seed and its trial index, so any scheduling of trials
//! onto threads must produce identical statistics.

use tta_guardian::CouplerAuthority;
use tta_sim::{Campaign, Scenario, Topology};

#[test]
fn campaign_reports_are_identical_across_thread_counts() {
    let base = |threads: usize| {
        Campaign::new(4, Topology::Star, CouplerAuthority::SmallShifting)
            .trials(64)
            .slots(120)
            .seed(0xD5EED)
            .threads(threads)
    };
    for scenario in Scenario::all() {
        let single = base(1).run(scenario);
        let four = base(4).run(scenario);
        assert_eq!(
            single, four,
            "{scenario:?}: 1 thread vs 4 threads must agree"
        );
        let auto = Campaign::new(4, Topology::Star, CouplerAuthority::SmallShifting)
            .trials(64)
            .slots(120)
            .seed(0xD5EED)
            .run(scenario);
        assert_eq!(single, auto, "{scenario:?}: explicit vs auto threads");
    }
}

#[test]
fn campaign_reports_depend_on_the_seed() {
    let report = |seed: u64| {
        Campaign::new(4, Topology::Star, CouplerAuthority::FullShifting)
            .trials(64)
            .slots(120)
            .seed(seed)
            .threads(2)
            .run(Scenario::CouplerReplay)
    };
    // Not a tautology of the determinism test above: different seeds
    // must actually steer the trials (otherwise the differential test
    // would pass vacuously on a constant function).
    let a = report(1);
    let b = report(2);
    assert_eq!(a, report(1), "same seed reproduces");
    assert!(
        a != b || a.propagation_rate() > 0.0,
        "distinct seeds should not collapse to one trivial report"
    );
}
