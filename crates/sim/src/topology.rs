//! Cluster interconnect topologies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How nodes are interconnected and where the bus guardians sit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Topology {
    /// Replicated buses with one local guardian per node (Figure 1 of the
    /// paper). Guardians gate only *when* their node may transmit; they
    /// cannot inspect content or repair signals.
    Bus,
    /// Replicated star couplers with central guardians (Figure 2).
    /// Depending on the configured authority, the hub can block off-slot
    /// and masquerading traffic, reshape slightly-off-specification
    /// signals, and perform semantic analysis of cold-start and C-state
    /// frames.
    #[default]
    Star,
}

impl Topology {
    /// Whether the topology places a guardian at the center of each
    /// channel.
    #[must_use]
    pub fn is_central(self) -> bool {
        matches!(self, Topology::Star)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Topology::Bus => "bus",
            Topology::Star => "star",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_is_central_bus_is_not() {
        assert!(Topology::Star.is_central());
        assert!(!Topology::Bus.is_central());
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(Topology::Bus.to_string(), "bus");
        assert_eq!(Topology::Star.to_string(), "star");
    }
}
