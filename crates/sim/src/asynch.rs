//! Asynchronous masquerading — the paper's Section 7 generalization.
//!
//! "The same type of masquerading failures could occur in a distributed,
//! asynchronous system because the underlying issue is not timing, but
//! rather identification. A central authority with access to the other
//! nodes' knowledge (e.g., identification methods) may have the ability
//! to introduce masquerading failures into a decentralized system,
//! whether that system is synchronous or asynchronous."
//!
//! This module makes that claim executable with a deliberately *timing-
//! free* system: clients announce their liveness through a central
//! store-and-forward relay; receivers track a roster of live peers purely
//! from the **identification** carried in messages (heartbeat expiry uses
//! logical receive counts, not clocks). A faulty relay that replays a
//! stored announcement resurrects a departed client in the rosters of
//! whoever hears the replay — masquerading without any TDMA, slot, or
//! clock in sight.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt;

/// A client identifier in the asynchronous demo.
pub type ClientId = u8;

/// Messages carry only identification — the async analogue of the
/// C-state/round-slot identity in TTP/C frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Message {
    /// "Client `id` is alive."
    Announce(ClientId),
    /// "Client `id` is leaving."
    Goodbye(ClientId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A client emits its periodic announcement.
    ClientAnnounce(ClientId),
    /// A client departs (emits Goodbye, stops announcing).
    ClientDepart(ClientId),
    /// The relay delivers a message to one receiver.
    Deliver { to: ClientId, msg: Message },
    /// The faulty relay replays its stored message to one receiver.
    Replay { to: ClientId },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    at: u64,
    seq: u64, // tie-breaker for deterministic ordering
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-client roster bookkeeping: liveness by identification only.
/// An entry expires after `expiry` *other* messages have been received
/// without hearing from the peer — a logical, not temporal, timeout.
#[derive(Debug, Clone, Default)]
struct Roster {
    last_heard: BTreeMap<ClientId, u64>,
    messages_received: u64,
    expiry: u64,
}

impl Roster {
    fn hear(&mut self, msg: Message) {
        self.messages_received += 1;
        match msg {
            Message::Announce(id) => {
                self.last_heard.insert(id, self.messages_received);
            }
            Message::Goodbye(id) => {
                self.last_heard.remove(&id);
            }
        }
    }

    fn live_peers(&self) -> BTreeSet<ClientId> {
        self.last_heard
            .iter()
            .filter(|(_, heard)| self.messages_received - **heard < self.expiry)
            .map(|(id, _)| *id)
            .collect()
    }
}

/// Configuration of the asynchronous masquerade demonstration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsyncMasqueradeDemo {
    /// Number of clients.
    pub clients: usize,
    /// Which client departs mid-run.
    pub departing: ClientId,
    /// Whether the central relay is faulty and replays a stored
    /// announcement of the departed client — to only *some* receivers
    /// (the replay happens on one of the redundant paths).
    pub relay_replays: bool,
}

impl AsyncMasqueradeDemo {
    /// A four-client demo where client 0 departs.
    #[must_use]
    pub fn new(relay_replays: bool) -> Self {
        AsyncMasqueradeDemo {
            clients: 4,
            departing: 0,
            relay_replays,
        }
    }

    /// Runs the scenario to quiescence and reports the rosters.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two clients are configured or the departing
    /// id is out of range.
    #[must_use]
    pub fn run(&self) -> AsyncOutcome {
        assert!(self.clients >= 2, "need at least two clients");
        assert!(
            (self.departing as usize) < self.clients,
            "departing client out of range"
        );
        let n = self.clients as u8;
        let mut queue: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |queue: &mut BinaryHeap<Event>, at: u64, kind: EventKind| {
            queue.push(Event { at, seq, kind });
            seq += 1;
        };

        // Announcement schedule: every client announces at irregular,
        // client-specific intervals (asynchrony — no common period).
        for id in 0..n {
            let period = 7 + u64::from(id) * 3;
            for k in 0..12 {
                push(
                    &mut queue,
                    1 + u64::from(id) + k * period,
                    EventKind::ClientAnnounce(id),
                );
            }
        }
        // The departing client leaves after its fourth announcement.
        let depart_at = 1 + u64::from(self.departing) + 4 * (7 + u64::from(self.departing) * 3);
        push(
            &mut queue,
            depart_at,
            EventKind::ClientDepart(self.departing),
        );
        // The faulty relay replays its stored (mailbox) copy of the
        // departed client's announcement, repeatedly — a stuck buffer,
        // like the coupler's out_of_slot fault — but only on the paths to
        // some receivers.
        if self.relay_replays {
            for k in 0..24u64 {
                for to in 0..n {
                    if to != self.departing && to % 2 == 0 {
                        push(&mut queue, depart_at + 11 + 9 * k, EventKind::Replay { to });
                    }
                }
            }
        }

        let mut rosters: Vec<Roster> = (0..self.clients)
            .map(|_| Roster {
                expiry: 3 * self.clients as u64,
                ..Roster::default()
            })
            .collect();
        let mut departed: BTreeSet<ClientId> = BTreeSet::new();
        // Store-and-forward authority: one mailbox per sender (the
        // "recent data values" service of Section 6).
        let mut relay_store: BTreeMap<ClientId, Message> = BTreeMap::new();

        while let Some(event) = queue.pop() {
            match event.kind {
                EventKind::ClientAnnounce(id) => {
                    if departed.contains(&id) {
                        continue;
                    }
                    // The relay forwards to everyone else with per-path
                    // delays, and (store-and-forward authority) keeps a
                    // copy — the capability the fault exploits.
                    relay_store.insert(id, Message::Announce(id));
                    for to in 0..n {
                        if to != id {
                            push(
                                &mut queue,
                                event.at + 1 + u64::from(to % 3),
                                EventKind::Deliver {
                                    to,
                                    msg: Message::Announce(id),
                                },
                            );
                        }
                    }
                }
                EventKind::ClientDepart(id) => {
                    departed.insert(id);
                    for to in 0..n {
                        if to != id {
                            push(
                                &mut queue,
                                event.at + 1,
                                EventKind::Deliver {
                                    to,
                                    msg: Message::Goodbye(id),
                                },
                            );
                        }
                    }
                }
                EventKind::Deliver { to, msg } => {
                    rosters[to as usize].hear(msg);
                }
                EventKind::Replay { to } => {
                    // The replayed message carries the *original sender's*
                    // identification: pure masquerade.
                    if let Some(msg) = relay_store.get(&self.departing) {
                        rosters[to as usize].hear(*msg);
                    }
                }
            }
        }

        let ground_truth: BTreeSet<ClientId> = (0..n).filter(|id| !departed.contains(id)).collect();
        AsyncOutcome {
            rosters: rosters
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    let mut peers = r.live_peers();
                    peers.insert(i as u8); // a client knows itself
                    peers
                })
                .collect(),
            ground_truth,
            departed,
        }
    }
}

/// Result of the asynchronous demonstration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsyncOutcome {
    /// Each client's final roster of live peers (including itself).
    pub rosters: Vec<BTreeSet<ClientId>>,
    /// The true set of live clients.
    pub ground_truth: BTreeSet<ClientId>,
    /// Clients that departed during the run.
    pub departed: BTreeSet<ClientId>,
}

impl AsyncOutcome {
    /// Whether all live clients agree on the roster.
    #[must_use]
    pub fn rosters_consistent(&self) -> bool {
        let live: Vec<&BTreeSet<ClientId>> = self
            .rosters
            .iter()
            .enumerate()
            .filter(|(i, _)| self.ground_truth.contains(&(*i as u8)))
            .map(|(_, r)| r)
            .collect();
        live.windows(2).all(|w| w[0] == w[1])
    }

    /// Clients whose roster contains a departed (masqueraded) peer.
    #[must_use]
    pub fn deceived_clients(&self) -> Vec<ClientId> {
        self.rosters
            .iter()
            .enumerate()
            .filter(|(i, roster)| {
                self.ground_truth.contains(&(*i as u8))
                    && roster.iter().any(|peer| self.departed.contains(peer))
            })
            .map(|(i, _)| i as u8)
            .collect()
    }
}

impl fmt::Display for AsyncOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ground truth live set: {:?}", self.ground_truth)?;
        for (i, roster) in self.rosters.iter().enumerate() {
            writeln!(f, "  client {i} sees: {roster:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_relay_converges_to_ground_truth() {
        let outcome = AsyncMasqueradeDemo::new(false).run();
        assert!(outcome.rosters_consistent(), "{outcome}");
        assert!(outcome.deceived_clients().is_empty(), "{outcome}");
        // Every live client's roster equals the true live set.
        for (i, roster) in outcome.rosters.iter().enumerate() {
            if outcome.ground_truth.contains(&(i as u8)) {
                assert_eq!(roster, &outcome.ground_truth, "client {i}: {outcome}");
            }
        }
    }

    #[test]
    fn replaying_relay_masquerades_the_departed_client() {
        let outcome = AsyncMasqueradeDemo::new(true).run();
        assert!(
            !outcome.deceived_clients().is_empty(),
            "the replay must resurrect the departed client somewhere: {outcome}"
        );
    }

    #[test]
    fn partial_replay_splits_the_rosters() {
        // The replay reaches only some receivers: the async analogue of
        // the clique split — inconsistent views without any timing fault.
        let outcome = AsyncMasqueradeDemo::new(true).run();
        assert!(!outcome.rosters_consistent(), "{outcome}");
    }

    #[test]
    fn departure_is_the_only_difference() {
        // Same scenario, no replay: consistent; with replay: not. The
        // central authority's buffering is the entire delta.
        let clean = AsyncMasqueradeDemo::new(false).run();
        let faulty = AsyncMasqueradeDemo::new(true).run();
        assert_eq!(clean.ground_truth, faulty.ground_truth);
        assert!(clean.rosters_consistent());
        assert!(!faulty.rosters_consistent());
    }

    #[test]
    #[should_panic(expected = "at least two clients")]
    fn single_client_is_rejected() {
        let demo = AsyncMasqueradeDemo {
            clients: 1,
            departing: 0,
            relay_replays: false,
        };
        let _ = demo.run();
    }
}
