//! Fault plans: what to inject, where, and when.

use serde::{Deserialize, Serialize};
use std::fmt;
use tta_guardian::local::LocalGuardianFault;
use tta_guardian::sos::SosDomain;
use tta_guardian::CouplerFaultMode;
use tta_types::NodeId;

/// The misbehavior classes of a faulty *node* (transmitter-side faults;
/// the protocol controller itself keeps running).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NodeFaultKind {
    /// Transmissions carry a slightly-off-specification defect of the
    /// given magnitude in the given domain (Ademaj's SOS fault).
    Sos {
        /// Affected domain.
        domain: SosDomain,
        /// Normalized magnitude in `[0, 1]`.
        magnitude: f64,
    },
    /// Cold-start frames claim the wrong sender round slot (masquerading
    /// during startup).
    MasqueradeColdStart {
        /// The (incorrect) slot id the frames claim.
        claimed_slot: u16,
    },
    /// Frames carry an invalid C-state (claimed position is wrong),
    /// poisoning nodes that integrate on them.
    InvalidCState {
        /// The (incorrect) slot id the frames claim.
        claimed_slot: u16,
    },
    /// The node transmits noise in every slot (babbling idiot). Healthy
    /// guardians clip this to the node's own window.
    Babbling,
    /// The node transmits nothing (crash of the transmitter).
    Mute,
}

impl fmt::Display for NodeFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeFaultKind::Sos { domain, magnitude } => {
                write!(f, "SOS({domain}, {magnitude:.2})")
            }
            NodeFaultKind::MasqueradeColdStart { claimed_slot } => {
                write!(f, "masquerade cold-start (claims slot {claimed_slot})")
            }
            NodeFaultKind::InvalidCState { claimed_slot } => {
                write!(f, "invalid C-state (claims slot {claimed_slot})")
            }
            NodeFaultKind::Babbling => write!(f, "babbling idiot"),
            NodeFaultKind::Mute => write!(f, "mute"),
        }
    }
}

/// How long an injected fault persists relative to its
/// `[from_slot, to_slot)` window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultPersistence {
    /// Active throughout the window, then gone for good — the default,
    /// so every pre-existing plan literal behaves exactly as before.
    #[default]
    Transient,
    /// Recurring bursts inside the window: within `[from_slot, to_slot)`
    /// the fault is active for the first `duty` slots of every
    /// `period`-slot cycle, counted from `from_slot`.
    Intermittent {
        /// Cycle length in slots (> 0).
        period: u64,
        /// Active slots at the start of each cycle (`1..=period`).
        duty: u64,
    },
    /// Active from `from_slot` onward; `to_slot` is ignored.
    Permanent,
}

impl FaultPersistence {
    /// Whether a fault with this persistence and window is active at
    /// absolute slot `t`.
    #[must_use]
    pub fn active_at(&self, from_slot: u64, to_slot: u64, t: u64) -> bool {
        match *self {
            FaultPersistence::Transient => (from_slot..to_slot).contains(&t),
            FaultPersistence::Intermittent { period, duty } => {
                (from_slot..to_slot).contains(&t) && (t - from_slot) % period < duty
            }
            FaultPersistence::Permanent => t >= from_slot,
        }
    }

    /// First slot at which the fault can never be active again
    /// (`u64::MAX` for permanent faults) — the fault's *envelope* end,
    /// used by the single-faulty-coupler overlap check.
    #[must_use]
    pub fn envelope_end(&self, to_slot: u64) -> u64 {
        match self {
            FaultPersistence::Permanent => u64::MAX,
            FaultPersistence::Transient | FaultPersistence::Intermittent { .. } => to_slot,
        }
    }

    fn validate(&self, from_slot: u64, to_slot: u64) {
        match *self {
            FaultPersistence::Permanent => {}
            FaultPersistence::Transient => {
                assert!(from_slot < to_slot, "empty fault window");
            }
            FaultPersistence::Intermittent { period, duty } => {
                assert!(from_slot < to_slot, "empty fault window");
                assert!(period > 0, "intermittent fault needs a positive period");
                assert!(
                    (1..=period).contains(&duty),
                    "intermittent duty must be in 1..=period"
                );
            }
        }
    }
}

impl fmt::Display for FaultPersistence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPersistence::Transient => f.write_str("transient"),
            FaultPersistence::Intermittent { period, duty } => {
                write!(f, "intermittent(period {period}, duty {duty})")
            }
            FaultPersistence::Permanent => f.write_str("permanent"),
        }
    }
}

/// A node fault active during `[from_slot, to_slot)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeFault {
    /// The faulty node.
    pub node: NodeId,
    /// Kind of misbehavior.
    pub kind: NodeFaultKind,
    /// First absolute slot at which the fault is active.
    pub from_slot: u64,
    /// First absolute slot at which it is no longer active (ignored for
    /// [`FaultPersistence::Permanent`]).
    pub to_slot: u64,
    /// How the fault persists over the window.
    #[serde(default)]
    pub persistence: FaultPersistence,
}

impl NodeFault {
    /// Whether the fault is active at absolute slot `t`.
    #[must_use]
    pub fn active_at(&self, t: u64) -> bool {
        self.persistence.active_at(self.from_slot, self.to_slot, t)
    }
}

/// A coupler fault active during `[from_slot, to_slot)` on one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CouplerFaultEvent {
    /// Affected channel (0 or 1).
    pub channel: usize,
    /// Fault mode during the window.
    pub mode: CouplerFaultMode,
    /// First absolute slot at which the fault is active.
    pub from_slot: u64,
    /// First absolute slot at which it is no longer active (ignored for
    /// [`FaultPersistence::Permanent`]).
    pub to_slot: u64,
    /// How the fault persists over the window.
    #[serde(default)]
    pub persistence: FaultPersistence,
}

impl CouplerFaultEvent {
    /// Whether the fault is active at absolute slot `t`.
    #[must_use]
    pub fn active_at(&self, t: u64) -> bool {
        self.persistence.active_at(self.from_slot, self.to_slot, t)
    }

    /// First slot at which the event can never be active again.
    #[must_use]
    pub fn envelope_end(&self) -> u64 {
        self.persistence.envelope_end(self.to_slot)
    }
}

/// A local-guardian fault (bus topology only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardianFaultEvent {
    /// Node whose guardian fails.
    pub node: NodeId,
    /// Failure mode.
    pub mode: LocalGuardianFault,
    /// First absolute slot at which the fault is active.
    pub from_slot: u64,
    /// First absolute slot at which it is no longer active (ignored for
    /// [`FaultPersistence::Permanent`]).
    pub to_slot: u64,
    /// How the fault persists over the window.
    #[serde(default)]
    pub persistence: FaultPersistence,
}

impl GuardianFaultEvent {
    /// Whether the fault is active at absolute slot `t`.
    #[must_use]
    pub fn active_at(&self, t: u64) -> bool {
        self.persistence.active_at(self.from_slot, self.to_slot, t)
    }
}

/// Everything the simulator injects during one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    node_faults: Vec<NodeFault>,
    coupler_faults: Vec<CouplerFaultEvent>,
    guardian_faults: Vec<GuardianFaultEvent>,
}

impl FaultPlan {
    /// The empty plan (golden run).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a node fault.
    #[must_use]
    pub fn with_node_fault(mut self, fault: NodeFault) -> Self {
        fault.persistence.validate(fault.from_slot, fault.to_slot);
        self.node_faults.push(fault);
        self
    }

    /// Adds a coupler fault.
    ///
    /// # Panics
    ///
    /// Panics if the channel index is not 0 or 1, the window is empty, or
    /// the event overlaps an already-added event on the *other* channel.
    /// The paper's single-faulty-coupler hypothesis (and our guardian
    /// model) assumes at most one coupler misbehaves at a time; two
    /// events on different channels with intersecting envelopes would
    /// silently simulate a double failure, so they are a construction
    /// error. Abutting windows (`a.to_slot == b.from_slot`) are legal.
    #[must_use]
    pub fn with_coupler_fault(mut self, fault: CouplerFaultEvent) -> Self {
        assert!(fault.channel < 2, "channels are 0 and 1");
        fault.persistence.validate(fault.from_slot, fault.to_slot);
        for other in &self.coupler_faults {
            assert!(
                other.channel == fault.channel
                    || fault.from_slot >= other.envelope_end()
                    || other.from_slot >= fault.envelope_end(),
                "single-faulty-coupler hypothesis violated: coupler fault \
                 windows on both channels overlap"
            );
        }
        self.coupler_faults.push(fault);
        self
    }

    /// Adds a local-guardian fault.
    #[must_use]
    pub fn with_guardian_fault(mut self, fault: GuardianFaultEvent) -> Self {
        fault.persistence.validate(fault.from_slot, fault.to_slot);
        self.guardian_faults.push(fault);
        self
    }

    /// The node fault (if any) active for `node` at slot `t`. The first
    /// matching entry wins.
    #[must_use]
    pub fn node_fault_at(&self, node: NodeId, t: u64) -> Option<&NodeFault> {
        self.node_faults
            .iter()
            .find(|f| f.node == node && f.active_at(t))
    }

    /// The coupler fault mode for `channel` at slot `t`.
    #[must_use]
    pub fn coupler_fault_at(&self, channel: usize, t: u64) -> CouplerFaultMode {
        self.coupler_faults
            .iter()
            .find(|f| f.channel == channel && f.active_at(t))
            .map_or(CouplerFaultMode::None, |f| f.mode)
    }

    /// The local-guardian fault mode for `node` at slot `t`.
    #[must_use]
    pub fn guardian_fault_at(&self, node: NodeId, t: u64) -> LocalGuardianFault {
        self.guardian_faults
            .iter()
            .find(|f| f.node == node && f.active_at(t))
            .map_or(LocalGuardianFault::None, |f| f.mode)
    }

    /// Nodes with any fault in the plan (used to classify outcomes:
    /// freezes of *these* nodes are expected, freezes of others are
    /// propagation).
    #[must_use]
    pub fn faulty_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.node_faults.iter().map(|f| f.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// The plan's node faults, in injection order. Read access for
    /// harnesses that serialize plans (the campaign daemon's eval op).
    #[must_use]
    pub fn node_faults(&self) -> &[NodeFault] {
        &self.node_faults
    }

    /// The plan's coupler faults, in injection order.
    #[must_use]
    pub fn coupler_faults(&self) -> &[CouplerFaultEvent] {
        &self.coupler_faults
    }

    /// The plan's local-guardian faults, in injection order.
    #[must_use]
    pub fn guardian_faults(&self) -> &[GuardianFaultEvent] {
        &self.guardian_faults
    }

    /// Whether the plan injects nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.node_faults.is_empty()
            && self.coupler_faults.is_empty()
            && self.guardian_faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_half_open() {
        let f = NodeFault {
            node: NodeId::new(0),
            kind: NodeFaultKind::Mute,
            from_slot: 10,
            to_slot: 20,
            persistence: FaultPersistence::Transient,
        };
        assert!(!f.active_at(9));
        assert!(f.active_at(10));
        assert!(f.active_at(19));
        assert!(!f.active_at(20));
    }

    #[test]
    fn plan_lookup_matches_node_and_time() {
        let plan = FaultPlan::none().with_node_fault(NodeFault {
            node: NodeId::new(2),
            kind: NodeFaultKind::Babbling,
            from_slot: 5,
            to_slot: 8,
            persistence: FaultPersistence::Transient,
        });
        assert!(plan.node_fault_at(NodeId::new(2), 6).is_some());
        assert!(plan.node_fault_at(NodeId::new(2), 8).is_none());
        assert!(plan.node_fault_at(NodeId::new(1), 6).is_none());
    }

    #[test]
    fn coupler_lookup_defaults_to_none() {
        let plan = FaultPlan::none().with_coupler_fault(CouplerFaultEvent {
            channel: 0,
            mode: CouplerFaultMode::Silence,
            from_slot: 0,
            to_slot: 4,
            persistence: FaultPersistence::Transient,
        });
        assert_eq!(plan.coupler_fault_at(0, 2), CouplerFaultMode::Silence);
        assert_eq!(plan.coupler_fault_at(1, 2), CouplerFaultMode::None);
        assert_eq!(plan.coupler_fault_at(0, 4), CouplerFaultMode::None);
    }

    #[test]
    fn guardian_lookup_defaults_to_none() {
        let plan = FaultPlan::none().with_guardian_fault(GuardianFaultEvent {
            node: NodeId::new(1),
            mode: LocalGuardianFault::StuckOpen,
            from_slot: 0,
            to_slot: 100,
            persistence: FaultPersistence::Transient,
        });
        assert_eq!(
            plan.guardian_fault_at(NodeId::new(1), 50),
            LocalGuardianFault::StuckOpen
        );
        assert_eq!(
            plan.guardian_fault_at(NodeId::new(0), 50),
            LocalGuardianFault::None
        );
    }

    #[test]
    fn faulty_nodes_deduplicates() {
        let plan = FaultPlan::none()
            .with_node_fault(NodeFault {
                node: NodeId::new(3),
                kind: NodeFaultKind::Mute,
                from_slot: 0,
                to_slot: 1,
                persistence: FaultPersistence::Transient,
            })
            .with_node_fault(NodeFault {
                node: NodeId::new(3),
                kind: NodeFaultKind::Babbling,
                from_slot: 5,
                to_slot: 6,
                persistence: FaultPersistence::Transient,
            });
        assert_eq!(plan.faulty_nodes(), [NodeId::new(3)]);
    }

    #[test]
    #[should_panic(expected = "channels are 0 and 1")]
    fn invalid_channel_is_rejected() {
        let _ = FaultPlan::none().with_coupler_fault(CouplerFaultEvent {
            channel: 2,
            mode: CouplerFaultMode::Silence,
            from_slot: 0,
            to_slot: 1,
            persistence: FaultPersistence::Transient,
        });
    }

    #[test]
    #[should_panic(expected = "empty fault window")]
    fn empty_window_is_rejected() {
        let _ = FaultPlan::none().with_node_fault(NodeFault {
            node: NodeId::new(0),
            kind: NodeFaultKind::Mute,
            from_slot: 5,
            to_slot: 5,
            persistence: FaultPersistence::Transient,
        });
    }

    fn coupler_event(channel: usize, from_slot: u64, to_slot: u64) -> CouplerFaultEvent {
        CouplerFaultEvent {
            channel,
            mode: CouplerFaultMode::Silence,
            from_slot,
            to_slot,
            persistence: FaultPersistence::Transient,
        }
    }

    #[test]
    fn default_persistence_is_transient() {
        assert_eq!(FaultPersistence::default(), FaultPersistence::Transient);
    }

    #[test]
    fn permanent_fault_ignores_window_end() {
        let f = NodeFault {
            node: NodeId::new(0),
            kind: NodeFaultKind::Mute,
            from_slot: 10,
            to_slot: 20,
            persistence: FaultPersistence::Permanent,
        };
        assert!(!f.active_at(9));
        assert!(f.active_at(10));
        assert!(f.active_at(20));
        assert!(f.active_at(u64::MAX));
        // A permanent fault may even have an empty nominal window.
        let plan = FaultPlan::none().with_node_fault(NodeFault { to_slot: 10, ..f });
        assert!(plan.node_fault_at(NodeId::new(0), 500).is_some());
    }

    #[test]
    fn intermittent_fault_pulses_with_its_duty_cycle() {
        let f = NodeFault {
            node: NodeId::new(0),
            kind: NodeFaultKind::Babbling,
            from_slot: 10,
            to_slot: 30,
            persistence: FaultPersistence::Intermittent { period: 5, duty: 2 },
        };
        for t in [10, 11, 15, 16, 25] {
            assert!(f.active_at(t), "slot {t} is in a burst");
        }
        for t in [9, 12, 14, 19, 30, 31] {
            assert!(!f.active_at(t), "slot {t} is between bursts or outside");
        }
    }

    #[test]
    #[should_panic(expected = "intermittent duty must be in 1..=period")]
    fn intermittent_zero_duty_is_rejected() {
        let _ = FaultPlan::none().with_node_fault(NodeFault {
            node: NodeId::new(0),
            kind: NodeFaultKind::Mute,
            from_slot: 0,
            to_slot: 10,
            persistence: FaultPersistence::Intermittent { period: 5, duty: 0 },
        });
    }

    #[test]
    #[should_panic(expected = "single-faulty-coupler hypothesis violated")]
    fn overlapping_dual_channel_coupler_faults_are_rejected() {
        let _ = FaultPlan::none()
            .with_coupler_fault(coupler_event(0, 10, 20))
            .with_coupler_fault(coupler_event(1, 19, 30));
    }

    #[test]
    #[should_panic(expected = "single-faulty-coupler hypothesis violated")]
    fn permanent_coupler_fault_blocks_the_other_channel_forever() {
        let perm = CouplerFaultEvent {
            persistence: FaultPersistence::Permanent,
            ..coupler_event(0, 10, 20)
        };
        // Starts long after the nominal window end, but a permanent
        // fault's envelope never closes.
        let _ = FaultPlan::none()
            .with_coupler_fault(perm)
            .with_coupler_fault(coupler_event(1, 1000, 2000));
    }

    #[test]
    fn abutting_dual_channel_coupler_faults_are_legal() {
        // a.to == b.from is the exact boundary: handover, not overlap.
        let plan = FaultPlan::none()
            .with_coupler_fault(coupler_event(0, 10, 20))
            .with_coupler_fault(coupler_event(1, 20, 30));
        assert_eq!(plan.coupler_fault_at(0, 19), CouplerFaultMode::Silence);
        assert_eq!(plan.coupler_fault_at(1, 19), CouplerFaultMode::None);
        assert_eq!(plan.coupler_fault_at(1, 20), CouplerFaultMode::Silence);
        // The same holds with the order of insertion reversed.
        let _ = FaultPlan::none()
            .with_coupler_fault(coupler_event(1, 20, 30))
            .with_coupler_fault(coupler_event(0, 10, 20));
    }

    #[test]
    fn same_channel_coupler_faults_may_overlap() {
        let plan = FaultPlan::none()
            .with_coupler_fault(coupler_event(0, 10, 30))
            .with_coupler_fault(CouplerFaultEvent {
                mode: CouplerFaultMode::BadFrame,
                ..coupler_event(0, 20, 40)
            });
        // First match wins inside the overlap.
        assert_eq!(plan.coupler_fault_at(0, 25), CouplerFaultMode::Silence);
        assert_eq!(plan.coupler_fault_at(0, 35), CouplerFaultMode::BadFrame);
    }

    #[test]
    fn persistence_display_is_informative() {
        assert_eq!(FaultPersistence::Transient.to_string(), "transient");
        assert_eq!(FaultPersistence::Permanent.to_string(), "permanent");
        assert_eq!(
            FaultPersistence::Intermittent { period: 8, duty: 3 }.to_string(),
            "intermittent(period 8, duty 3)"
        );
    }

    #[test]
    fn kind_display_is_informative() {
        let k = NodeFaultKind::Sos {
            domain: SosDomain::Time,
            magnitude: 0.5,
        };
        assert!(k.to_string().contains("SOS"));
        assert!(NodeFaultKind::Babbling.to_string().contains("babbling"));
    }
}
