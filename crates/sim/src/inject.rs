//! Fault plans: what to inject, where, and when.

use serde::{Deserialize, Serialize};
use std::fmt;
use tta_guardian::local::LocalGuardianFault;
use tta_guardian::sos::SosDomain;
use tta_guardian::CouplerFaultMode;
use tta_types::NodeId;

/// The misbehavior classes of a faulty *node* (transmitter-side faults;
/// the protocol controller itself keeps running).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NodeFaultKind {
    /// Transmissions carry a slightly-off-specification defect of the
    /// given magnitude in the given domain (Ademaj's SOS fault).
    Sos {
        /// Affected domain.
        domain: SosDomain,
        /// Normalized magnitude in `[0, 1]`.
        magnitude: f64,
    },
    /// Cold-start frames claim the wrong sender round slot (masquerading
    /// during startup).
    MasqueradeColdStart {
        /// The (incorrect) slot id the frames claim.
        claimed_slot: u16,
    },
    /// Frames carry an invalid C-state (claimed position is wrong),
    /// poisoning nodes that integrate on them.
    InvalidCState {
        /// The (incorrect) slot id the frames claim.
        claimed_slot: u16,
    },
    /// The node transmits noise in every slot (babbling idiot). Healthy
    /// guardians clip this to the node's own window.
    Babbling,
    /// The node transmits nothing (crash of the transmitter).
    Mute,
}

impl fmt::Display for NodeFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeFaultKind::Sos { domain, magnitude } => {
                write!(f, "SOS({domain}, {magnitude:.2})")
            }
            NodeFaultKind::MasqueradeColdStart { claimed_slot } => {
                write!(f, "masquerade cold-start (claims slot {claimed_slot})")
            }
            NodeFaultKind::InvalidCState { claimed_slot } => {
                write!(f, "invalid C-state (claims slot {claimed_slot})")
            }
            NodeFaultKind::Babbling => write!(f, "babbling idiot"),
            NodeFaultKind::Mute => write!(f, "mute"),
        }
    }
}

/// A node fault active during `[from_slot, to_slot)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeFault {
    /// The faulty node.
    pub node: NodeId,
    /// Kind of misbehavior.
    pub kind: NodeFaultKind,
    /// First absolute slot at which the fault is active.
    pub from_slot: u64,
    /// First absolute slot at which it is no longer active.
    pub to_slot: u64,
}

impl NodeFault {
    /// Whether the fault is active at absolute slot `t`.
    #[must_use]
    pub fn active_at(&self, t: u64) -> bool {
        (self.from_slot..self.to_slot).contains(&t)
    }
}

/// A coupler fault active during `[from_slot, to_slot)` on one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CouplerFaultEvent {
    /// Affected channel (0 or 1).
    pub channel: usize,
    /// Fault mode during the window.
    pub mode: CouplerFaultMode,
    /// First absolute slot at which the fault is active.
    pub from_slot: u64,
    /// First absolute slot at which it is no longer active.
    pub to_slot: u64,
}

impl CouplerFaultEvent {
    /// Whether the fault is active at absolute slot `t`.
    #[must_use]
    pub fn active_at(&self, t: u64) -> bool {
        (self.from_slot..self.to_slot).contains(&t)
    }
}

/// A local-guardian fault (bus topology only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardianFaultEvent {
    /// Node whose guardian fails.
    pub node: NodeId,
    /// Failure mode.
    pub mode: LocalGuardianFault,
    /// First absolute slot at which the fault is active.
    pub from_slot: u64,
    /// First absolute slot at which it is no longer active.
    pub to_slot: u64,
}

impl GuardianFaultEvent {
    /// Whether the fault is active at absolute slot `t`.
    #[must_use]
    pub fn active_at(&self, t: u64) -> bool {
        (self.from_slot..self.to_slot).contains(&t)
    }
}

/// Everything the simulator injects during one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    node_faults: Vec<NodeFault>,
    coupler_faults: Vec<CouplerFaultEvent>,
    guardian_faults: Vec<GuardianFaultEvent>,
}

impl FaultPlan {
    /// The empty plan (golden run).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a node fault.
    #[must_use]
    pub fn with_node_fault(mut self, fault: NodeFault) -> Self {
        assert!(fault.from_slot < fault.to_slot, "empty fault window");
        self.node_faults.push(fault);
        self
    }

    /// Adds a coupler fault.
    ///
    /// # Panics
    ///
    /// Panics if the channel index is not 0 or 1 or the window is empty.
    #[must_use]
    pub fn with_coupler_fault(mut self, fault: CouplerFaultEvent) -> Self {
        assert!(fault.channel < 2, "channels are 0 and 1");
        assert!(fault.from_slot < fault.to_slot, "empty fault window");
        self.coupler_faults.push(fault);
        self
    }

    /// Adds a local-guardian fault.
    #[must_use]
    pub fn with_guardian_fault(mut self, fault: GuardianFaultEvent) -> Self {
        assert!(fault.from_slot < fault.to_slot, "empty fault window");
        self.guardian_faults.push(fault);
        self
    }

    /// The node fault (if any) active for `node` at slot `t`. The first
    /// matching entry wins.
    #[must_use]
    pub fn node_fault_at(&self, node: NodeId, t: u64) -> Option<&NodeFault> {
        self.node_faults
            .iter()
            .find(|f| f.node == node && f.active_at(t))
    }

    /// The coupler fault mode for `channel` at slot `t`.
    #[must_use]
    pub fn coupler_fault_at(&self, channel: usize, t: u64) -> CouplerFaultMode {
        self.coupler_faults
            .iter()
            .find(|f| f.channel == channel && f.active_at(t))
            .map_or(CouplerFaultMode::None, |f| f.mode)
    }

    /// The local-guardian fault mode for `node` at slot `t`.
    #[must_use]
    pub fn guardian_fault_at(&self, node: NodeId, t: u64) -> LocalGuardianFault {
        self.guardian_faults
            .iter()
            .find(|f| f.node == node && f.active_at(t))
            .map_or(LocalGuardianFault::None, |f| f.mode)
    }

    /// Nodes with any fault in the plan (used to classify outcomes:
    /// freezes of *these* nodes are expected, freezes of others are
    /// propagation).
    #[must_use]
    pub fn faulty_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.node_faults.iter().map(|f| f.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Whether the plan injects nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.node_faults.is_empty()
            && self.coupler_faults.is_empty()
            && self.guardian_faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_half_open() {
        let f = NodeFault {
            node: NodeId::new(0),
            kind: NodeFaultKind::Mute,
            from_slot: 10,
            to_slot: 20,
        };
        assert!(!f.active_at(9));
        assert!(f.active_at(10));
        assert!(f.active_at(19));
        assert!(!f.active_at(20));
    }

    #[test]
    fn plan_lookup_matches_node_and_time() {
        let plan = FaultPlan::none().with_node_fault(NodeFault {
            node: NodeId::new(2),
            kind: NodeFaultKind::Babbling,
            from_slot: 5,
            to_slot: 8,
        });
        assert!(plan.node_fault_at(NodeId::new(2), 6).is_some());
        assert!(plan.node_fault_at(NodeId::new(2), 8).is_none());
        assert!(plan.node_fault_at(NodeId::new(1), 6).is_none());
    }

    #[test]
    fn coupler_lookup_defaults_to_none() {
        let plan = FaultPlan::none().with_coupler_fault(CouplerFaultEvent {
            channel: 0,
            mode: CouplerFaultMode::Silence,
            from_slot: 0,
            to_slot: 4,
        });
        assert_eq!(plan.coupler_fault_at(0, 2), CouplerFaultMode::Silence);
        assert_eq!(plan.coupler_fault_at(1, 2), CouplerFaultMode::None);
        assert_eq!(plan.coupler_fault_at(0, 4), CouplerFaultMode::None);
    }

    #[test]
    fn guardian_lookup_defaults_to_none() {
        let plan = FaultPlan::none().with_guardian_fault(GuardianFaultEvent {
            node: NodeId::new(1),
            mode: LocalGuardianFault::StuckOpen,
            from_slot: 0,
            to_slot: 100,
        });
        assert_eq!(
            plan.guardian_fault_at(NodeId::new(1), 50),
            LocalGuardianFault::StuckOpen
        );
        assert_eq!(
            plan.guardian_fault_at(NodeId::new(0), 50),
            LocalGuardianFault::None
        );
    }

    #[test]
    fn faulty_nodes_deduplicates() {
        let plan = FaultPlan::none()
            .with_node_fault(NodeFault {
                node: NodeId::new(3),
                kind: NodeFaultKind::Mute,
                from_slot: 0,
                to_slot: 1,
            })
            .with_node_fault(NodeFault {
                node: NodeId::new(3),
                kind: NodeFaultKind::Babbling,
                from_slot: 5,
                to_slot: 6,
            });
        assert_eq!(plan.faulty_nodes(), [NodeId::new(3)]);
    }

    #[test]
    #[should_panic(expected = "channels are 0 and 1")]
    fn invalid_channel_is_rejected() {
        let _ = FaultPlan::none().with_coupler_fault(CouplerFaultEvent {
            channel: 2,
            mode: CouplerFaultMode::Silence,
            from_slot: 0,
            to_slot: 1,
        });
    }

    #[test]
    #[should_panic(expected = "empty fault window")]
    fn empty_window_is_rejected() {
        let _ = FaultPlan::none().with_node_fault(NodeFault {
            node: NodeId::new(0),
            kind: NodeFaultKind::Mute,
            from_slot: 5,
            to_slot: 5,
        });
    }

    #[test]
    fn kind_display_is_informative() {
        let k = NodeFaultKind::Sos {
            domain: SosDomain::Time,
            magnitude: 0.5,
        };
        assert!(k.to_string().contains("SOS"));
        assert!(NodeFaultKind::Babbling.to_string().contains("babbling"));
    }
}
