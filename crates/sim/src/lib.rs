//! # tta-sim
//!
//! A slot-synchronous simulator for TTA clusters with software fault
//! injection — the substrate standing in for the SWIFI / heavy-ion
//! experiments of Ademaj et al. (DSN'03) that motivate the paper
//! (Section 2.2).
//!
//! Where `tta-core` explores *all* behaviors of a small abstract model,
//! `tta-sim` executes *one* behavior at a time of a richer one: nodes run
//! the real [`tta_protocol::Controller`] state machine, frames carry
//! slightly-off-specification defects that heterogeneous receivers judge
//! differently, local or central guardians filter traffic depending on
//! the topology, and a fault plan injects node, guardian and coupler
//! faults at chosen slots.
//!
//! The crate answers the motivating question of the paper empirically
//! (experiment E9): which fault classes propagate in a **bus** topology
//! with local guardians but are contained by a **star** topology with
//! central guardians — and, conversely, what the central guardian's
//! replay fault does to either.
//!
//! # Example
//!
//! ```
//! use tta_sim::{FaultPlan, SimBuilder, Topology};
//! use tta_guardian::CouplerAuthority;
//!
//! let report = SimBuilder::new(4)
//!     .topology(Topology::Star)
//!     .authority(CouplerAuthority::SmallShifting)
//!     .slots(200)
//!     .plan(FaultPlan::none())
//!     .build()
//!     .run();
//! assert!(report.cluster_started(), "a fault-free cluster starts up");
//! assert!(report.healthy_frozen().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod asynch;
pub mod campaign;
pub mod drift;
mod inject;
mod log;
pub mod metrics;
mod report;
mod sim;
mod topology;
mod trace;

pub use campaign::{
    Campaign, CampaignReport, Outcome, RecoveryOutcome, RecoveryReport, Scenario, TrialAggregate,
    TrialResult,
};
pub use drift::{DriftExperiment, DriftReport};
pub use inject::{
    CouplerFaultEvent, FaultPersistence, FaultPlan, GuardianFaultEvent, NodeFault, NodeFaultKind,
};
pub use log::{SlotEvent, SlotLog};
pub use metrics::{PlanRunMetrics, TimeSeries, TimeSeriesError};
pub use report::{RecoveryEpisode, SimReport, SteadyState};
pub use sim::{SimBuilder, Simulation};
pub use topology::Topology;
pub use trace::ClusterSnapshot;
