//! Clock-drift and resynchronization experiments.
//!
//! Section 6's ρ — the relative clock-rate difference between guardian
//! and nodes — is a physical quantity: crystals drift. This module runs
//! the fault-tolerant-average clock synchronization of
//! [`tta_protocol::clocksync`] over a cluster of drifting clocks and
//! measures the offsets that result, connecting three claims:
//!
//! * *without* synchronization, offsets grow linearly with elapsed time
//!   (rate = the ppm difference);
//! * *with* per-round FTA resynchronization, offsets stay bounded by
//!   roughly one round's worth of drift, even with one Byzantine clock
//!   (the FTA discards extremes);
//! * the residual rate difference that synchronization cannot remove —
//!   the drift *within* a round — is exactly the ρ that sizes the
//!   guardian's buffer (eq. 1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;
use tta_protocol::clocksync::{ClockSync, DriftingClock};

/// Configuration of a drift experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftExperiment {
    /// Number of clocks (nodes).
    pub clocks: usize,
    /// Crystal tolerance in ppm; each clock's rate error is drawn
    /// uniformly from ±this.
    pub tolerance_ppm: f64,
    /// Microticks per TDMA round (resynchronization period).
    pub round_microticks: f64,
    /// Rounds to simulate.
    pub rounds: u32,
    /// Whether to apply FTA resynchronization at each round boundary.
    pub resynchronize: bool,
    /// Index of a clock with an arbitrary (Byzantine) rate, if any.
    pub byzantine: Option<usize>,
    /// RNG seed for the rate draws.
    pub seed: u64,
}

impl DriftExperiment {
    /// A 4-node, ±100 ppm, 10,000-microtick-round experiment matching the
    /// paper's crystal example.
    #[must_use]
    pub fn paper_crystals() -> Self {
        DriftExperiment {
            clocks: 4,
            tolerance_ppm: 100.0,
            round_microticks: 10_000.0,
            rounds: 100,
            resynchronize: true,
            byzantine: None,
            seed: 0x77A_2004,
        }
    }

    /// Runs the experiment.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `2k + 1 = 3` clocks are configured (the FTA
    /// with k = 1 needs a surviving majority) or the Byzantine index is
    /// out of range.
    #[must_use]
    pub fn run(&self) -> DriftReport {
        assert!(self.clocks >= 3, "FTA with k = 1 needs at least 3 clocks");
        if let Some(b) = self.byzantine {
            assert!(b < self.clocks, "byzantine index {b} out of range");
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut clocks: Vec<DriftingClock> = (0..self.clocks)
            .map(|i| {
                let ppm = if Some(i) == self.byzantine {
                    // An arbitrary, far-out-of-spec rate.
                    rng.gen_range(5_000.0..50_000.0)
                } else {
                    rng.gen_range(-self.tolerance_ppm..=self.tolerance_ppm)
                };
                DriftingClock::new(ppm)
            })
            .collect();

        let mut max_offset: f64 = 0.0;
        let mut final_offset: f64 = 0.0;
        let mut elapsed = 0.0;
        for _ in 0..self.rounds {
            for clock in &mut clocks {
                clock.advance(self.round_microticks);
            }
            elapsed += self.round_microticks;

            let spread = healthy_spread(&clocks, self.byzantine);
            max_offset = max_offset.max(spread);
            final_offset = spread;

            if self.resynchronize {
                // Each healthy clock measures its deviation from every
                // other clock (including the Byzantine one — FTA must
                // survive it) and applies the fault-tolerant average.
                let now: Vec<f64> = clocks.iter().map(DriftingClock::now).collect();
                for (i, clock) in clocks.iter_mut().enumerate() {
                    if Some(i) == self.byzantine {
                        continue;
                    }
                    let mut sync = ClockSync::new(1);
                    for (j, other) in now.iter().enumerate() {
                        if i != j {
                            sync.record((now[i] - other).round() as i32);
                        }
                    }
                    clock.correct(sync.resynchronize());
                }
            }
        }

        DriftReport {
            max_offset_microticks: max_offset,
            final_offset_microticks: final_offset,
            elapsed_microticks: elapsed,
            per_round_drift_bound: 2.0 * self.tolerance_ppm * 1e-6 * self.round_microticks,
        }
    }
}

fn healthy_spread(clocks: &[DriftingClock], byzantine: Option<usize>) -> f64 {
    let healthy: Vec<f64> = clocks
        .iter()
        .enumerate()
        .filter(|(i, _)| Some(*i) != byzantine)
        .map(|(_, c)| c.now())
        .collect();
    let max = healthy.iter().copied().fold(f64::MIN, f64::max);
    let min = healthy.iter().copied().fold(f64::MAX, f64::min);
    max - min
}

/// Result of a drift experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    /// Largest pairwise offset between healthy clocks ever observed.
    pub max_offset_microticks: f64,
    /// Offset at the end of the run.
    pub final_offset_microticks: f64,
    /// Total simulated time.
    pub elapsed_microticks: f64,
    /// The analytic per-round drift bound 2·tol·round (what ρ accumulates
    /// over one resynchronization interval).
    pub per_round_drift_bound: f64,
}

impl fmt::Display for DriftReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "max offset {:.2} µt (final {:.2} µt) over {:.0} µt; per-round bound {:.2} µt",
            self.max_offset_microticks,
            self.final_offset_microticks,
            self.elapsed_microticks,
            self.per_round_drift_bound
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> DriftExperiment {
        DriftExperiment {
            clocks: 4,
            tolerance_ppm: 100.0,
            round_microticks: 10_000.0,
            rounds: 200,
            resynchronize: true,
            byzantine: None,
            seed: 42,
        }
    }

    #[test]
    fn unsynchronized_offsets_grow_linearly() {
        let mut config = base();
        config.resynchronize = false;
        let short = DriftExperiment {
            rounds: 50,
            ..config
        }
        .run();
        let long = DriftExperiment {
            rounds: 200,
            ..config
        }
        .run();
        // 4× the time, ~4× the final offset.
        let ratio = long.final_offset_microticks / short.final_offset_microticks;
        assert!((3.5..=4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn synchronized_offsets_stay_bounded() {
        let report = base().run();
        // With per-round FTA, offsets never exceed a few rounds' drift.
        assert!(
            report.max_offset_microticks <= 4.0 * report.per_round_drift_bound,
            "{report}"
        );
        // ...while 200 rounds of unsynchronized drift would be far larger.
        let mut unsync = base();
        unsync.resynchronize = false;
        assert!(unsync.run().max_offset_microticks > 10.0 * report.max_offset_microticks);
    }

    #[test]
    fn fta_survives_a_byzantine_clock() {
        let mut config = base();
        config.byzantine = Some(2);
        let report = config.run();
        assert!(
            report.max_offset_microticks <= 6.0 * report.per_round_drift_bound,
            "healthy clocks must stay synchronized despite the Byzantine one: {report}"
        );
    }

    #[test]
    fn per_round_bound_matches_rho() {
        // The per-round drift bound is ρ·round with ρ from eq. (5).
        let report = base().run();
        assert!((report.per_round_drift_bound - 2.0).abs() < 1e-9); // 0.0002 · 10000
    }

    #[test]
    fn paper_crystals_preset_is_consistent() {
        let report = DriftExperiment::paper_crystals().run();
        assert!(report.max_offset_microticks.is_finite());
        assert!(report.per_round_drift_bound > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 3 clocks")]
    fn two_clocks_cannot_run_fta() {
        let mut config = base();
        config.clocks = 2;
        let _ = config.run();
    }

    #[test]
    fn report_display_is_informative() {
        let report = base().run();
        assert!(report.to_string().contains("max offset"));
    }
}
