//! Structured per-slot capture of the simulator's protocol-visible state.
//!
//! The conformance oracle (`tta-conformance`) replays these snapshots
//! through the formal model's transition relation; everything it needs —
//! controller vectors, coupler replay buffers, the effective replay count
//! and the healthy-freeze monitor — is captured here at slot boundaries
//! by [`crate::Simulation::run_traced`].

use serde::{Deserialize, Serialize};
use tta_guardian::BufferedFrame;
use tta_protocol::Controller;
use tta_types::NodeId;

/// The simulator's protocol-visible state at one slot boundary.
///
/// `controllers`, `buffers`, `replays_delivered` and `healthy_frozen`
/// correspond one-to-one to the components of the formal model's global
/// state; the richer simulator state (membership vectors, receiver
/// tolerances, start-delay counters) is deliberately absent — the model
/// abstracts it away, so a conformance oracle must too.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSnapshot {
    /// Absolute slot this snapshot precedes (snapshot `k` is the state
    /// *before* slot `k` executes; the final snapshot of a run follows
    /// the last slot).
    pub slot: u64,
    /// Per-node controller states, indexed by node.
    pub controllers: Vec<Controller>,
    /// The two couplers' replay buffers (always empty below full-shifting
    /// authority).
    pub buffers: [BufferedFrame; 2],
    /// Out-of-slot replays that actually delivered a buffered frame so
    /// far. Replays hitting an empty buffer produce silence and are not
    /// counted: the model folds them into the silence fault.
    pub replays_delivered: u8,
    /// Healthy (non-fault-injected) nodes frozen so far, in freeze order.
    pub healthy_frozen: Vec<NodeId>,
}

impl ClusterSnapshot {
    /// Whether any healthy node has frozen by this snapshot — the
    /// simulator-side mirror of the model's property monitor.
    #[must_use]
    pub fn property_holds(&self) -> bool {
        self.healthy_frozen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_types::FrameKind;

    #[test]
    fn property_tracks_the_freeze_monitor() {
        let clean = ClusterSnapshot {
            slot: 0,
            controllers: Vec::new(),
            buffers: [BufferedFrame::empty(); 2],
            replays_delivered: 0,
            healthy_frozen: Vec::new(),
        };
        assert!(clean.property_holds());
        let frozen = ClusterSnapshot {
            healthy_frozen: vec![NodeId::new(1)],
            buffers: [
                BufferedFrame {
                    id: 2,
                    kind: FrameKind::ColdStart,
                },
                BufferedFrame::empty(),
            ],
            ..clean
        };
        assert!(!frozen.property_holds());
    }
}
