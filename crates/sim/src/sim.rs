//! The slot-synchronous simulation engine.
//!
//! ## How faults propagate here (and why)
//!
//! The simulator enriches the formal model with the two mechanisms the
//! motivating fault-injection study (Ademaj et al., DSN'03) depends on:
//!
//! * **Per-receiver SOS judgment.** A transmission may carry a
//!   slightly-off-specification defect; every receiver accepts or rejects
//!   it according to its own hardware tolerance, so marginal frames split
//!   the receivers.
//! * **Membership agreement.** Explicit-C-state frames carry the sender's
//!   membership vector. A receiver judges such a frame *correct* only if
//!   its claimed position matches **and** the attached membership equals
//!   the receiver's own view extended with the sender (TTP/C's implicit
//!   acknowledgment). A frame that fails the membership comparison is
//!   delivered to that receiver as a frame claiming a wrong position —
//!   which is exactly the abstraction the formal model uses for C-state
//!   disagreement.
//!
//! Together these reproduce the bus topology's failure chain: an SOS
//! frame splits the receivers → their membership vectors diverge → each
//! side judges the other side's subsequent frames incorrect → the
//! minority clique freezes healthy nodes. A central guardian with
//! reshaping authority repairs the defect before receivers see it and the
//! chain never starts.

use crate::inject::{FaultPlan, NodeFaultKind};
use crate::log::{SlotEvent, SlotLog};
use crate::report::{RecoveryEpisode, SimReport};
use crate::topology::Topology;
use crate::trace::ClusterSnapshot;
use tta_guardian::local::LocalGuardianFault;
use tta_guardian::sos::{ReceiverTolerance, SosDefect};
use tta_guardian::BufferedFrame;
use tta_guardian::{CouplerAuthority, CouplerFaultMode};
use tta_protocol::membership::MembershipService;
use tta_protocol::{
    ChannelObservation, ChannelView, Controller, DelayedStartPolicy, EagerStartPolicy, HostChoices,
    Judgment, ProtocolState, RestartPolicy, RestartSupervisor, SendIntent,
};
use tta_types::{FrameKind, MembershipVector, NodeId};

/// A transmission travelling through guardians and couplers.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Transmission {
    sender: NodeId,
    kind: FrameKind,
    id: u16,
    defect: Option<SosDefect>,
    membership: Option<MembershipVector>,
}

/// What one channel carries after merging and coupler faults.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ChannelContent {
    Silence,
    Noise,
    Frame(Transmission),
}

/// Builder for [`Simulation`].
#[derive(Debug, Clone)]
pub struct SimBuilder {
    nodes: usize,
    topology: Topology,
    authority: CouplerAuthority,
    slots: u64,
    start_delays: Vec<u32>,
    tolerances: Vec<ReceiverTolerance>,
    plan: FaultPlan,
    restart_policy: RestartPolicy,
}

impl SimBuilder {
    /// Starts a builder for a cluster of `nodes` nodes.
    ///
    /// Defaults: star topology, small-shifting authority, 400 slots,
    /// staggered start delays `0, 3, 6, …`, and heterogeneous receiver
    /// tolerances spread around the nominal 0.5.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is not in `2..=16`.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        assert!((2..=16).contains(&nodes), "simulator supports 2..=16 nodes");
        let start_delays = (0..nodes).map(|i| 3 * i as u32).collect();
        let tolerances = (0..nodes)
            .map(|i| {
                let spread = if nodes > 1 {
                    0.2 * (i as f64 / (nodes - 1) as f64) - 0.1
                } else {
                    0.0
                };
                ReceiverTolerance::new(0.5 + spread, 0.5 + spread)
            })
            .collect();
        SimBuilder {
            nodes,
            topology: Topology::Star,
            authority: CouplerAuthority::SmallShifting,
            slots: 400,
            start_delays,
            tolerances,
            plan: FaultPlan::none(),
            restart_policy: RestartPolicy::Never,
        }
    }

    /// Selects the interconnect topology.
    #[must_use]
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the central guardians' authority (ignored for the bus
    /// topology, whose local guardians have fixed capabilities).
    #[must_use]
    pub fn authority(mut self, authority: CouplerAuthority) -> Self {
        self.authority = authority;
        self
    }

    /// Number of slots to run.
    #[must_use]
    pub fn slots(mut self, slots: u64) -> Self {
        self.slots = slots;
        self
    }

    /// Per-node startup delays in slots.
    #[must_use]
    pub fn start_delays(mut self, delays: Vec<u32>) -> Self {
        self.start_delays = delays;
        self
    }

    /// Per-node receiver tolerances.
    #[must_use]
    pub fn tolerances(mut self, tolerances: Vec<ReceiverTolerance>) -> Self {
        self.tolerances = tolerances;
        self
    }

    /// The fault plan to inject.
    #[must_use]
    pub fn plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// The hosts' restart policy for controllers that freeze after
    /// having started (default [`RestartPolicy::Never`]: freeze stays
    /// absorbing, the paper's semantics).
    #[must_use]
    pub fn restart_policy(mut self, policy: RestartPolicy) -> Self {
        self.restart_policy = policy;
        self
    }

    /// Builds the simulation.
    ///
    /// # Panics
    ///
    /// Panics if tolerances/delays were supplied with the wrong arity.
    #[must_use]
    pub fn build(self) -> Simulation {
        assert_eq!(self.tolerances.len(), self.nodes, "one tolerance per node");
        assert_eq!(self.start_delays.len(), self.nodes, "one delay per node");
        let slots_per_round = self.nodes as u16;
        Simulation {
            controllers: NodeId::first(self.nodes)
                .map(|id| Controller::new(id, slots_per_round))
                .collect(),
            memberships: vec![MembershipService::new(self.nodes, 1); self.nodes],
            policy: DelayedStartPolicy::new(self.start_delays),
            choices: HostChoices::checking(),
            topology: self.topology,
            authority: self.authority,
            slots: self.slots,
            tolerances: self.tolerances,
            plan: self.plan,
            buffers: [None, None],
            last_admitted: vec![None; self.nodes],
            ever_started: vec![false; self.nodes],
            supervisors: vec![RestartSupervisor::new(self.restart_policy); self.nodes],
            restart_policy: self.restart_policy,
            episodes: Vec::new(),
            t: 0,
            log: SlotLog::new(),
            healthy_frozen: Vec::new(),
            startup_slot: None,
            replays_delivered: 0,
        }
    }
}

/// A running simulation.
#[derive(Debug)]
pub struct Simulation {
    controllers: Vec<Controller>,
    memberships: Vec<MembershipService>,
    policy: DelayedStartPolicy,
    choices: HostChoices,
    topology: Topology,
    authority: CouplerAuthority,
    slots: u64,
    tolerances: Vec<ReceiverTolerance>,
    plan: FaultPlan,
    buffers: [Option<Transmission>; 2],
    last_admitted: Vec<Option<u64>>,
    ever_started: Vec<bool>,
    supervisors: Vec<RestartSupervisor>,
    restart_policy: RestartPolicy,
    episodes: Vec<RecoveryEpisode>,
    t: u64,
    log: SlotLog,
    healthy_frozen: Vec<NodeId>,
    startup_slot: Option<u64>,
    replays_delivered: u8,
}

impl Simulation {
    fn slots_per_round(&self) -> u64 {
        self.controllers.len() as u64
    }

    /// Current absolute slot.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.t
    }

    /// Current controller states.
    #[must_use]
    pub fn controllers(&self) -> &[Controller] {
        &self.controllers
    }

    /// Runs to the configured horizon and reports.
    #[must_use]
    pub fn run(mut self) -> SimReport {
        while self.t < self.slots {
            self.step();
        }
        self.finish()
    }

    /// Runs to the configured horizon, capturing a [`ClusterSnapshot`] at
    /// every slot boundary: one before each slot and one after the last,
    /// so a run over `n` slots yields `n + 1` snapshots. The snapshots
    /// are the structured trace the conformance oracle replays through
    /// the formal model's transition relation.
    #[must_use]
    pub fn run_traced(mut self) -> (SimReport, Vec<ClusterSnapshot>) {
        let mut snapshots = Vec::with_capacity(self.slots as usize + 1);
        while self.t < self.slots {
            snapshots.push(self.snapshot());
            self.step();
        }
        snapshots.push(self.snapshot());
        (self.finish(), snapshots)
    }

    /// The protocol-visible state at the current slot boundary.
    #[must_use]
    pub fn snapshot(&self) -> ClusterSnapshot {
        let lift = |buffer: &Option<Transmission>| {
            buffer.map_or(BufferedFrame::empty(), |tx| BufferedFrame {
                id: tx.id,
                kind: tx.kind,
            })
        };
        ClusterSnapshot {
            slot: self.t,
            controllers: self.controllers.clone(),
            buffers: [lift(&self.buffers[0]), lift(&self.buffers[1])],
            replays_delivered: self.replays_delivered,
            healthy_frozen: self.healthy_frozen.clone(),
        }
    }

    fn finish(self) -> SimReport {
        let final_states = self
            .controllers
            .iter()
            .map(Controller::protocol_state)
            .collect();
        SimReport::new(
            self.slots,
            final_states,
            self.healthy_frozen,
            self.plan.faulty_nodes(),
            self.startup_slot,
            self.restart_policy,
            self.episodes,
            self.log,
        )
    }

    /// Executes one TDMA slot.
    pub fn step(&mut self) {
        let t = self.t;

        // 1. Transmission intents, with node faults applied.
        let transmissions: Vec<Transmission> = (0..self.controllers.len())
            .filter_map(|i| self.transmission_of(NodeId::new(i as u8), t))
            .collect();

        // 2. Guardian filtering (rate limiting, content checks, reshaping).
        let mut admitted = Vec::new();
        for tx in transmissions {
            if let Some(passed) = self.guard(tx, t) {
                self.last_admitted[passed.sender.as_usize()] = Some(t);
                admitted.push(passed);
            }
        }

        // 3. Merge onto the two channels and apply coupler faults.
        let merged = match admitted.len() {
            0 => ChannelContent::Silence,
            1 => ChannelContent::Frame(admitted[0]),
            _ => ChannelContent::Noise,
        };
        let channels = [self.couple(merged, 0, t), self.couple(merged, 1, t)];

        // 4. SOS disagreement accounting (per defective frame, once).
        self.log_sos_disagreement(&channels, t);

        // 5. Per-receiver observation and controller stepping.
        let before: Vec<Controller> = self.controllers.clone();
        for i in 0..self.controllers.len() {
            // A controller frozen after having started is out of the
            // protocol's hands: only the host's restart policy can bring
            // it back. (The initial cold-start dwell in freeze is the
            // start-delay policy's business and takes the normal path.)
            if self.controllers[i].protocol_state() == ProtocolState::Freeze && self.ever_started[i]
            {
                if self.supervisors[i].restart_due(t) {
                    self.restart_node(i, t);
                }
                continue;
            }
            self.ever_started[i] |= self.controllers[i].protocol_state() != ProtocolState::Freeze;
            let receiver = NodeId::new(i as u8);
            let view = ChannelView::new(
                self.observe(receiver, channels[0]),
                self.observe(receiver, channels[1]),
            );
            self.update_membership(receiver, &channels, &view);
            let next = self.controllers[i].step(&view, &self.choices, &mut self.policy);
            if std::env::var_os("TTASIM_DEBUG").is_some() {
                eprintln!(
                    "t={t} {} view={view} members={} -> {next}",
                    self.controllers[i],
                    self.memberships[i].members()
                );
            }
            self.controllers[i] = next;
        }

        // 6. Post-step bookkeeping: integration adoption, logging, monitors.
        for (i, prev) in before.iter().copied().enumerate() {
            let node = NodeId::new(i as u8);
            let next = self.controllers[i];
            if prev.protocol_state() != next.protocol_state() {
                self.log.record(
                    t,
                    SlotEvent::StateChange {
                        node,
                        from: prev.protocol_state(),
                        to: next.protocol_state(),
                    },
                );
                // A listener that integrated adopts the membership carried
                // by the frame it integrated on.
                if prev.protocol_state() == ProtocolState::Listen
                    && next.protocol_state() == ProtocolState::Passive
                {
                    if let Some(adopted) = adopted_membership(&channels) {
                        let mut svc = MembershipService::new(self.controllers.len(), 1);
                        for member in adopted.iter() {
                            svc.record(member, Judgment::Correct);
                        }
                        self.memberships[i] = svc;
                    }
                }
                if prev.is_integrated()
                    && next.protocol_state() == ProtocolState::Freeze
                    && !self.plan.faulty_nodes().contains(&node)
                {
                    self.healthy_frozen.push(node);
                    self.log.record(t, SlotEvent::HealthyNodeFroze { node });
                }
                // Recovery bookkeeping. A freeze after the first start
                // opens an episode and arms the supervisor; a restarted
                // node reaching active/passive closes its episode.
                if next.protocol_state() == ProtocolState::Freeze && self.ever_started[i] {
                    self.supervisors[i].on_freeze(t);
                    self.episodes.push(RecoveryEpisode {
                        node,
                        freeze_slot: t,
                        restart_slot: None,
                        reintegration_slot: None,
                    });
                }
                if next.is_integrated() && !prev.is_integrated() {
                    if let Some(episode) = self
                        .episodes
                        .iter_mut()
                        .rev()
                        .find(|e| e.node == node && e.reintegration_slot.is_none())
                        .filter(|e| e.restart_slot.is_some())
                    {
                        episode.reintegration_slot = Some(t);
                        self.log.record(t, SlotEvent::NodeReintegrated { node });
                    }
                }
            }
        }

        // 7. Startup detection.
        if self.startup_slot.is_none() {
            let faulty = self.plan.faulty_nodes();
            let all_up = self
                .controllers
                .iter()
                .enumerate()
                .filter(|(i, _)| !faulty.contains(&NodeId::new(*i as u8)))
                .all(|(_, c)| c.is_integrated());
            if all_up {
                self.startup_slot = Some(t);
            }
        }

        self.t += 1;
    }

    /// Power-cycles a frozen controller: fresh membership, back to
    /// `init` through the model's own freeze → init host transition.
    fn restart_node(&mut self, i: usize, t: u64) {
        let node = NodeId::new(i as u8);
        self.memberships[i] = MembershipService::new(self.controllers.len(), 1);
        self.supervisors[i].on_restart();
        let next =
            self.controllers[i].step(&ChannelView::silent(), &self.choices, &mut EagerStartPolicy);
        debug_assert_eq!(next.protocol_state(), ProtocolState::Init);
        self.controllers[i] = next;
        self.log.record(
            t,
            SlotEvent::NodeRestarted {
                node,
                attempt: self.supervisors[i].restarts(),
            },
        );
        if let Some(episode) = self
            .episodes
            .iter_mut()
            .rev()
            .find(|e| e.node == node && e.restart_slot.is_none())
        {
            episode.restart_slot = Some(t);
        }
    }

    /// The transmission a node attempts this slot, after node faults.
    fn transmission_of(&mut self, node: NodeId, t: u64) -> Option<Transmission> {
        let controller = &self.controllers[node.as_usize()];
        let honest = match controller.send_intent() {
            SendIntent::Silent => None,
            SendIntent::ColdStart { id } => Some(Transmission {
                sender: node,
                kind: FrameKind::ColdStart,
                id,
                defect: None,
                membership: None,
            }),
            SendIntent::CStateFrame { id } => Some(Transmission {
                sender: node,
                kind: FrameKind::CState,
                id,
                defect: None,
                membership: Some(self.own_view_with_self(node)),
            }),
        };
        let fault = self.plan.node_fault_at(node, t).copied();
        let tx = match fault.map(|f| f.kind) {
            None => honest,
            Some(NodeFaultKind::Mute) => None,
            Some(NodeFaultKind::Sos { domain, magnitude }) => honest.map(|mut tx| {
                tx.defect = Some(SosDefect::new(domain, magnitude));
                tx
            }),
            // Content faults transmit at cold-start cadence (once per
            // round) — a masquerader mimics protocol timing; only its
            // claimed identity/state is wrong. Continuous transmission
            // would be babbling and be starved by the guardians' silence
            // gap instead.
            Some(NodeFaultKind::MasqueradeColdStart { claimed_slot }) => {
                let fault = fault.expect("fault is active");
                (t - fault.from_slot)
                    .is_multiple_of(self.slots_per_round())
                    .then_some(Transmission {
                        sender: node,
                        kind: FrameKind::ColdStart,
                        id: claimed_slot,
                        defect: None,
                        membership: None,
                    })
            }
            Some(NodeFaultKind::InvalidCState { claimed_slot }) => {
                let fault = fault.expect("fault is active");
                (t - fault.from_slot)
                    .is_multiple_of(self.slots_per_round())
                    .then_some(Transmission {
                        sender: node,
                        kind: FrameKind::CState,
                        id: claimed_slot,
                        defect: None,
                        membership: Some(self.own_view_with_self(node)),
                    })
            }
            Some(NodeFaultKind::Babbling) => Some(Transmission {
                sender: node,
                kind: FrameKind::Bad,
                id: 0,
                defect: None,
                membership: None,
            }),
        };
        if tx.is_some() {
            // A transmitting node acknowledges itself.
            self.memberships[node.as_usize()].record(node, Judgment::Correct);
        }
        tx
    }

    fn own_view_with_self(&self, node: NodeId) -> MembershipVector {
        let mut members = self.memberships[node.as_usize()].members();
        members.insert(node);
        members
    }

    /// Guardian filtering: rate limiting (all healthy guardians), content
    /// checks and signal reshaping (central guardians only).
    fn guard(&mut self, tx: Transmission, t: u64) -> Option<Transmission> {
        let local_fault = match self.topology {
            Topology::Bus => self.plan.guardian_fault_at(tx.sender, t),
            Topology::Star => LocalGuardianFault::None,
        };
        if local_fault == LocalGuardianFault::StuckClosed {
            return None;
        }
        let guardian_enforces = local_fault != LocalGuardianFault::StuckOpen;

        // Minimum-silence-gap enforcement: a port earns bus access only
        // after a full round of silence since its last *activity* —
        // attempts made while blocked reset the gap. Both local and
        // central guardians can enforce this without a global time base,
        // and it starves a babbling idiot completely after its first
        // grant (continuous activity never satisfies the gap).
        if guardian_enforces {
            if let Some(last) = self.last_admitted[tx.sender.as_usize()] {
                if t.saturating_sub(last) < self.slots_per_round() {
                    self.last_admitted[tx.sender.as_usize()] = Some(t);
                    return None;
                }
            }
        }

        if self.topology.is_central() {
            // Semantic analysis: a frame claiming a slot position must
            // arrive on the port of that slot's owner. This works even
            // before synchronization because the guardian knows which
            // physical port the transmission entered.
            if self.authority.can_block()
                && matches!(tx.kind, FrameKind::ColdStart | FrameKind::CState)
                && tx.id != u16::from(tx.sender.index()) + 1
            {
                self.log.record(
                    t,
                    SlotEvent::GuardianBlocked {
                        node: tx.sender,
                        reason: format!(
                            "{} frame claims slot {} on {}'s port",
                            tx.kind, tx.id, tx.sender
                        ),
                    },
                );
                return None;
            }
            // Active signal reshaping of SOS defects.
            if let Some(defect) = tx.defect {
                let can_fix = match defect.domain() {
                    tta_guardian::sos::SosDomain::Value => self.authority.can_block(),
                    tta_guardian::sos::SosDomain::Time => self.authority.can_shift_small(),
                };
                if can_fix {
                    self.log
                        .record(t, SlotEvent::GuardianReshaped { node: tx.sender });
                    return Some(Transmission { defect: None, ..tx });
                }
            }
        }
        Some(tx)
    }

    /// Applies the coupler fault for `channel` and maintains its replay
    /// buffer.
    fn couple(&mut self, content: ChannelContent, channel: usize, t: u64) -> ChannelContent {
        let mode = self.plan.coupler_fault_at(channel, t);
        let out = match mode {
            CouplerFaultMode::None => content,
            CouplerFaultMode::Silence => ChannelContent::Silence,
            CouplerFaultMode::BadFrame => ChannelContent::Noise,
            CouplerFaultMode::OutOfSlot => {
                assert!(
                    self.topology.is_central() && self.authority.can_buffer_full_frames(),
                    "out_of_slot coupler faults require a full-shifting star coupler"
                );
                self.log.record(t, SlotEvent::CouplerReplay { channel });
                if self.buffers[channel].is_some() {
                    self.replays_delivered = self.replays_delivered.saturating_add(1);
                }
                self.buffers[channel].map_or(ChannelContent::Silence, ChannelContent::Frame)
            }
        };
        if self.topology.is_central() && self.authority.can_buffer_full_frames() {
            if let ChannelContent::Frame(tx) = out {
                if tx.kind != FrameKind::Bad {
                    self.buffers[channel] = Some(tx);
                }
            }
        }
        out
    }

    fn log_sos_disagreement(&mut self, channels: &[ChannelContent; 2], t: u64) {
        // One defective frame can appear on both channels; report once.
        let defective = channels.iter().find_map(|c| match c {
            ChannelContent::Frame(tx) if tx.defect.is_some() => Some(*tx),
            _ => None,
        });
        if let Some(tx) = defective {
            let defect = tx.defect.expect("filtered for defects");
            let (mut accepted, mut rejected) = (0, 0);
            for (i, tol) in self.tolerances.iter().enumerate() {
                if NodeId::new(i as u8) == tx.sender {
                    continue;
                }
                if tol.accepts(Some(&defect)) {
                    accepted += 1;
                } else {
                    rejected += 1;
                }
            }
            if accepted > 0 && rejected > 0 {
                self.log.record(
                    t,
                    SlotEvent::SosDisagreement {
                        sender: tx.sender,
                        accepted,
                        rejected,
                    },
                );
            }
        }
    }

    /// What `receiver` sees on a channel carrying `content`.
    fn observe(&self, receiver: NodeId, content: ChannelContent) -> ChannelObservation {
        match content {
            ChannelContent::Silence => ChannelObservation::silence(),
            ChannelContent::Noise => ChannelObservation::bad(),
            ChannelContent::Frame(tx) => {
                if tx.kind == FrameKind::Bad {
                    // Babbled garbage is noise to every receiver.
                    return ChannelObservation::bad();
                }
                if tx.sender == receiver {
                    // The sender drives the bus; its controller ignores
                    // the view in its own slot.
                    return ChannelObservation::frame(tx.kind, tx.id);
                }
                // SOS: the receiver's tolerance decides validity.
                if !self.tolerances[receiver.as_usize()].accepts(tx.defect.as_ref()) {
                    return ChannelObservation::bad();
                }
                // Membership agreement (explicit C-state frames): a
                // mismatch makes the frame *incorrect* for this receiver,
                // which the position abstraction expresses as a wrong
                // claimed slot. Only receivers with a synchronized state
                // of their own can perform this check — integrating nodes
                // cannot recognize a bad C-state (the paper's Section 2.2
                // integration hazard) and must take the frame at face
                // value.
                if tx.kind == FrameKind::CState
                    && self.controllers[receiver.as_usize()]
                        .protocol_state()
                        .keeps_slot_counter()
                {
                    if let Some(attached) = tx.membership {
                        let mut expected = self.memberships[receiver.as_usize()].members();
                        expected.insert(tx.sender);
                        expected.insert(receiver);
                        let mut attached_cmp = attached;
                        attached_cmp.insert(receiver);
                        if attached_cmp != expected {
                            let believed = self.controllers[receiver.as_usize()]
                                .slot()
                                .map_or(tx.id, tta_types::SlotIndex::get);
                            let wrong = (believed % self.controllers.len() as u16) + 1;
                            let wrong = if wrong == tx.id && wrong == believed {
                                (wrong % self.controllers.len() as u16) + 1
                            } else {
                                wrong
                            };
                            // Deliver an id that the receiver judges
                            // incorrect: anything differing from its own
                            // believed slot.
                            let delivered = if tx.id != believed { tx.id } else { wrong };
                            return ChannelObservation::frame(FrameKind::CState, delivered.max(1));
                        }
                    }
                }
                ChannelObservation::frame(tx.kind, tx.id)
            }
        }
    }

    /// Membership bookkeeping for one receiver after observing the slot.
    fn update_membership(
        &mut self,
        receiver: NodeId,
        channels: &[ChannelContent; 2],
        view: &ChannelView,
    ) {
        let Some(believed) = self.controllers[receiver.as_usize()].slot() else {
            return; // listeners adopt membership at integration instead
        };
        // Identify the claimed sender, if any valid frame is present.
        let claimed: Option<NodeId> = channels.iter().find_map(|c| match c {
            ChannelContent::Frame(tx) if tx.sender != receiver => Some(NodeId::new(
                (tx.id.max(1) - 1) as u8 % self.controllers.len() as u8,
            )),
            _ => None,
        });
        match view.joint_judgment(believed.get()) {
            Judgment::Correct => {
                if let Some(sender) = claimed {
                    self.memberships[receiver.as_usize()].record(sender, Judgment::Correct);
                }
            }
            Judgment::Incorrect => {
                if let Some(sender) = claimed {
                    self.memberships[receiver.as_usize()].record(sender, Judgment::Incorrect);
                }
            }
            Judgment::Invalid => {
                // Noise: the expected sender of this slot takes the blame.
                let expected = NodeId::new((believed.get() - 1) as u8);
                if expected != receiver {
                    self.memberships[receiver.as_usize()].record(expected, Judgment::Invalid);
                }
            }
            Judgment::Null => {
                let expected = NodeId::new((believed.get() - 1) as u8);
                if expected != receiver {
                    self.memberships[receiver.as_usize()].record(expected, Judgment::Null);
                }
            }
        }
    }
}

/// Membership a fresh integrator adopts from the frame on the channel.
fn adopted_membership(channels: &[ChannelContent; 2]) -> Option<MembershipVector> {
    channels.iter().find_map(|c| match c {
        ChannelContent::Frame(tx) => {
            let mut members = tx.membership.unwrap_or_default();
            members.insert(tx.sender);
            Some(members)
        }
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{CouplerFaultEvent, FaultPersistence, NodeFault};

    fn golden(topology: Topology, authority: CouplerAuthority) -> SimReport {
        SimBuilder::new(4)
            .topology(topology)
            .authority(authority)
            .slots(300)
            .plan(FaultPlan::none())
            .build()
            .run()
    }

    #[test]
    fn fault_free_star_cluster_starts_up() {
        let report = golden(Topology::Star, CouplerAuthority::SmallShifting);
        assert!(report.cluster_started(), "cluster must start: {report}");
        assert!(report.healthy_frozen().is_empty());
        assert_eq!(report.integrated_at_end(), 4);
    }

    #[test]
    fn fault_free_bus_cluster_starts_up() {
        let report = golden(Topology::Bus, CouplerAuthority::Passive);
        assert!(report.cluster_started(), "cluster must start: {report}");
        assert!(report.healthy_frozen().is_empty());
    }

    #[test]
    fn all_authorities_support_fault_free_startup() {
        for authority in CouplerAuthority::all() {
            let report = golden(Topology::Star, authority);
            assert!(report.cluster_started(), "{authority}: {report}");
        }
    }

    #[test]
    fn sos_fault_splits_bus_receivers() {
        // A value-domain SOS sender on the bus: tolerances straddle the
        // defect magnitude, receivers disagree, membership diverges.
        let plan = FaultPlan::none().with_node_fault(NodeFault {
            node: NodeId::new(0),
            kind: NodeFaultKind::Sos {
                domain: tta_guardian::sos::SosDomain::Value,
                magnitude: 0.5,
            },
            from_slot: 60,
            to_slot: 300,
            persistence: FaultPersistence::Transient,
        });
        let report = SimBuilder::new(4)
            .topology(Topology::Bus)
            .slots(300)
            .plan(plan)
            .build()
            .run();
        let disagreements = report
            .log()
            .count(|e| matches!(e, SlotEvent::SosDisagreement { .. }));
        assert!(disagreements > 0, "receivers must disagree: {report}");
        assert!(
            !report.healthy_frozen().is_empty(),
            "SOS on the bus must freeze a healthy node: {report}"
        );
    }

    #[test]
    fn central_guardian_reshapes_sos_away() {
        let plan = FaultPlan::none().with_node_fault(NodeFault {
            node: NodeId::new(0),
            kind: NodeFaultKind::Sos {
                domain: tta_guardian::sos::SosDomain::Value,
                magnitude: 0.5,
            },
            from_slot: 60,
            to_slot: 300,
            persistence: FaultPersistence::Transient,
        });
        let report = SimBuilder::new(4)
            .topology(Topology::Star)
            .authority(CouplerAuthority::SmallShifting)
            .slots(300)
            .plan(plan)
            .build()
            .run();
        assert!(report.healthy_frozen().is_empty(), "{report}");
        assert!(
            report
                .log()
                .count(|e| matches!(e, SlotEvent::GuardianReshaped { .. }))
                > 0
        );
        assert!(
            report
                .log()
                .count(|e| matches!(e, SlotEvent::SosDisagreement { .. }))
                == 0
        );
    }

    #[test]
    fn masquerading_cold_start_disturbs_bus_startup() {
        // The faulty node claims someone else's round slot during startup.
        let plan = FaultPlan::none().with_node_fault(NodeFault {
            node: NodeId::new(3),
            kind: NodeFaultKind::MasqueradeColdStart { claimed_slot: 2 },
            from_slot: 0,
            to_slot: 300,
            persistence: FaultPersistence::Transient,
        });
        let bus = SimBuilder::new(4)
            .topology(Topology::Bus)
            .slots(300)
            .plan(plan.clone())
            .build()
            .run();
        let star = SimBuilder::new(4)
            .topology(Topology::Star)
            .authority(CouplerAuthority::TimeWindows)
            .slots(300)
            .plan(plan)
            .build()
            .run();
        // The star guardian blocks every masqueraded frame at the port;
        // the bus has no component that can (local guardians cannot read
        // content). Whether the delivered bogus frames end up freezing a
        // node on the bus depends on startup timing — the statistical
        // comparison lives in the campaign tests; here we pin the
        // deterministic mechanism.
        assert!(
            star.log()
                .count(|e| matches!(e, SlotEvent::GuardianBlocked { .. }))
                > 0
        );
        assert!(
            star.cluster_started(),
            "star contains the masquerade: {star}"
        );
        assert!(star.healthy_frozen().is_empty());
        assert_eq!(
            bus.log()
                .count(|e| matches!(e, SlotEvent::GuardianBlocked { .. })),
            0,
            "local guardians cannot block content faults: {bus}"
        );
    }

    #[test]
    fn invalid_cstate_is_blocked_centrally() {
        let plan = FaultPlan::none().with_node_fault(NodeFault {
            node: NodeId::new(2),
            kind: NodeFaultKind::InvalidCState { claimed_slot: 1 },
            from_slot: 0,
            to_slot: 400,
            persistence: FaultPersistence::Transient,
        });
        let star = SimBuilder::new(4)
            .topology(Topology::Star)
            .authority(CouplerAuthority::TimeWindows)
            .slots(400)
            .plan(plan)
            .build()
            .run();
        assert!(
            star.log()
                .count(|e| matches!(e, SlotEvent::GuardianBlocked { .. }))
                > 0
        );
        assert!(star.healthy_frozen().is_empty(), "{star}");
        assert!(star.cluster_started(), "{star}");
    }

    #[test]
    fn coupler_replay_freezes_healthy_node_in_full_shifting_star() {
        // The paper's headline fault, executed: while nodes are still
        // integrating, replay buffered frames out of slot on channel 0.
        let plan = FaultPlan::none().with_coupler_fault(CouplerFaultEvent {
            channel: 0,
            mode: CouplerFaultMode::OutOfSlot,
            from_slot: 12,
            to_slot: 340,
            persistence: FaultPersistence::Transient,
        });
        let report = SimBuilder::new(4)
            .topology(Topology::Star)
            .authority(CouplerAuthority::FullShifting)
            .slots(400)
            .plan(plan)
            .build()
            .run();
        assert!(
            report
                .log()
                .count(|e| matches!(e, SlotEvent::CouplerReplay { .. }))
                > 0
        );
        // A replayed frame is valid but stale: receivers in the listen
        // state integrate on it / integrated ones count failures.
        assert!(
            !report.healthy_frozen().is_empty() || !report.cluster_started(),
            "replay must disturb the cluster: {report}"
        );
    }

    #[test]
    fn silence_and_noise_coupler_faults_are_tolerated() {
        // Passive channel faults on one channel: the redundant channel
        // carries the traffic; nobody freezes (the formal model's E1, run
        // as a simulation).
        for mode in [CouplerFaultMode::Silence, CouplerFaultMode::BadFrame] {
            let plan = FaultPlan::none().with_coupler_fault(CouplerFaultEvent {
                channel: 0,
                mode,
                from_slot: 0,
                to_slot: 400,
                persistence: FaultPersistence::Transient,
            });
            let report = SimBuilder::new(4)
                .topology(Topology::Star)
                .authority(CouplerAuthority::SmallShifting)
                .slots(400)
                .plan(plan)
                .build()
                .run();
            assert!(report.cluster_started(), "{mode:?}: {report}");
            assert!(report.healthy_frozen().is_empty(), "{mode:?}: {report}");
        }
    }

    #[test]
    fn babbling_is_rate_limited_by_guardians() {
        let plan = FaultPlan::none().with_node_fault(NodeFault {
            node: NodeId::new(1),
            kind: NodeFaultKind::Babbling,
            from_slot: 0,
            to_slot: 400,
            persistence: FaultPersistence::Transient,
        });
        for topology in [Topology::Bus, Topology::Star] {
            let report = SimBuilder::new(4)
                .topology(topology)
                .authority(CouplerAuthority::TimeWindows)
                .slots(400)
                .plan(plan.clone())
                .build()
                .run();
            assert!(report.cluster_started(), "{topology}: {report}");
            assert!(report.healthy_frozen().is_empty(), "{topology}: {report}");
        }
    }

    #[test]
    fn mute_node_does_not_disturb_the_others() {
        let plan = FaultPlan::none().with_node_fault(NodeFault {
            node: NodeId::new(2),
            kind: NodeFaultKind::Mute,
            from_slot: 0,
            to_slot: 400,
            persistence: FaultPersistence::Transient,
        });
        let report = SimBuilder::new(4)
            .topology(Topology::Star)
            .authority(CouplerAuthority::SmallShifting)
            .slots(400)
            .plan(plan)
            .build()
            .run();
        assert!(report.healthy_frozen().is_empty(), "{report}");
        assert!(report.cluster_started(), "{report}");
    }

    #[test]
    #[should_panic(expected = "2..=16")]
    fn tiny_clusters_are_rejected() {
        let _ = SimBuilder::new(1);
    }

    #[test]
    fn traced_run_matches_plain_run() {
        let build = || {
            SimBuilder::new(4)
                .topology(Topology::Star)
                .authority(CouplerAuthority::SmallShifting)
                .slots(120)
                .plan(FaultPlan::none())
                .build()
        };
        let plain = build().run();
        let (traced, snapshots) = build().run_traced();
        assert_eq!(plain, traced, "tracing must not change the execution");
        assert_eq!(snapshots.len(), 121, "one snapshot per boundary");
        assert_eq!(snapshots[0].slot, 0);
        assert!(snapshots[0]
            .controllers
            .iter()
            .all(|c| c.protocol_state() == ProtocolState::Freeze));
        assert_eq!(snapshots.last().unwrap().slot, 120);
        assert!(snapshots.iter().all(ClusterSnapshot::property_holds));
    }

    #[test]
    fn snapshots_count_only_delivered_replays() {
        // The first replay window opens before any frame was buffered:
        // those replays hit an empty buffer and must not count. The
        // second opens after cold-start traffic has been latched (same
        // onset as `coupler_replay_freezes_healthy_node_in_full_shifting_star`).
        let plan = FaultPlan::none()
            .with_coupler_fault(CouplerFaultEvent {
                channel: 0,
                mode: CouplerFaultMode::OutOfSlot,
                from_slot: 2,
                to_slot: 4,
                persistence: FaultPersistence::Transient,
            })
            .with_coupler_fault(CouplerFaultEvent {
                channel: 0,
                mode: CouplerFaultMode::OutOfSlot,
                from_slot: 12,
                to_slot: 40,
                persistence: FaultPersistence::Transient,
            });
        let (report, snapshots) = SimBuilder::new(4)
            .topology(Topology::Star)
            .authority(CouplerAuthority::FullShifting)
            .slots(60)
            .plan(plan)
            .build()
            .run_traced();
        let logged = report
            .log()
            .count(|e| matches!(e, SlotEvent::CouplerReplay { .. }));
        let delivered = snapshots.last().unwrap().replays_delivered;
        assert!(logged as u8 > delivered, "empty-buffer replays are logged");
        assert!(delivered > 0, "buffered frames were replayed eventually");
        // The counter is monotone along the trace.
        for pair in snapshots.windows(2) {
            assert!(pair[0].replays_delivered <= pair[1].replays_delivered);
        }
    }
}
