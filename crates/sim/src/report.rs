//! Run reports.

use crate::log::SlotLog;
use serde::{Deserialize, Serialize};
use std::fmt;
use tta_protocol::ProtocolState;
use tta_types::NodeId;

/// Everything a finished simulation reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimReport {
    slots_run: u64,
    final_states: Vec<ProtocolState>,
    healthy_frozen: Vec<NodeId>,
    faulty_nodes: Vec<NodeId>,
    startup_slot: Option<u64>,
    log: SlotLog,
}

impl SimReport {
    pub(crate) fn new(
        slots_run: u64,
        final_states: Vec<ProtocolState>,
        healthy_frozen: Vec<NodeId>,
        faulty_nodes: Vec<NodeId>,
        startup_slot: Option<u64>,
        log: SlotLog,
    ) -> Self {
        SimReport {
            slots_run,
            final_states,
            healthy_frozen,
            faulty_nodes,
            startup_slot,
            log,
        }
    }

    /// Number of slots executed.
    #[must_use]
    pub fn slots_run(&self) -> u64 {
        self.slots_run
    }

    /// Final protocol state of every node.
    #[must_use]
    pub fn final_states(&self) -> &[ProtocolState] {
        &self.final_states
    }

    /// Healthy (non-fault-injected) nodes that ever froze — the paper's
    /// propagation criterion.
    #[must_use]
    pub fn healthy_frozen(&self) -> &[NodeId] {
        &self.healthy_frozen
    }

    /// Nodes the fault plan targeted.
    #[must_use]
    pub fn faulty_nodes(&self) -> &[NodeId] {
        &self.faulty_nodes
    }

    /// First absolute slot at which every healthy node was integrated
    /// (active or passive), if that ever happened.
    #[must_use]
    pub fn startup_slot(&self) -> Option<u64> {
        self.startup_slot
    }

    /// Whether the cluster ever fully started (all healthy nodes
    /// integrated).
    #[must_use]
    pub fn cluster_started(&self) -> bool {
        self.startup_slot.is_some()
    }

    /// Healthy nodes that ended the run integrated.
    #[must_use]
    pub fn integrated_at_end(&self) -> usize {
        self.final_states
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                s.is_integrated() && !self.faulty_nodes.contains(&NodeId::new(*i as u8))
            })
            .count()
    }

    /// The run's event log.
    #[must_use]
    pub fn log(&self) -> &SlotLog {
        &self.log
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "simulation of {} slots:", self.slots_run)?;
        for (i, state) in self.final_states.iter().enumerate() {
            let node = NodeId::new(i as u8);
            let tag = if self.faulty_nodes.contains(&node) {
                " (fault-injected)"
            } else {
                ""
            };
            writeln!(f, "  {node}: {state}{tag}")?;
        }
        match self.startup_slot {
            Some(slot) => writeln!(f, "  cluster up at slot {slot}")?,
            None => writeln!(f, "  cluster never fully started")?,
        }
        if !self.healthy_frozen.is_empty() {
            write!(f, "  healthy nodes frozen:")?;
            for n in &self.healthy_frozen {
                write!(f, " {n}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport::new(
            100,
            vec![
                ProtocolState::Active,
                ProtocolState::Freeze,
                ProtocolState::Active,
                ProtocolState::Freeze,
            ],
            vec![NodeId::new(1)],
            vec![NodeId::new(3)],
            Some(17),
            SlotLog::new(),
        )
    }

    #[test]
    fn accessors_expose_outcome() {
        let r = report();
        assert_eq!(r.slots_run(), 100);
        assert!(r.cluster_started());
        assert_eq!(r.startup_slot(), Some(17));
        assert_eq!(r.healthy_frozen(), [NodeId::new(1)]);
    }

    #[test]
    fn integrated_at_end_excludes_faulty_nodes() {
        // Nodes 0 and 2 are active; node 3 is faulty and frozen.
        assert_eq!(report().integrated_at_end(), 2);
    }

    #[test]
    fn display_flags_fault_injected_nodes() {
        let s = report().to_string();
        assert!(s.contains("D: freeze (fault-injected)"));
        assert!(s.contains("healthy nodes frozen: B"));
        assert!(s.contains("cluster up at slot 17"));
    }
}
