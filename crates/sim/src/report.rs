//! Run reports.

use crate::log::SlotLog;
use crate::metrics::TimeSeries;
use serde::{Deserialize, Serialize};
use std::fmt;
use tta_protocol::{ProtocolState, RestartPolicy};
use tta_types::NodeId;

/// One freeze-and-(maybe)-recovery cycle of one node: when it froze,
/// when the host restarted it, and when it reached active or passive
/// again — `None` for steps that never happened.
///
/// Episodes are only recorded for freezes *after* the node first left
/// `freeze`; the initial cold-start dwell is not a recovery episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryEpisode {
    /// The node that froze.
    pub node: NodeId,
    /// Slot at which the node entered `freeze`.
    pub freeze_slot: u64,
    /// Slot at which the host restarted it, if it did.
    pub restart_slot: Option<u64>,
    /// Slot at which the node was integrated again, if it ever was.
    pub reintegration_slot: Option<u64>,
}

impl RecoveryEpisode {
    /// Whether the node came all the way back.
    #[must_use]
    pub fn recovered(&self) -> bool {
        self.reintegration_slot.is_some()
    }

    /// Freeze-to-reintegration latency in slots, if the node recovered.
    #[must_use]
    pub fn time_to_reintegration(&self) -> Option<u64> {
        self.reintegration_slot.map(|r| r - self.freeze_slot)
    }
}

/// Where the cluster settled by the end of the run, counting only
/// healthy (non-fault-injected) nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SteadyState {
    /// Every healthy node ended the run integrated.
    FullyUp,
    /// Some but not all healthy nodes ended the run integrated.
    Degraded {
        /// Healthy nodes integrated at the end.
        integrated: usize,
    },
    /// No healthy node ended the run integrated.
    Down,
}

impl fmt::Display for SteadyState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SteadyState::FullyUp => f.write_str("fully up"),
            SteadyState::Degraded { integrated } => {
                write!(f, "degraded ({integrated} integrated)")
            }
            SteadyState::Down => f.write_str("down"),
        }
    }
}

/// Everything a finished simulation reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimReport {
    slots_run: u64,
    final_states: Vec<ProtocolState>,
    healthy_frozen: Vec<NodeId>,
    faulty_nodes: Vec<NodeId>,
    startup_slot: Option<u64>,
    restart_policy: RestartPolicy,
    recovery: Vec<RecoveryEpisode>,
    log: SlotLog,
}

impl SimReport {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        slots_run: u64,
        final_states: Vec<ProtocolState>,
        healthy_frozen: Vec<NodeId>,
        faulty_nodes: Vec<NodeId>,
        startup_slot: Option<u64>,
        restart_policy: RestartPolicy,
        recovery: Vec<RecoveryEpisode>,
        log: SlotLog,
    ) -> Self {
        SimReport {
            slots_run,
            final_states,
            healthy_frozen,
            faulty_nodes,
            startup_slot,
            restart_policy,
            recovery,
            log,
        }
    }

    /// Number of slots executed.
    #[must_use]
    pub fn slots_run(&self) -> u64 {
        self.slots_run
    }

    /// Final protocol state of every node.
    #[must_use]
    pub fn final_states(&self) -> &[ProtocolState] {
        &self.final_states
    }

    /// Healthy (non-fault-injected) nodes that ever froze — the paper's
    /// propagation criterion.
    #[must_use]
    pub fn healthy_frozen(&self) -> &[NodeId] {
        &self.healthy_frozen
    }

    /// Nodes the fault plan targeted.
    #[must_use]
    pub fn faulty_nodes(&self) -> &[NodeId] {
        &self.faulty_nodes
    }

    /// First absolute slot at which every healthy node was integrated
    /// (active or passive), if that ever happened.
    #[must_use]
    pub fn startup_slot(&self) -> Option<u64> {
        self.startup_slot
    }

    /// Whether the cluster ever fully started (all healthy nodes
    /// integrated).
    #[must_use]
    pub fn cluster_started(&self) -> bool {
        self.startup_slot.is_some()
    }

    /// Healthy nodes that ended the run integrated.
    #[must_use]
    pub fn integrated_at_end(&self) -> usize {
        self.final_states
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                s.is_integrated() && !self.faulty_nodes.contains(&NodeId::new(*i as u8))
            })
            .count()
    }

    /// The restart policy the run's hosts followed.
    #[must_use]
    pub fn restart_policy(&self) -> RestartPolicy {
        self.restart_policy
    }

    /// Every freeze-and-recovery episode, in freeze order (all nodes,
    /// healthy and fault-injected).
    #[must_use]
    pub fn recovery(&self) -> &[RecoveryEpisode] {
        &self.recovery
    }

    /// Worst freeze-to-reintegration latency across recovered episodes,
    /// or `None` if nothing recovered during the run.
    #[must_use]
    pub fn time_to_reintegration(&self) -> Option<u64> {
        self.recovery
            .iter()
            .filter_map(RecoveryEpisode::time_to_reintegration)
            .max()
    }

    /// Fraction of slots during which fewer than `quorum` nodes were
    /// integrated — the run's unavailability at that service level.
    #[must_use]
    pub fn unavailability(&self, quorum: u32) -> f64 {
        if self.slots_run == 0 {
            return 0.0;
        }
        let series = TimeSeries::from_log(&self.log, self.final_states.len(), self.slots_run)
            .expect("a run's own log stays within its horizon");
        let degraded = series.integrated().iter().filter(|n| **n < quorum).count();
        degraded as f64 / self.slots_run as f64
    }

    /// Where the healthy part of the cluster settled by the end of the
    /// run.
    #[must_use]
    pub fn steady_state(&self) -> SteadyState {
        let healthy = self.final_states.len() - self.faulty_nodes.len();
        let integrated = self.integrated_at_end();
        if integrated == 0 {
            SteadyState::Down
        } else if integrated == healthy {
            SteadyState::FullyUp
        } else {
            SteadyState::Degraded { integrated }
        }
    }

    /// Healthy nodes frozen at the end of the run that the restart
    /// policy will never bring back: they froze after having started,
    /// and the policy is out of restarts. Under
    /// [`RestartPolicy::Never`] this is every healthy node with an open
    /// episode; under a watchdog it is always empty.
    #[must_use]
    pub fn permanently_lost(&self) -> Vec<NodeId> {
        (0..self.final_states.len())
            .filter_map(|i| {
                let node = NodeId::new(i as u8);
                if self.final_states[i] != ProtocolState::Freeze
                    || self.faulty_nodes.contains(&node)
                {
                    return None;
                }
                let mut froze_after_start = false;
                let mut restarts_used = 0u32;
                for e in self.recovery.iter().filter(|e| e.node == node) {
                    froze_after_start = true;
                    if e.restart_slot.is_some() {
                        restarts_used += 1;
                    }
                }
                (froze_after_start && self.restart_policy.exhausted(restarts_used)).then_some(node)
            })
            .collect()
    }

    /// The run's event log.
    #[must_use]
    pub fn log(&self) -> &SlotLog {
        &self.log
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "simulation of {} slots:", self.slots_run)?;
        for (i, state) in self.final_states.iter().enumerate() {
            let node = NodeId::new(i as u8);
            let tag = if self.faulty_nodes.contains(&node) {
                " (fault-injected)"
            } else {
                ""
            };
            writeln!(f, "  {node}: {state}{tag}")?;
        }
        match self.startup_slot {
            Some(slot) => writeln!(f, "  cluster up at slot {slot}")?,
            None => writeln!(f, "  cluster never fully started")?,
        }
        if !self.healthy_frozen.is_empty() {
            write!(f, "  healthy nodes frozen:")?;
            for n in &self.healthy_frozen {
                write!(f, " {n}")?;
            }
            writeln!(f)?;
        }
        if !self.recovery.is_empty() {
            writeln!(f, "  recovery (restart policy {}):", self.restart_policy)?;
            for e in &self.recovery {
                write!(f, "    {} froze at slot {}", e.node, e.freeze_slot)?;
                match (e.restart_slot, e.reintegration_slot) {
                    (None, _) => writeln!(f, ", never restarted")?,
                    (Some(r), None) => writeln!(f, ", restarted at {r}, never reintegrated")?,
                    (Some(r), Some(b)) => {
                        writeln!(f, ", restarted at {r}, back at {b}")?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        report_with(RestartPolicy::Never, Vec::new())
    }

    fn report_with(policy: RestartPolicy, recovery: Vec<RecoveryEpisode>) -> SimReport {
        SimReport::new(
            100,
            vec![
                ProtocolState::Active,
                ProtocolState::Freeze,
                ProtocolState::Active,
                ProtocolState::Freeze,
            ],
            vec![NodeId::new(1)],
            vec![NodeId::new(3)],
            Some(17),
            policy,
            recovery,
            SlotLog::new(),
        )
    }

    fn episode(
        node: u8,
        freeze_slot: u64,
        restart_slot: Option<u64>,
        reintegration_slot: Option<u64>,
    ) -> RecoveryEpisode {
        RecoveryEpisode {
            node: NodeId::new(node),
            freeze_slot,
            restart_slot,
            reintegration_slot,
        }
    }

    #[test]
    fn accessors_expose_outcome() {
        let r = report();
        assert_eq!(r.slots_run(), 100);
        assert!(r.cluster_started());
        assert_eq!(r.startup_slot(), Some(17));
        assert_eq!(r.healthy_frozen(), [NodeId::new(1)]);
    }

    #[test]
    fn integrated_at_end_excludes_faulty_nodes() {
        // Nodes 0 and 2 are active; node 3 is faulty and frozen.
        assert_eq!(report().integrated_at_end(), 2);
    }

    #[test]
    fn display_flags_fault_injected_nodes() {
        let s = report().to_string();
        assert!(s.contains("D: freeze (fault-injected)"));
        assert!(s.contains("healthy nodes frozen: B"));
        assert!(s.contains("cluster up at slot 17"));
        assert!(
            !s.contains("recovery"),
            "no recovery block without episodes"
        );
    }

    #[test]
    fn time_to_reintegration_is_the_worst_recovered_latency() {
        let r = report_with(
            RestartPolicy::Immediate,
            vec![
                episode(0, 30, Some(31), Some(40)),
                episode(2, 50, Some(51), Some(75)),
                episode(1, 60, Some(61), None),
            ],
        );
        assert_eq!(r.time_to_reintegration(), Some(25));
        assert_eq!(report().time_to_reintegration(), None);
    }

    #[test]
    fn steady_state_counts_only_healthy_nodes() {
        // Node D is faulty, B is frozen: 2 of 3 healthy nodes are up.
        assert_eq!(
            report().steady_state(),
            SteadyState::Degraded { integrated: 2 }
        );
        let all_up = SimReport::new(
            10,
            vec![ProtocolState::Active; 3],
            Vec::new(),
            Vec::new(),
            Some(5),
            RestartPolicy::Never,
            Vec::new(),
            SlotLog::new(),
        );
        assert_eq!(all_up.steady_state(), SteadyState::FullyUp);
        let down = SimReport::new(
            10,
            vec![ProtocolState::Freeze; 3],
            Vec::new(),
            Vec::new(),
            None,
            RestartPolicy::Never,
            Vec::new(),
            SlotLog::new(),
        );
        assert_eq!(down.steady_state(), SteadyState::Down);
    }

    #[test]
    fn permanently_lost_requires_an_exhausted_policy() {
        // B froze after starting and the policy never restarts: lost.
        let never = report_with(RestartPolicy::Never, vec![episode(1, 40, None, None)]);
        assert_eq!(never.permanently_lost(), [NodeId::new(1)]);
        // A watchdog never gives up, so nothing is ever lost for good.
        let watchdog = report_with(
            RestartPolicy::Watchdog { silence_slots: 8 },
            vec![episode(1, 40, Some(48), None)],
        );
        assert!(watchdog.permanently_lost().is_empty());
        // Bounded retry is exhausted once every episode spent a restart.
        let spent = report_with(
            RestartPolicy::BoundedRetry {
                max_restarts: 2,
                backoff_slots: 4,
            },
            vec![
                episode(1, 40, Some(44), Some(50)),
                episode(1, 60, Some(68), None),
            ],
        );
        assert_eq!(spent.permanently_lost(), [NodeId::new(1)]);
        // With a restart still in the budget the node is not lost yet.
        let budget_left = report_with(
            RestartPolicy::BoundedRetry {
                max_restarts: 2,
                backoff_slots: 4,
            },
            vec![episode(1, 40, Some(44), None)],
        );
        assert!(budget_left.permanently_lost().is_empty());
        // The faulty node D never counts, and neither does a node whose
        // only freeze was cold start (no episode at all).
        assert!(report().permanently_lost().is_empty());
    }

    #[test]
    fn display_narrates_recovery_episodes() {
        let s = report_with(
            RestartPolicy::Watchdog { silence_slots: 8 },
            vec![
                episode(1, 40, Some(48), Some(60)),
                episode(1, 70, Some(78), None),
            ],
        )
        .to_string();
        assert!(s.contains("recovery (restart policy watchdog(8)):"));
        assert!(s.contains("B froze at slot 40, restarted at 48, back at 60"));
        assert!(s.contains("B froze at slot 70, restarted at 78, never reintegrated"));
    }
}
