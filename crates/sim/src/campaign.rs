//! Monte-Carlo fault-injection campaigns.
//!
//! The software-implemented fault injection (SWIFI) substitute for the
//! heavy-ion experiments behind the paper's motivation: run many
//! randomized trials of one fault scenario against one topology/authority
//! combination and classify the outcomes. `tta-bench`'s
//! `exp_fault_injection` uses this to regenerate the bus-vs-star
//! containment comparison (experiment E9).

use crate::inject::{CouplerFaultEvent, FaultPersistence, FaultPlan, NodeFault, NodeFaultKind};
use crate::report::{SimReport, SteadyState};
use crate::sim::SimBuilder;
use crate::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;
use tta_guardian::sos::SosDomain;
use tta_guardian::{CouplerAuthority, CouplerFaultMode};
use tta_protocol::RestartPolicy;
use tta_types::NodeId;

/// The fault scenario a campaign injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// No fault at all (golden runs; calibrates the harness).
    FaultFree,
    /// One node transmits slightly-off-specification frames.
    SosSender,
    /// One node masquerades in cold-start frames during startup.
    MasqueradeColdStart,
    /// One node transmits frames with an invalid C-state.
    InvalidCState,
    /// One node babbles noise continuously.
    Babbling,
    /// One channel's coupler replays buffered frames out of slot
    /// (possible only for a full-shifting star coupler).
    CouplerReplay,
    /// One channel's coupler drops all traffic.
    CouplerSilence,
    /// One channel's coupler emits noise.
    CouplerNoise,
}

impl Scenario {
    /// Every scenario, in report order.
    #[must_use]
    pub fn all() -> [Scenario; 8] {
        [
            Scenario::FaultFree,
            Scenario::SosSender,
            Scenario::MasqueradeColdStart,
            Scenario::InvalidCState,
            Scenario::Babbling,
            Scenario::CouplerReplay,
            Scenario::CouplerSilence,
            Scenario::CouplerNoise,
        ]
    }

    /// Whether the scenario is physically possible for the given
    /// topology/authority (a coupler without full-frame buffering cannot
    /// replay).
    #[must_use]
    pub fn applicable(self, topology: Topology, authority: CouplerAuthority) -> bool {
        match self {
            Scenario::CouplerReplay => topology.is_central() && authority.can_buffer_full_frames(),
            _ => true,
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scenario::FaultFree => "fault-free",
            Scenario::SosSender => "SOS sender",
            Scenario::MasqueradeColdStart => "masquerading cold start",
            Scenario::InvalidCState => "invalid C-state",
            Scenario::Babbling => "babbling idiot",
            Scenario::CouplerReplay => "coupler replay (out-of-slot)",
            Scenario::CouplerSilence => "coupler silence",
            Scenario::CouplerNoise => "coupler noise",
        })
    }
}

/// Classification of one trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// The fault did not affect any healthy node: the cluster started and
    /// nobody healthy froze.
    Contained,
    /// At least one healthy node froze — the fault propagated.
    HealthyNodeFrozen,
    /// No healthy node froze, but the cluster never fully started.
    StartupFailed,
}

impl Outcome {
    /// Classifies a finished run by the binary propagated/contained
    /// question of experiment E9.
    #[must_use]
    pub fn classify(report: &SimReport) -> Outcome {
        if !report.healthy_frozen().is_empty() {
            Outcome::HealthyNodeFrozen
        } else if !report.cluster_started() {
            Outcome::StartupFailed
        } else {
            Outcome::Contained
        }
    }
}

/// Classification of one trial in a recovery-aware campaign: where the
/// binary propagated/contained verdict of [`Outcome`] stops, this asks
/// what the cluster looked like *after* the fault and the restart policy
/// had fought it out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecoveryOutcome {
    /// No healthy node ever froze and the cluster ended fully up.
    Contained,
    /// Healthy nodes froze but every one of them was integrated again by
    /// the end of the run.
    Recovered,
    /// The cluster ended short of full strength, but no healthy node is
    /// beyond saving (the policy could still restart everyone frozen).
    DegradedStable,
    /// At least one healthy node is frozen with the restart policy out
    /// of restarts — lost for the remaining life of the system.
    PermanentLoss,
}

impl RecoveryOutcome {
    /// Classifies a finished run.
    #[must_use]
    pub fn classify(report: &SimReport) -> RecoveryOutcome {
        if !report.permanently_lost().is_empty() {
            return RecoveryOutcome::PermanentLoss;
        }
        let fully_up = report.steady_state() == SteadyState::FullyUp;
        if report.healthy_frozen().is_empty() {
            if report.cluster_started() && fully_up {
                RecoveryOutcome::Contained
            } else {
                // Never reached (or held) full strength without anyone
                // freezing — e.g. startup starved past the horizon.
                RecoveryOutcome::DegradedStable
            }
        } else if fully_up {
            RecoveryOutcome::Recovered
        } else {
            RecoveryOutcome::DegradedStable
        }
    }
}

impl fmt::Display for RecoveryOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecoveryOutcome::Contained => "contained",
            RecoveryOutcome::Recovered => "recovered",
            RecoveryOutcome::DegradedStable => "degraded-stable",
            RecoveryOutcome::PermanentLoss => "permanent-loss",
        })
    }
}

/// Aggregated results of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Scenario injected.
    pub scenario: Scenario,
    /// Topology under test.
    pub topology: Topology,
    /// Central-guardian authority (star) / irrelevant for bus.
    pub authority: CouplerAuthority,
    /// Trials actually run (0 if the scenario is inapplicable).
    pub trials: u32,
    /// Trials classified [`Outcome::Contained`].
    pub contained: u32,
    /// Trials classified [`Outcome::HealthyNodeFrozen`].
    pub healthy_frozen: u32,
    /// Trials classified [`Outcome::StartupFailed`].
    pub startup_failed: u32,
}

impl CampaignReport {
    /// Fraction of trials in which the fault propagated to a healthy node
    /// or prevented startup.
    #[must_use]
    pub fn propagation_rate(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        f64::from(self.healthy_frozen + self.startup_failed) / f64::from(self.trials)
    }

    /// Whether the scenario could be injected at all.
    #[must_use]
    pub fn applicable(&self) -> bool {
        self.trials > 0
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.applicable() {
            return write!(f, "{} on {}: not applicable", self.scenario, self.topology);
        }
        write!(
            f,
            "{} on {} ({}): {}/{} contained, {} froze healthy nodes, {} failed startup",
            self.scenario,
            self.topology,
            self.authority,
            self.contained,
            self.trials,
            self.healthy_frozen,
            self.startup_failed
        )
    }
}

/// Aggregated results of one recovery-aware campaign (experiment E10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Scenario injected.
    pub scenario: Scenario,
    /// Topology under test.
    pub topology: Topology,
    /// Central-guardian authority (star) / irrelevant for bus.
    pub authority: CouplerAuthority,
    /// The hosts' restart policy.
    pub policy: RestartPolicy,
    /// Trials actually run (0 if the scenario is inapplicable).
    pub trials: u32,
    /// Trials classified [`RecoveryOutcome::Contained`].
    pub contained: u32,
    /// Trials classified [`RecoveryOutcome::Recovered`].
    pub recovered: u32,
    /// Trials classified [`RecoveryOutcome::DegradedStable`].
    pub degraded: u32,
    /// Trials classified [`RecoveryOutcome::PermanentLoss`].
    pub permanent_loss: u32,
    /// Mean fraction of slots with fewer than all healthy nodes
    /// integrated (includes the startup transient of every trial).
    pub mean_unavailability: f64,
    /// Mean worst-case freeze-to-reintegration latency in slots, over
    /// the trials in which something recovered.
    pub mean_time_to_reintegration: Option<f64>,
}

impl RecoveryReport {
    /// Whether the scenario could be injected at all.
    #[must_use]
    pub fn applicable(&self) -> bool {
        self.trials > 0
    }

    /// Mean fraction of slots at full healthy strength.
    #[must_use]
    pub fn availability(&self) -> f64 {
        1.0 - self.mean_unavailability
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.applicable() {
            return write!(f, "{} on {}: not applicable", self.scenario, self.topology);
        }
        write!(
            f,
            "{} on {} ({}, {}): {} contained, {} recovered, {} degraded, {} lost; \
             availability {:.3}",
            self.scenario,
            self.topology,
            self.authority,
            self.policy,
            self.contained,
            self.recovered,
            self.degraded,
            self.permanent_loss,
            self.availability(),
        )?;
        if let Some(ttr) = self.mean_time_to_reintegration {
            write!(f, ", mean TTR {ttr:.1} slots")?;
        }
        Ok(())
    }
}

/// The full classification of one campaign trial: both the E9
/// containment verdict and the E10 recovery verdict plus the metrics the
/// recovery aggregate needs. Computing everything per trial (instead of
/// inside the aggregate loop) is what lets the campaign daemon cache,
/// journal and stream trials individually while still folding the exact
/// reports the inline campaigns produce.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialResult {
    /// Trial index within the campaign (determines the derived seed).
    pub index: u32,
    /// The derived per-trial RNG seed the simulation ran under.
    pub seed: u64,
    /// E9 containment classification.
    pub outcome: Outcome,
    /// E10 recovery classification.
    pub recovery: RecoveryOutcome,
    /// Fraction of slots with fewer than quorum healthy nodes
    /// integrated (quorum = healthy-node count of this trial).
    pub unavailability: f64,
    /// Worst-case freeze-to-reintegration latency, if anything
    /// reintegrated.
    pub time_to_reintegration: Option<u64>,
}

impl TrialResult {
    /// Classifies one finished simulation run.
    #[must_use]
    pub fn from_report(index: u32, seed: u64, nodes: usize, report: &SimReport) -> TrialResult {
        let quorum = (nodes - report.faulty_nodes().len()) as u32;
        TrialResult {
            index,
            seed,
            outcome: Outcome::classify(report),
            recovery: RecoveryOutcome::classify(report),
            unavailability: report.unavailability(quorum),
            time_to_reintegration: report.time_to_reintegration(),
        }
    }
}

/// Order-independent totals of a set of [`TrialResult`]s — the one fold
/// both [`Campaign::run`] and [`Campaign::run_recovery`] (and the
/// campaign daemon, re-folding journaled or cached trials) share, so
/// every path produces bit-identical reports.
///
/// The floating-point sums run in the iteration order of the input;
/// callers that need bit-identical aggregates must fold in trial-index
/// order, which every campaign path does.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrialAggregate {
    /// Trials folded.
    pub trials: u32,
    /// [`Outcome::Contained`] count.
    pub contained: u32,
    /// [`Outcome::HealthyNodeFrozen`] count.
    pub healthy_frozen: u32,
    /// [`Outcome::StartupFailed`] count.
    pub startup_failed: u32,
    /// [`RecoveryOutcome::Contained`] count.
    pub recovery_contained: u32,
    /// [`RecoveryOutcome::Recovered`] count.
    pub recovered: u32,
    /// [`RecoveryOutcome::DegradedStable`] count.
    pub degraded: u32,
    /// [`RecoveryOutcome::PermanentLoss`] count.
    pub permanent_loss: u32,
    /// Mean per-trial unavailability (0.0 when no trials ran).
    pub mean_unavailability: f64,
    /// Mean worst-case TTR over the trials that reintegrated.
    pub mean_time_to_reintegration: Option<f64>,
}

impl TrialAggregate {
    /// Folds trial results **in the order given** (callers pass
    /// trial-index order for bit-identical aggregates).
    pub fn fold<'a>(results: impl IntoIterator<Item = &'a TrialResult>) -> TrialAggregate {
        let mut agg = TrialAggregate::default();
        let mut unavailability_sum = 0.0;
        let mut ttr_sum = 0u64;
        let mut ttr_count = 0u32;
        for trial in results {
            agg.trials += 1;
            match trial.outcome {
                Outcome::Contained => agg.contained += 1,
                Outcome::HealthyNodeFrozen => agg.healthy_frozen += 1,
                Outcome::StartupFailed => agg.startup_failed += 1,
            }
            match trial.recovery {
                RecoveryOutcome::Contained => agg.recovery_contained += 1,
                RecoveryOutcome::Recovered => agg.recovered += 1,
                RecoveryOutcome::DegradedStable => agg.degraded += 1,
                RecoveryOutcome::PermanentLoss => agg.permanent_loss += 1,
            }
            unavailability_sum += trial.unavailability;
            if let Some(t) = trial.time_to_reintegration {
                ttr_sum += t;
                ttr_count += 1;
            }
        }
        if agg.trials > 0 {
            agg.mean_unavailability = unavailability_sum / f64::from(agg.trials);
        }
        if ttr_count > 0 {
            agg.mean_time_to_reintegration = Some(ttr_sum as f64 / f64::from(ttr_count));
        }
        agg
    }
}

impl CampaignReport {
    /// Builds the E9 report for a scenario/configuration from folded
    /// trial results.
    #[must_use]
    pub fn from_aggregate(
        scenario: Scenario,
        topology: Topology,
        authority: CouplerAuthority,
        agg: &TrialAggregate,
    ) -> CampaignReport {
        CampaignReport {
            scenario,
            topology,
            authority,
            trials: agg.trials,
            contained: agg.contained,
            healthy_frozen: agg.healthy_frozen,
            startup_failed: agg.startup_failed,
        }
    }
}

impl RecoveryReport {
    /// Builds the E10 report for a scenario/configuration from folded
    /// trial results.
    #[must_use]
    pub fn from_aggregate(
        scenario: Scenario,
        topology: Topology,
        authority: CouplerAuthority,
        policy: RestartPolicy,
        agg: &TrialAggregate,
    ) -> RecoveryReport {
        RecoveryReport {
            scenario,
            topology,
            authority,
            policy,
            trials: agg.trials,
            contained: agg.recovery_contained,
            recovered: agg.recovered,
            degraded: agg.degraded,
            permanent_loss: agg.permanent_loss,
            mean_unavailability: agg.mean_unavailability,
            mean_time_to_reintegration: agg.mean_time_to_reintegration,
        }
    }
}

/// A randomized fault-injection campaign.
#[derive(Debug, Clone, Copy)]
pub struct Campaign {
    nodes: usize,
    topology: Topology,
    authority: CouplerAuthority,
    trials: u32,
    slots: u64,
    seed: u64,
    threads: usize,
    restart_policy: RestartPolicy,
    fault_duration: Option<u64>,
}

/// SplitMix64 finalizer: decorrelates the per-trial seeds derived from
/// `(campaign seed, scenario, trial index)`.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Campaign {
    /// Creates a campaign over `nodes` nodes with the given topology and
    /// (for star) guardian authority.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is outside `2..=16`.
    #[must_use]
    pub fn new(nodes: usize, topology: Topology, authority: CouplerAuthority) -> Self {
        assert!((2..=16).contains(&nodes), "campaigns support 2..=16 nodes");
        Campaign {
            nodes,
            topology,
            authority,
            trials: 50,
            slots: 400,
            seed: 0xDB5_2004,
            // detlint: allow(DL03) reason=default worker count; picks a schedule only, exploration results are identical at any thread count
            threads: std::thread::available_parallelism().map_or(1, usize::from),
            restart_policy: RestartPolicy::Never,
            fault_duration: None,
        }
    }

    /// Sets the trial count.
    #[must_use]
    pub fn trials(mut self, trials: u32) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the per-trial horizon in slots.
    #[must_use]
    pub fn slots(mut self, slots: u64) -> Self {
        self.slots = slots;
        self
    }

    /// Sets the RNG seed (campaigns are reproducible).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count for [`Self::run`] (default: the
    /// machine's available parallelism). Reports are identical for every
    /// thread count: each trial draws from its own derived RNG seed, so
    /// trial `i` is the same simulation no matter which worker runs it.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "at least one worker thread is required");
        self.threads = threads;
        self
    }

    /// Sets the hosts' restart policy for every trial (default
    /// [`RestartPolicy::Never`], which leaves the classic [`Self::run`]
    /// campaign untouched).
    #[must_use]
    pub fn restart_policy(mut self, policy: RestartPolicy) -> Self {
        self.restart_policy = policy;
        self
    }

    /// Limits every injected fault to `duration` slots after its onset,
    /// making it transient. By default faults persist to the end of the
    /// run — the seed behavior, under which recovery is impossible while
    /// the fault holds the channel.
    #[must_use]
    pub fn fault_duration(mut self, duration: u64) -> Self {
        self.fault_duration = Some(duration);
        self
    }

    /// Trials this campaign is configured to run per scenario.
    #[must_use]
    pub fn trial_count(&self) -> u32 {
        self.trials
    }

    /// The RNG seed of one trial, independent of every other trial.
    /// Public so external harnesses (the campaign daemon's
    /// content-addressed result cache) can key per-trial work on it.
    #[must_use]
    pub fn trial_seed(&self, scenario: Scenario, index: u32) -> u64 {
        mix(self.seed ^ mix((scenario as u64) << 32 | u64::from(index)))
    }

    /// Whether `scenario` can be injected under this campaign's
    /// topology/authority at all.
    #[must_use]
    pub fn applicable(&self, scenario: Scenario) -> bool {
        scenario.applicable(self.topology, self.authority)
    }

    /// Runs exactly one trial of `scenario` and classifies it fully.
    /// Trial `index` is the same simulation no matter who runs it or in
    /// what order — this is the unit of work the campaign daemon shards,
    /// journals and caches.
    #[must_use]
    pub fn run_trial(&self, scenario: Scenario, index: u32) -> TrialResult {
        let seed = self.trial_seed(scenario, index);
        let mut rng = StdRng::seed_from_u64(seed);
        let report = self.trial(scenario, &mut rng);
        TrialResult::from_report(index, seed, self.nodes, &report)
    }

    /// Runs trials `range` of `scenario` sequentially on the calling
    /// thread, invoking `progress` after each finished trial and
    /// stopping early (returning what was computed so far) once `cancel`
    /// is set. The progress/cancellation surface long-running services
    /// need without giving up per-trial determinism.
    pub fn run_trials_observed(
        &self,
        scenario: Scenario,
        range: std::ops::Range<u32>,
        progress: &mut dyn FnMut(&TrialResult),
        // Relaxed latch: polled once per trial; a trial-late stop is
        // within the documented cancellation granularity.
        cancel: &std::sync::atomic::AtomicBool,
    ) -> Vec<TrialResult> {
        let mut results = Vec::with_capacity(range.len());
        if !self.applicable(scenario) {
            return results;
        }
        for index in range {
            if cancel.load(std::sync::atomic::Ordering::Relaxed) {
                break;
            }
            let trial = self.run_trial(scenario, index);
            progress(&trial);
            results.push(trial);
        }
        results
    }

    /// Runs all configured trials of one scenario across the worker
    /// threads, returning the per-trial results in trial-index order
    /// (empty if the scenario is inapplicable).
    #[must_use]
    pub fn run_trials(&self, scenario: Scenario) -> Vec<TrialResult> {
        if !self.applicable(scenario) {
            return Vec::new();
        }
        self.dispatch(|range: std::ops::Range<u32>| -> Vec<TrialResult> {
            range.map(|index| self.run_trial(scenario, index)).collect()
        })
    }

    /// Runs one scenario: `trials` independent randomized simulations,
    /// distributed across the configured worker threads.
    #[must_use]
    pub fn run(&self, scenario: Scenario) -> CampaignReport {
        let agg = TrialAggregate::fold(&self.run_trials(scenario));
        CampaignReport::from_aggregate(scenario, self.topology, self.authority, &agg)
    }

    /// Runs every applicable scenario.
    #[must_use]
    pub fn run_all(&self) -> Vec<CampaignReport> {
        Scenario::all().into_iter().map(|s| self.run(s)).collect()
    }

    /// Runs one scenario with recovery-aware classification: the same
    /// derived-seed trials as [`Self::run`], but each trial is judged by
    /// [`RecoveryOutcome`] and contributes its unavailability and
    /// time-to-reintegration to the aggregate (experiment E10).
    #[must_use]
    pub fn run_recovery(&self, scenario: Scenario) -> RecoveryReport {
        // The fold runs in trial-index order so results are identical
        // for every thread count.
        let agg = TrialAggregate::fold(&self.run_trials(scenario));
        RecoveryReport::from_aggregate(
            scenario,
            self.topology,
            self.authority,
            self.restart_policy,
            &agg,
        )
    }

    /// Runs `run_range` over all trial indices, across the configured
    /// worker threads, preserving trial order in the result.
    fn dispatch<T: Send>(
        &self,
        run_range: impl Fn(std::ops::Range<u32>) -> Vec<T> + Sync,
    ) -> Vec<T> {
        let threads = self.threads.min(self.trials.max(1) as usize);
        if threads <= 1 {
            return run_range(0..self.trials);
        }
        let chunk = self.trials.div_ceil(threads as u32);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.trials)
                .step_by(chunk as usize)
                .map(|start| {
                    let range = start..(start + chunk).min(self.trials);
                    scope.spawn(|| run_range(range))
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("campaign worker panicked"))
                .collect()
        })
    }

    fn trial(&self, scenario: Scenario, rng: &mut StdRng) -> SimReport {
        let node = NodeId::new(rng.gen_range(0..self.nodes) as u8);
        let onset = rng.gen_range(0..(3 * self.nodes as u64));
        let until = |from: u64| self.fault_duration.map_or(self.slots, |d| from + d);
        let wrong_slot = {
            let own = u16::from(node.index()) + 1;
            let mut claimed = rng.gen_range(1..=self.nodes as u16);
            if claimed == own {
                claimed = claimed % self.nodes as u16 + 1;
            }
            claimed
        };
        let plan = match scenario {
            Scenario::FaultFree => FaultPlan::none(),
            Scenario::SosSender => FaultPlan::none().with_node_fault(NodeFault {
                node,
                kind: NodeFaultKind::Sos {
                    domain: if rng.gen_bool(0.5) {
                        SosDomain::Time
                    } else {
                        SosDomain::Value
                    },
                    magnitude: rng.gen_range(0.42..0.58),
                },
                // SOS senders misbehave after startup, as in the
                // motivating experiments.
                from_slot: 10 * self.nodes as u64 + onset,
                to_slot: until(10 * self.nodes as u64 + onset),
                persistence: FaultPersistence::Transient,
            }),
            Scenario::MasqueradeColdStart => FaultPlan::none().with_node_fault(NodeFault {
                node,
                kind: NodeFaultKind::MasqueradeColdStart {
                    claimed_slot: wrong_slot,
                },
                from_slot: onset,
                to_slot: until(onset),
                persistence: FaultPersistence::Transient,
            }),
            Scenario::InvalidCState => FaultPlan::none().with_node_fault(NodeFault {
                node,
                kind: NodeFaultKind::InvalidCState {
                    claimed_slot: wrong_slot,
                },
                from_slot: onset,
                to_slot: until(onset),
                persistence: FaultPersistence::Transient,
            }),
            Scenario::Babbling => FaultPlan::none().with_node_fault(NodeFault {
                node,
                kind: NodeFaultKind::Babbling,
                from_slot: onset,
                to_slot: until(onset),
                persistence: FaultPersistence::Transient,
            }),
            Scenario::CouplerReplay => FaultPlan::none().with_coupler_fault(CouplerFaultEvent {
                channel: rng.gen_range(0..2),
                mode: CouplerFaultMode::OutOfSlot,
                from_slot: onset + 2,
                to_slot: until(onset + 2),
                persistence: FaultPersistence::Transient,
            }),
            Scenario::CouplerSilence => FaultPlan::none().with_coupler_fault(CouplerFaultEvent {
                channel: rng.gen_range(0..2),
                mode: CouplerFaultMode::Silence,
                from_slot: onset,
                to_slot: until(onset),
                persistence: FaultPersistence::Transient,
            }),
            Scenario::CouplerNoise => FaultPlan::none().with_coupler_fault(CouplerFaultEvent {
                channel: rng.gen_range(0..2),
                mode: CouplerFaultMode::BadFrame,
                from_slot: onset,
                to_slot: until(onset),
                persistence: FaultPersistence::Transient,
            }),
        };
        let delays = (0..self.nodes)
            .map(|_| rng.gen_range(0..4 * self.nodes as u32))
            .collect();
        SimBuilder::new(self.nodes)
            .topology(self.topology)
            .authority(self.authority)
            .slots(self.slots)
            .start_delays(delays)
            .restart_policy(self.restart_policy)
            .plan(plan)
            .build()
            .run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campaign(topology: Topology, authority: CouplerAuthority) -> Campaign {
        Campaign::new(4, topology, authority).trials(12).slots(300)
    }

    #[test]
    fn fault_free_runs_are_always_contained() {
        for topology in [Topology::Bus, Topology::Star] {
            let report =
                campaign(topology, CouplerAuthority::SmallShifting).run(Scenario::FaultFree);
            assert_eq!(report.contained, report.trials, "{report}");
        }
    }

    #[test]
    fn replay_is_inapplicable_without_buffering() {
        let bus = campaign(Topology::Bus, CouplerAuthority::Passive).run(Scenario::CouplerReplay);
        assert!(!bus.applicable());
        let small =
            campaign(Topology::Star, CouplerAuthority::SmallShifting).run(Scenario::CouplerReplay);
        assert!(!small.applicable());
        let full =
            campaign(Topology::Star, CouplerAuthority::FullShifting).run(Scenario::CouplerReplay);
        assert!(full.applicable());
    }

    #[test]
    fn sos_propagates_on_bus_but_not_reshaping_star() {
        let bus = campaign(Topology::Bus, CouplerAuthority::Passive).run(Scenario::SosSender);
        let star =
            campaign(Topology::Star, CouplerAuthority::SmallShifting).run(Scenario::SosSender);
        assert!(
            bus.propagation_rate() > star.propagation_rate(),
            "bus {bus} vs star {star}"
        );
        assert_eq!(star.propagation_rate(), 0.0, "{star}");
    }

    #[test]
    fn masquerade_is_contained_by_central_blocking() {
        let star = campaign(Topology::Star, CouplerAuthority::TimeWindows)
            .run(Scenario::MasqueradeColdStart);
        assert_eq!(star.propagation_rate(), 0.0, "{star}");
    }

    #[test]
    fn campaigns_are_reproducible() {
        let a = campaign(Topology::Bus, CouplerAuthority::Passive).run(Scenario::SosSender);
        let b = campaign(Topology::Bus, CouplerAuthority::Passive).run(Scenario::SosSender);
        assert_eq!(a, b);
    }

    #[test]
    fn reports_are_identical_for_every_thread_count() {
        let base = campaign(Topology::Star, CouplerAuthority::FullShifting);
        let sequential = base.threads(1).run(Scenario::CouplerReplay);
        for threads in 2..=4 {
            let parallel = base.threads(threads).run(Scenario::CouplerReplay);
            assert_eq!(parallel, sequential, "{threads} threads");
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_is_rejected() {
        let _ = campaign(Topology::Bus, CouplerAuthority::Passive).threads(0);
    }

    #[test]
    fn run_all_covers_every_scenario() {
        let reports = campaign(Topology::Star, CouplerAuthority::FullShifting).run_all();
        assert_eq!(reports.len(), Scenario::all().len());
    }

    #[test]
    fn report_display_summarizes() {
        let report = campaign(Topology::Bus, CouplerAuthority::Passive).run(Scenario::FaultFree);
        assert!(report.to_string().contains("contained"));
    }

    #[test]
    fn recovery_campaign_is_reproducible_across_thread_counts() {
        let base = campaign(Topology::Star, CouplerAuthority::FullShifting)
            .fault_duration(60)
            .restart_policy(RestartPolicy::Watchdog { silence_slots: 8 });
        let sequential = base.threads(1).run_recovery(Scenario::CouplerReplay);
        for threads in 2..=4 {
            let parallel = base.threads(threads).run_recovery(Scenario::CouplerReplay);
            assert_eq!(parallel, sequential, "{threads} threads");
        }
    }

    #[test]
    fn transient_replay_with_watchdog_recovers() {
        let report = campaign(Topology::Star, CouplerAuthority::FullShifting)
            .fault_duration(60)
            .restart_policy(RestartPolicy::Watchdog { silence_slots: 8 })
            .run_recovery(Scenario::CouplerReplay);
        assert_eq!(report.permanent_loss, 0, "{report}");
        assert!(report.recovered > 0, "{report}");
        assert!(report.mean_time_to_reintegration.is_some(), "{report}");
    }

    #[test]
    fn transient_replay_without_restarts_admits_permanent_loss() {
        let report = campaign(Topology::Star, CouplerAuthority::FullShifting)
            .fault_duration(60)
            .run_recovery(Scenario::CouplerReplay);
        assert!(report.permanent_loss > 0, "{report}");
        assert_eq!(report.recovered, 0, "never restarts: {report}");
        assert!(report.mean_time_to_reintegration.is_none(), "{report}");
    }

    #[test]
    fn recovery_report_handles_inapplicable_scenarios() {
        let report = campaign(Topology::Bus, CouplerAuthority::Passive)
            .run_recovery(Scenario::CouplerReplay);
        assert!(!report.applicable());
        assert!(report.to_string().contains("not applicable"));
    }

    #[test]
    fn per_trial_results_refold_into_both_reports() {
        let base = campaign(Topology::Star, CouplerAuthority::FullShifting)
            .fault_duration(60)
            .restart_policy(RestartPolicy::Watchdog { silence_slots: 8 });
        let trials = base.run_trials(Scenario::CouplerReplay);
        assert_eq!(trials.len(), 12);
        // Trials arrive in index order with their derived seeds.
        for (i, trial) in trials.iter().enumerate() {
            assert_eq!(trial.index, i as u32);
            assert_eq!(
                trial.seed,
                base.trial_seed(Scenario::CouplerReplay, trial.index)
            );
        }
        let agg = TrialAggregate::fold(&trials);
        let recovery = RecoveryReport::from_aggregate(
            Scenario::CouplerReplay,
            Topology::Star,
            CouplerAuthority::FullShifting,
            RestartPolicy::Watchdog { silence_slots: 8 },
            &agg,
        );
        assert_eq!(recovery, base.run_recovery(Scenario::CouplerReplay));
        let containment = CampaignReport::from_aggregate(
            Scenario::CouplerReplay,
            Topology::Star,
            CouplerAuthority::FullShifting,
            &agg,
        );
        assert_eq!(containment, base.run(Scenario::CouplerReplay));
    }

    #[test]
    fn individual_trials_match_the_batch() {
        let base = campaign(Topology::Bus, CouplerAuthority::Passive);
        let batch = base.run_trials(Scenario::SosSender);
        for trial in &batch {
            assert_eq!(*trial, base.run_trial(Scenario::SosSender, trial.index));
        }
    }

    #[test]
    fn observed_runs_report_progress_and_honor_cancellation() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let base = campaign(Topology::Bus, CouplerAuthority::Passive);
        let cancel = AtomicBool::new(false);
        let mut seen = Vec::new();
        let results = base.run_trials_observed(
            Scenario::SosSender,
            0..5,
            &mut |t| seen.push(t.index),
            &cancel,
        );
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(results.len(), 5);

        // Cancelling after the third trial stops the sweep early.
        let cancel = AtomicBool::new(false);
        let mut count = 0;
        let results = base.run_trials_observed(
            Scenario::SosSender,
            0..5,
            &mut |_| {
                count += 1;
                if count == 3 {
                    cancel.store(true, Ordering::Relaxed);
                }
            },
            &cancel,
        );
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn inapplicable_scenarios_yield_no_trials() {
        let base = campaign(Topology::Bus, CouplerAuthority::Passive);
        assert!(!base.applicable(Scenario::CouplerReplay));
        assert!(base.run_trials(Scenario::CouplerReplay).is_empty());
    }

    #[test]
    fn fault_free_recovery_runs_are_contained() {
        let report = campaign(Topology::Star, CouplerAuthority::SmallShifting)
            .restart_policy(RestartPolicy::Immediate)
            .run_recovery(Scenario::FaultFree);
        assert_eq!(report.contained, report.trials, "{report}");
        assert!(report.availability() > 0.5, "{report}");
    }
}
