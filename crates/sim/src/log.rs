//! Per-slot event logging.

use serde::{Deserialize, Serialize};
use std::fmt;
use tta_protocol::ProtocolState;
use tta_types::NodeId;

/// A noteworthy event during one simulated slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotEvent {
    /// A node changed protocol state.
    StateChange {
        /// The node.
        node: NodeId,
        /// State before the slot.
        from: ProtocolState,
        /// State after the slot.
        to: ProtocolState,
    },
    /// A central guardian blocked a transmission.
    GuardianBlocked {
        /// The transmitting node.
        node: NodeId,
        /// Why it was blocked.
        reason: String,
    },
    /// A central guardian repaired an SOS defect.
    GuardianReshaped {
        /// The transmitting node.
        node: NodeId,
    },
    /// Receivers disagreed about a marginal frame (an SOS failure).
    SosDisagreement {
        /// The transmitting node.
        sender: NodeId,
        /// How many receivers accepted the frame.
        accepted: usize,
        /// How many receivers rejected it.
        rejected: usize,
    },
    /// A coupler replayed a buffered frame out of slot.
    CouplerReplay {
        /// Affected channel.
        channel: usize,
    },
    /// A healthy (non-fault-injected) node froze.
    HealthyNodeFroze {
        /// The victim.
        node: NodeId,
    },
    /// The host restarted a frozen controller.
    NodeRestarted {
        /// The restarted node.
        node: NodeId,
        /// How many restarts this node has had, counting this one.
        attempt: u32,
    },
    /// A restarted node reintegrated (reached active or passive again).
    NodeReintegrated {
        /// The recovered node.
        node: NodeId,
    },
}

impl fmt::Display for SlotEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlotEvent::StateChange { node, from, to } => write!(f, "{node}: {from} → {to}"),
            SlotEvent::GuardianBlocked { node, reason } => {
                write!(f, "guardian blocked {node}: {reason}")
            }
            SlotEvent::GuardianReshaped { node } => write!(f, "guardian reshaped {node}'s frame"),
            SlotEvent::SosDisagreement {
                sender,
                accepted,
                rejected,
            } => write!(
                f,
                "SOS disagreement on {sender}'s frame ({accepted} accepted, {rejected} rejected)"
            ),
            SlotEvent::CouplerReplay { channel } => {
                write!(f, "coupler replayed a frame on channel {channel}")
            }
            SlotEvent::HealthyNodeFroze { node } => write!(f, "healthy node {node} froze"),
            SlotEvent::NodeRestarted { node, attempt } => {
                write!(f, "host restarted {node} (attempt {attempt})")
            }
            SlotEvent::NodeReintegrated { node } => write!(f, "{node} reintegrated"),
        }
    }
}

/// The log of one simulation run: events grouped by absolute slot.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotLog {
    entries: Vec<(u64, SlotEvent)>,
}

impl SlotLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an event at `slot`.
    pub fn record(&mut self, slot: u64, event: SlotEvent) {
        self.entries.push((slot, event));
    }

    /// All `(slot, event)` entries in insertion order.
    #[must_use]
    pub fn entries(&self) -> &[(u64, SlotEvent)] {
        &self.entries
    }

    /// Events recorded at a specific slot.
    pub fn at(&self, slot: u64) -> impl Iterator<Item = &SlotEvent> {
        self.entries
            .iter()
            .filter(move |(s, _)| *s == slot)
            .map(|(_, e)| e)
    }

    /// Number of events matching a predicate.
    #[must_use]
    pub fn count<F: Fn(&SlotEvent) -> bool>(&self, pred: F) -> usize {
        self.entries.iter().filter(|(_, e)| pred(e)).count()
    }
}

impl fmt::Display for SlotLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (slot, event) in &self.entries {
            writeln!(f, "[{slot:>5}] {event}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let mut log = SlotLog::new();
        log.record(3, SlotEvent::CouplerReplay { channel: 0 });
        log.record(
            5,
            SlotEvent::HealthyNodeFroze {
                node: NodeId::new(1),
            },
        );
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.at(3).count(), 1);
        assert_eq!(log.at(4).count(), 0);
        assert_eq!(
            log.count(|e| matches!(e, SlotEvent::HealthyNodeFroze { .. })),
            1
        );
    }

    #[test]
    fn display_prefixes_slots() {
        let mut log = SlotLog::new();
        log.record(7, SlotEvent::CouplerReplay { channel: 1 });
        assert!(log.to_string().contains("[    7]"));
    }

    #[test]
    fn event_display_variants() {
        let e = SlotEvent::StateChange {
            node: NodeId::new(0),
            from: ProtocolState::Listen,
            to: ProtocolState::Passive,
        };
        assert_eq!(e.to_string(), "A: listen → passive");
        let e = SlotEvent::SosDisagreement {
            sender: NodeId::new(2),
            accepted: 1,
            rejected: 2,
        };
        assert!(e.to_string().contains("SOS disagreement"));
        let e = SlotEvent::NodeRestarted {
            node: NodeId::new(1),
            attempt: 2,
        };
        assert_eq!(e.to_string(), "host restarted B (attempt 2)");
        let e = SlotEvent::NodeReintegrated {
            node: NodeId::new(1),
        };
        assert_eq!(e.to_string(), "B reintegrated");
    }
}
