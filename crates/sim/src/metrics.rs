//! Time-series metrics derived from a run's event log.
//!
//! The raw [`crate::SlotLog`] records *events*; analyses and plots want
//! *series* — how many nodes were integrated at slot t, when freezes
//! clustered, how guardian interventions distributed over time. This
//! module reconstructs those series from the log plus the initial
//! conditions, without requiring the simulator to snapshot every slot.

use crate::log::{SlotEvent, SlotLog};
use serde::{Deserialize, Serialize};
use std::fmt;
use tta_protocol::ProtocolState;

/// Why a log could not be turned into per-slot series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeSeriesError {
    /// The log references a slot strictly beyond the claimed horizon —
    /// the log and the `slots` argument describe different runs.
    SlotBeyondHorizon {
        /// The offending slot in the log.
        slot: u64,
        /// The claimed run length.
        slots: u64,
    },
}

impl fmt::Display for TimeSeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeSeriesError::SlotBeyondHorizon { slot, slots } => {
                write!(f, "log references slot {slot} beyond horizon {slots}")
            }
        }
    }
}

impl std::error::Error for TimeSeriesError {}

/// Per-slot series reconstructed from a run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeSeries {
    integrated: Vec<u32>,
    frozen_events: Vec<u64>,
    guardian_interventions: Vec<u64>,
    restarts: Vec<u64>,
}

impl TimeSeries {
    /// Reconstructs the series for a run of `slots` slots over `nodes`
    /// nodes, all of which started in `freeze`.
    ///
    /// Events logged *at* the horizon slot — a restart or freeze landing
    /// exactly on the run's final boundary — still belong to the run:
    /// they are counted into the sparse event series (freezes, guardian
    /// interventions, restarts) even though no per-slot integration
    /// sample exists for them. (An earlier guard rejected `slot ==
    /// slots` too, so a restart on the boundary slot was lost along with
    /// the whole series.)
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::SlotBeyondHorizon`] if the log
    /// references a slot strictly beyond `slots` — e.g. a full-length
    /// log paired with a truncated horizon. (Earlier versions silently
    /// dropped such entries while claiming to panic; a mismatched pair
    /// is a caller bug either way, but now a recoverable one.)
    pub fn from_log(log: &SlotLog, nodes: usize, slots: u64) -> Result<Self, TimeSeriesError> {
        if let Some(&(slot, _)) = log.entries().iter().find(|(s, _)| *s > slots) {
            return Err(TimeSeriesError::SlotBeyondHorizon { slot, slots });
        }
        let mut states = vec![ProtocolState::Freeze; nodes];
        let mut integrated = Vec::with_capacity(slots as usize);
        let mut frozen_events = Vec::new();
        let mut guardian_interventions = Vec::new();
        let mut restarts = Vec::new();

        let mut cursor = 0usize;
        let entries = log.entries();
        for t in 0..slots {
            while cursor < entries.len() && entries[cursor].0 == t {
                match &entries[cursor].1 {
                    SlotEvent::StateChange { node, to, .. } => {
                        states[node.as_usize()] = *to;
                        if *to == ProtocolState::Freeze {
                            frozen_events.push(t);
                        }
                    }
                    SlotEvent::GuardianBlocked { .. } | SlotEvent::GuardianReshaped { .. } => {
                        guardian_interventions.push(t);
                    }
                    SlotEvent::NodeRestarted { .. } => {
                        restarts.push(t);
                    }
                    _ => {}
                }
                cursor += 1;
            }
            integrated.push(states.iter().filter(|s| s.is_integrated()).count() as u32);
        }
        // Boundary events at slot == slots: no integration sample to
        // contribute to, but they still count as events of this run.
        while cursor < entries.len() {
            debug_assert_eq!(entries[cursor].0, slots);
            match &entries[cursor].1 {
                SlotEvent::StateChange { to, .. } if *to == ProtocolState::Freeze => {
                    frozen_events.push(slots);
                }
                SlotEvent::GuardianBlocked { .. } | SlotEvent::GuardianReshaped { .. } => {
                    guardian_interventions.push(slots);
                }
                SlotEvent::NodeRestarted { .. } => {
                    restarts.push(slots);
                }
                _ => {}
            }
            cursor += 1;
        }
        Ok(TimeSeries {
            integrated,
            frozen_events,
            guardian_interventions,
            restarts,
        })
    }

    /// Number of integrated nodes at the end of each slot.
    #[must_use]
    pub fn integrated(&self) -> &[u32] {
        &self.integrated
    }

    /// Slots at which some node entered `freeze`.
    #[must_use]
    pub fn freeze_slots(&self) -> &[u64] {
        &self.frozen_events
    }

    /// Slots at which a central guardian blocked or reshaped a frame.
    #[must_use]
    pub fn guardian_intervention_slots(&self) -> &[u64] {
        &self.guardian_interventions
    }

    /// Slots at which a host restarted a frozen controller.
    #[must_use]
    pub fn restart_slots(&self) -> &[u64] {
        &self.restarts
    }

    /// First slot at which at least `n` nodes were integrated.
    #[must_use]
    pub fn first_slot_with_integrated(&self, n: u32) -> Option<u64> {
        self.integrated
            .iter()
            .position(|c| *c >= n)
            .map(|i| i as u64)
    }

    /// Largest number of simultaneously integrated nodes.
    #[must_use]
    pub fn peak_integrated(&self) -> u32 {
        self.integrated.iter().copied().max().unwrap_or(0)
    }

    /// A coarse ASCII sparkline of the integrated-node count (one char
    /// per `stride` slots).
    #[must_use]
    pub fn sparkline(&self, stride: usize) -> String {
        const LEVELS: &[char] = &['_', '.', ':', '|', '#'];
        let stride = stride.max(1);
        let peak = self.peak_integrated().max(1);
        self.integrated
            .chunks(stride)
            .map(|chunk| {
                let avg = chunk.iter().sum::<u32>() as f64 / chunk.len() as f64;
                let level = (avg / f64::from(peak) * (LEVELS.len() - 1) as f64).round() as usize;
                LEVELS[level.min(LEVELS.len() - 1)]
            })
            .collect()
    }
}

/// The coverage-signal metrics of one simulated fault-plan run — the
/// quantities the fuzzer's corpus admission keys on and the campaign
/// daemon's `eval` endpoint streams back. Extracted here so the local
/// and the daemon-routed evaluation paths compute them with the same
/// code (bit-identical results by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanRunMetrics {
    /// Recovery classification of the run.
    pub outcome: crate::campaign::RecoveryOutcome,
    /// `1 - unavailability` at quorum = healthy-node count (floored at
    /// one so an all-faulty plan still yields a defined quorum).
    pub availability: f64,
    /// Slots at which some node entered freeze.
    pub freezes: usize,
    /// Slots at which a host restarted a frozen controller.
    pub restarts: usize,
    /// Slots at which a central guardian blocked or reshaped a frame.
    pub interventions: usize,
}

impl PlanRunMetrics {
    /// Extracts the metrics from one finished run of a `nodes`-node
    /// cluster.
    ///
    /// # Panics
    ///
    /// Panics if the report's log references slots beyond its own
    /// horizon (a simulator invariant violation).
    #[must_use]
    pub fn from_report(report: &crate::report::SimReport, nodes: usize) -> PlanRunMetrics {
        let faulty = report.faulty_nodes().len();
        let quorum = nodes.saturating_sub(faulty).max(1) as u32;
        let series = TimeSeries::from_log(report.log(), nodes, report.slots_run())
            .expect("simulator log stays within its own horizon");
        PlanRunMetrics {
            outcome: crate::campaign::RecoveryOutcome::classify(report),
            availability: 1.0 - report.unavailability(quorum),
            freezes: series.freeze_slots().len(),
            restarts: series.restart_slots().len(),
            interventions: series.guardian_intervention_slots().len(),
        }
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "integration over time: [{}] (peak {}, {} freeze event(s))",
            self.sparkline(self.integrated.len().div_ceil(64)),
            self.peak_integrated(),
            self.frozen_events.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{CouplerFaultEvent, FaultPersistence, FaultPlan};
    use crate::sim::SimBuilder;
    use crate::topology::Topology;
    use tta_guardian::{CouplerAuthority, CouplerFaultMode};
    use tta_types::NodeId;

    fn golden_series() -> TimeSeries {
        let report = SimBuilder::new(4)
            .topology(Topology::Star)
            .slots(200)
            .plan(FaultPlan::none())
            .build()
            .run();
        TimeSeries::from_log(report.log(), 4, report.slots_run()).unwrap()
    }

    #[test]
    fn integration_count_rises_to_full_cluster() {
        let series = golden_series();
        assert_eq!(series.integrated().len(), 200);
        assert_eq!(series.integrated()[0], 0);
        assert_eq!(*series.integrated().last().unwrap(), 4);
        assert_eq!(series.peak_integrated(), 4);
        // Monotone within a fault-free startup.
        for w in series.integrated().windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn startup_threshold_matches_report() {
        let report = SimBuilder::new(4)
            .topology(Topology::Star)
            .slots(200)
            .plan(FaultPlan::none())
            .build()
            .run();
        let series = TimeSeries::from_log(report.log(), 4, report.slots_run()).unwrap();
        assert_eq!(series.first_slot_with_integrated(4), report.startup_slot());
        assert!(series.freeze_slots().is_empty());
        assert!(series.restart_slots().is_empty());
    }

    #[test]
    fn truncated_horizon_is_an_error_not_an_abort() {
        // Regression: a log referencing slots strictly beyond the
        // claimed horizon used to be silently mis-reconstructed (a dead
        // in-loop assert never fired). It must surface as a recoverable
        // error — while an event landing exactly *on* the horizon slot
        // is a legal boundary event, not a mismatch.
        let report = SimBuilder::new(4)
            .topology(Topology::Star)
            .slots(200)
            .plan(FaultPlan::none())
            .build()
            .run();
        let last_event_slot = report.log().entries().last().unwrap().0;
        let err = TimeSeries::from_log(report.log(), 4, last_event_slot - 1).unwrap_err();
        match err {
            TimeSeriesError::SlotBeyondHorizon { slot, slots } => {
                assert!(slot > slots, "reported slot {slot} vs horizon {slots}");
                assert_eq!(slots, last_event_slot - 1);
            }
        }
        assert!(err.to_string().contains("beyond horizon"));
        // Horizon == last event slot: the boundary event is kept.
        assert!(TimeSeries::from_log(report.log(), 4, last_event_slot).is_ok());
    }

    #[test]
    fn restart_on_the_horizon_slot_is_counted_not_dropped() {
        // Regression: the `SlotBeyondHorizon` guard was off by one — a
        // restart logged exactly at the horizon slot made the whole
        // reconstruction fail (and before that, was silently dropped).
        let mut log = SlotLog::new();
        log.record(
            3,
            SlotEvent::NodeRestarted {
                node: NodeId::new(0),
                attempt: 1,
            },
        );
        log.record(
            20,
            SlotEvent::NodeRestarted {
                node: NodeId::new(2),
                attempt: 2,
            },
        );
        let series = TimeSeries::from_log(&log, 4, 20).unwrap();
        assert_eq!(series.restart_slots(), [3, 20]);
        // The per-slot integration series still covers exactly 0..slots.
        assert_eq!(series.integrated().len(), 20);
        // One past the horizon is still an error.
        let err = TimeSeries::from_log(&log, 4, 19).unwrap_err();
        assert_eq!(
            err,
            TimeSeriesError::SlotBeyondHorizon {
                slot: 20,
                slots: 19
            }
        );
    }

    #[test]
    fn restart_events_land_in_the_restart_series() {
        let mut log = SlotLog::new();
        log.record(
            3,
            SlotEvent::NodeRestarted {
                node: NodeId::new(0),
                attempt: 1,
            },
        );
        log.record(
            9,
            SlotEvent::NodeRestarted {
                node: NodeId::new(2),
                attempt: 1,
            },
        );
        let series = TimeSeries::from_log(&log, 4, 20).unwrap();
        assert_eq!(series.restart_slots(), [3, 9]);
    }

    #[test]
    fn replay_run_shows_freezes_in_the_series() {
        let plan = FaultPlan::none().with_coupler_fault(CouplerFaultEvent {
            channel: 0,
            mode: CouplerFaultMode::OutOfSlot,
            from_slot: 12,
            to_slot: 300,
            persistence: FaultPersistence::Transient,
        });
        let report = SimBuilder::new(4)
            .topology(Topology::Star)
            .authority(CouplerAuthority::FullShifting)
            .slots(300)
            .plan(plan)
            .build()
            .run();
        let series = TimeSeries::from_log(report.log(), 4, report.slots_run()).unwrap();
        if !report.healthy_frozen().is_empty() {
            assert!(!series.freeze_slots().is_empty());
        }
    }

    #[test]
    fn sparkline_has_expected_length_and_levels() {
        let series = golden_series();
        let spark = series.sparkline(10);
        assert_eq!(spark.chars().count(), 20);
        assert!(spark.starts_with('_'), "starts all-frozen: {spark}");
        assert!(spark.ends_with('#'), "ends fully integrated: {spark}");
    }

    #[test]
    fn display_is_compact() {
        let series = golden_series();
        let s = series.to_string();
        assert!(s.contains("peak 4"));
        assert!(s.contains("0 freeze event(s)"));
    }
}
