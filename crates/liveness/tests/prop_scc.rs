//! Property-based tests of the SCC core and the fair-cycle engine on
//! randomized digraphs: the iterative Tarjan against a brute-force
//! mutual-reachability reference, and every emitted lasso validated
//! structurally (real edges, restriction respected, fairness witnessed).

use proptest::prelude::*;
use tta_liveness::{strongly_connected_components, FairAction, LivenessChecker, Property, Verdict};
use tta_modelcheck::{IdentityCodec, TransitionSystem};

/// A random digraph over `0..n` as adjacency lists.
#[derive(Debug, Clone)]
struct RandomGraph {
    edges: Vec<Vec<u32>>,
}

impl TransitionSystem for RandomGraph {
    type State = u32;

    fn initial_states(&self) -> Vec<u32> {
        vec![0]
    }

    fn successors(&self, s: &u32, out: &mut Vec<u32>) {
        out.extend(self.edges[*s as usize].iter().copied());
    }
}

fn arb_graph(max_nodes: usize) -> impl Strategy<Value = RandomGraph> {
    (1..max_nodes).prop_flat_map(|n| {
        prop::collection::vec(prop::collection::vec(0..n as u32, 0..4), n)
            .prop_map(|edges| RandomGraph { edges })
    })
}

fn edge_list(graph: &RandomGraph) -> Vec<(u32, u32)> {
    graph
        .edges
        .iter()
        .enumerate()
        .flat_map(|(u, vs)| vs.iter().map(move |&v| (u as u32, v)))
        .collect()
}

/// Brute-force SCCs: Floyd–Warshall mutual reachability. `O(n³)` — fine
/// for ≤ 64 nodes, and independent of everything Tarjan does.
fn reference_sccs(graph: &RandomGraph) -> Vec<Vec<u32>> {
    let n = graph.edges.len();
    let mut reach = vec![vec![false; n]; n];
    for (u, vs) in graph.edges.iter().enumerate() {
        for &v in vs {
            reach[u][v as usize] = true;
        }
    }
    for k in 0..n {
        for i in 0..n {
            if reach[i][k] {
                let via: Vec<bool> = reach[k].clone();
                for (j, r) in reach[i].iter_mut().enumerate() {
                    *r |= via[j];
                }
            }
        }
    }
    let mut assigned = vec![false; n];
    let mut groups = Vec::new();
    for u in 0..n {
        if assigned[u] {
            continue;
        }
        let members: Vec<u32> = (u..n)
            .filter(|&v| v == u || (reach[u][v] && reach[v][u]))
            .map(|v| v as u32)
            .collect();
        for &v in &members {
            assigned[v as usize] = true;
        }
        groups.push(members);
    }
    groups
}

fn normalized(mut groups: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
    for g in &mut groups {
        g.sort_unstable();
    }
    groups.sort();
    groups
}

/// Reference violation decision for `F target` with **no** fairness
/// under the stutter-extended semantics: a violating execution exists
/// iff, inside the `≠ target` subgraph reachable from a `≠ target`
/// initial state, there is a deadlock (of the *original* system) or a
/// cycle. Cycle detection by Kahn's algorithm, nothing shared with the
/// engine.
fn reference_eventually_violated(graph: &RandomGraph, target: u32) -> bool {
    let n = graph.edges.len();
    if 0 == target {
        return false;
    }
    // Reachability from 0 through non-target nodes only.
    let mut seen = vec![false; n];
    let mut stack = vec![0u32];
    seen[0] = true;
    while let Some(u) = stack.pop() {
        for &v in &graph.edges[u as usize] {
            if v != target && !seen[v as usize] {
                seen[v as usize] = true;
                stack.push(v);
            }
        }
    }
    let active: Vec<u32> = (0..n as u32).filter(|&v| seen[v as usize]).collect();
    if active.iter().any(|&v| graph.edges[v as usize].is_empty()) {
        return true; // stutter at a deadlock, forever short of the target
    }
    // Kahn over the induced subgraph: leftovers ⇒ a cycle.
    let mut indegree = vec![0usize; n];
    for &u in &active {
        for &v in &graph.edges[u as usize] {
            if v != target && seen[v as usize] {
                indegree[v as usize] += 1;
            }
        }
    }
    let mut queue: Vec<u32> = active
        .iter()
        .copied()
        .filter(|&v| indegree[v as usize] == 0)
        .collect();
    let mut removed = 0usize;
    while let Some(u) = queue.pop() {
        removed += 1;
        for &v in &graph.edges[u as usize] {
            if v != target && seen[v as usize] {
                indegree[v as usize] -= 1;
                if indegree[v as usize] == 0 {
                    queue.push(v);
                }
            }
        }
    }
    removed < active.len()
}

fn has_edge(graph: &RandomGraph, u: u32, v: u32) -> bool {
    graph.edges[u as usize].contains(&v)
}

/// Whether `from → to` is admissible in the lasso sense: a real edge,
/// or the stutter self-loop at a deadlock.
fn admissible(graph: &RandomGraph, from: u32, to: u32) -> bool {
    has_edge(graph, from, to) || (from == to && graph.edges[from as usize].is_empty())
}

proptest! {
    /// Iterative Tarjan partitions exactly like brute-force mutual
    /// reachability on random digraphs of up to 64 nodes.
    #[test]
    fn tarjan_matches_brute_force(graph in arb_graph(64)) {
        let tarjan = strongly_connected_components(graph.edges.len(), &edge_list(&graph));
        prop_assert_eq!(normalized(tarjan), normalized(reference_sccs(&graph)));
    }

    /// Component numbering is reverse topological: along any
    /// cross-component edge the component id strictly decreases.
    #[test]
    fn tarjan_numbering_is_reverse_topological(graph in arb_graph(64)) {
        let groups = strongly_connected_components(graph.edges.len(), &edge_list(&graph));
        let mut comp = vec![usize::MAX; graph.edges.len()];
        for (c, members) in groups.iter().enumerate() {
            for &v in members {
                comp[v as usize] = c;
            }
        }
        for (u, v) in edge_list(&graph) {
            if comp[u as usize] != comp[v as usize] {
                prop_assert!(comp[u as usize] > comp[v as usize],
                    "edge {u}→{v} goes from component {} to {}", comp[u as usize], comp[v as usize]);
            }
        }
    }

    /// The unfair `F target` verdict agrees with an independent
    /// cycle/deadlock reference, and every violation lasso is a real
    /// execution that never touches the target.
    #[test]
    fn eventually_agrees_with_reference(graph in arb_graph(32), target_seed in 0u32..32) {
        let target = target_seed % graph.edges.len() as u32;
        let codec = IdentityCodec::new();
        let out = LivenessChecker::new().check(
            &graph,
            &codec,
            &[],
            &Property::eventually("target", move |s: &u32| *s == target),
        );
        let expected = reference_eventually_violated(&graph, target);
        prop_assert_eq!(out.verdict == Verdict::Violated, expected);
        if let Some(lasso) = out.lasso {
            prop_assert!(lasso.states().all(|&s| s != target));
            let first = *lasso.states().next().unwrap();
            prop_assert_eq!(first, 0, "stem must start at the initial state");
            for (&a, &b) in lasso.transitions() {
                prop_assert!(admissible(&graph, a, b), "lasso step {a}→{b} is not admissible");
            }
        }
    }

    /// Under a random weak-fairness constraint, any emitted lasso's
    /// cycle must witness the constraint: the action is disabled at
    /// some cycle state or taken by some cycle edge (closing edge
    /// included).
    #[test]
    fn violation_cycles_witness_fairness(graph in arb_graph(24), pivot in 0u32..24) {
        let n = graph.edges.len() as u32;
        let pivot = pivot % n;
        // Action: "move past the pivot" — any edge into a state > pivot.
        let action = FairAction::new("beyond pivot", move |_: &u32, b: &u32| *b > pivot);
        let codec = IdentityCodec::new();
        let out = LivenessChecker::new().check(
            &graph,
            &codec,
            &[action],
            &Property::always_eventually("at zero", |s: &u32| *s == 0),
        );
        if let Some(lasso) = out.lasso {
            let disabled = |s: u32| !graph.edges[s as usize].iter().any(|&b| b > pivot);
            let cycle = lasso.cycle();
            let edge_taken = cycle
                .windows(2)
                .map(|w| (w[0], w[1]))
                .chain(std::iter::once((cycle[cycle.len() - 1], cycle[0])))
                .any(|(a, b)| has_edge(&graph, a, b) && b > pivot);
            prop_assert!(
                cycle.iter().any(|&s| disabled(s)) || edge_taken,
                "cycle {cycle:?} starves the fair action (pivot {pivot})"
            );
            // And it must genuinely avoid the recurrence target.
            prop_assert!(cycle.iter().all(|&s| s != 0));
            for (&a, &b) in lasso.transitions() {
                prop_assert!(admissible(&graph, a, b));
            }
        }
    }
}
