//! Weak-fairness constraints over named actions.
//!
//! A [`FairAction`] names a set of transitions (an *action*) via a
//! `taken(from, to)` judgment. The action is considered **enabled** in a
//! state iff at least one of the state's generated successors is reached
//! by taking it; the engine derives enabledness during graph
//! construction rather than asking the caller for a second judgment, so
//! the two can never disagree.
//!
//! The engine enforces **weak fairness** (WF, justice): an execution is
//! fair with respect to an action iff the action is infinitely often
//! disabled or infinitely often taken. Equivalently — and this is the
//! form the cycle check uses — a lasso's cycle is unfair exactly when
//! some action is enabled at *every* state of the cycle yet taken by
//! *none* of its edges. Weak fairness is the right notion for host
//! decisions like "a node allowed to power up eventually does": it rules
//! out the adversary freezing a choice forever without granting the
//! scheduler clairvoyance (strong fairness), and it is checkable per
//! SCC without recursion.

use std::fmt;

/// The engine labels edges with a 32-bit action mask; more than 32
/// weak-fairness constraints per check are rejected at graph build.
pub const MAX_FAIR_ACTIONS: usize = 32;

/// The boxed transition judgment backing a [`FairAction`]. `Send +
/// Sync` so the chunked graph builder can evaluate labels from worker
/// threads ([`crate::FairGraph::build_with_threads`]).
type TakenFn<S> = Box<dyn Fn(&S, &S) -> bool + Send + Sync>;

/// A named action subject to weak fairness.
pub struct FairAction<S> {
    name: String,
    taken: TakenFn<S>,
}

impl<S> FairAction<S> {
    /// Wraps a transition judgment as a named fair action.
    pub fn new(
        name: impl Into<String>,
        taken: impl Fn(&S, &S) -> bool + Send + Sync + 'static,
    ) -> Self {
        FairAction {
            name: name.into(),
            taken: Box::new(taken),
        }
    }

    /// The display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the transition `from → to` takes this action.
    #[must_use]
    pub fn taken(&self, from: &S, to: &S) -> bool {
        (self.taken)(from, to)
    }
}

impl<S> fmt::Debug for FairAction<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("FairAction").field(&self.name).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_judge_transitions() {
        let inc = FairAction::new("increment", |a: &u32, b: &u32| *b == a + 1);
        assert!(inc.taken(&3, &4));
        assert!(!inc.taken(&3, &3));
        assert_eq!(inc.name(), "increment");
        assert!(format!("{inc:?}").contains("increment"));
    }
}
