//! Fair-cycle detection and the per-property checking algorithms.
//!
//! Every liveness violation in a finite system is a reachable *fair
//! cycle* inside some restriction of the state graph:
//!
//! * `F p` fails iff a fair cycle of `¬p` states is reachable from a
//!   `¬p` initial state through `¬p` states only;
//! * `G (p → F q)` fails iff from some reachable `p ∧ ¬q` state a fair
//!   cycle is reachable *within* the `¬q` states;
//! * `G F p` fails iff any reachable fair cycle avoids `p` entirely
//!   (the prefix may pass through anything);
//! * `G p` is plain safety — a reachable `¬p` state — reported in lasso
//!   form by extending the offending path until a state repeats (or, on
//!   a truncated graph, until the walk reaches a state whose stored
//!   successors were all dropped by the budget, closed as a stutter
//!   cycle there).
//!
//! A cycle is **weakly fair** iff every registered action is either
//! disabled at some state of the cycle or taken by some edge of it.
//! That condition is decidable per SCC without recursion: a component
//! contains a fair cycle iff it contains a cycle at all and, for every
//! action, a member where the action is disabled *or* an internal edge
//! taking it — the witnesses can then be stitched into one closed walk
//! because the component is strongly connected. (This is exactly why
//! the engine restricts itself to weak fairness: under strong fairness
//! the SCC test loses completeness and needs recursive decomposition.)

use crate::fairness::FairAction;
use crate::graph::FairGraph;
use crate::lasso::Lasso;
use crate::property::{Property, StatePredicate};
use crate::scc::{tarjan_csr, SccDecomposition};
use std::collections::VecDeque;
use std::time::{Duration, Instant};
use tta_modelcheck::{StateCodec, TransitionSystem, Verdict, DEFAULT_MAX_STATES};

/// Statistics from one liveness check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivenessStats {
    /// Distinct states in the (shared) reachable graph.
    pub states: u64,
    /// Stored edges, synthetic stutter loops included.
    pub edges: u64,
    /// Deadlock states extended with stutter loops.
    pub deadlock_states: u64,
    /// Strongly connected components examined in the restriction.
    pub sccs_examined: u64,
    /// Whether the graph was truncated by the state budget.
    pub truncated: bool,
    /// Wall-clock time to build the graph (shared across checks).
    pub build_time: Duration,
    /// Wall-clock time for this property's analysis.
    pub check_time: Duration,
}

/// Outcome of checking one temporal property.
#[derive(Debug, Clone)]
pub struct LivenessOutcome<S> {
    /// `Holds`, `Violated`, or `BudgetExhausted` when the graph was
    /// truncated and no violation was found (a violation found on a
    /// truncated graph is still sound and reported as `Violated`).
    pub verdict: Verdict,
    /// The violating execution, when `verdict == Violated`.
    pub lasso: Option<Lasso<S>>,
    /// Analysis statistics.
    pub stats: LivenessStats,
}

/// One-call liveness checking: build the fair graph, check one
/// property. For several properties over one system, build a
/// [`FairGraph`] once and call [`FairGraph::check`] repeatedly.
#[derive(Debug, Clone, Copy)]
pub struct LivenessChecker {
    max_states: u64,
}

impl Default for LivenessChecker {
    fn default() -> Self {
        LivenessChecker::new()
    }
}

impl LivenessChecker {
    /// A checker with the default state budget
    /// ([`DEFAULT_MAX_STATES`]).
    #[must_use]
    pub fn new() -> Self {
        LivenessChecker {
            max_states: DEFAULT_MAX_STATES,
        }
    }

    /// Caps the number of distinct states kept in the graph.
    #[must_use]
    pub fn max_states(mut self, max_states: u64) -> Self {
        self.max_states = max_states;
        self
    }

    /// Builds the graph and checks `property` under `fairness`.
    #[must_use]
    pub fn check<T, C>(
        &self,
        system: &T,
        codec: &C,
        fairness: &[FairAction<C::State>],
        property: &Property<C::State>,
    ) -> LivenessOutcome<C::State>
    where
        C: StateCodec,
        T: TransitionSystem<State = C::State>,
    {
        FairGraph::build(system, codec, fairness, self.max_states).check(property)
    }
}

/// Where the fair-cycle search starts and how the stem is built.
enum Sources {
    /// Search within the restriction from these states; the stem is the
    /// BFS chain to a source plus the restricted path onward.
    Restricted(Vec<u32>),
    /// Search every kept state; the stem is the plain BFS chain to the
    /// cycle entry (the prefix is unconstrained).
    Anywhere,
}

struct CycleWitness {
    /// Path from an initial state up to (excluding) the cycle entry.
    stem_ids: Vec<u32>,
    /// The cycle as a closed walk; `cycle_ids[0]` is the entry, and the
    /// closing edge `last → entry` exists in the graph — except for a
    /// single-state cycle at a truncation-frontier state, whose closing
    /// self-loop is synthetic (rendered as stutter).
    cycle_ids: Vec<u32>,
}

impl<C: StateCodec> FairGraph<'_, C> {
    /// Checks `property` over this graph's fair executions.
    #[must_use]
    pub fn check(&self, property: &Property<C::State>) -> LivenessOutcome<C::State> {
        // detlint: allow(DL02) reason=elapsed-time stats only; reported out-of-band, never part of the verification result
        let start = Instant::now();
        let (witness, sccs_examined) = match property {
            Property::Always(p) => {
                let holds = self.eval(p);
                (self.safety_witness(&holds), 0)
            }
            Property::Eventually(p) => {
                let holds = self.eval(p);
                let keep: Vec<bool> = holds.iter().map(|h| !h).collect();
                let sources: Vec<u32> = self
                    .initial()
                    .iter()
                    .copied()
                    .filter(|&s| keep[s as usize])
                    .collect();
                self.find_fair_cycle(&keep, &Sources::Restricted(sources))
            }
            Property::LeadsTo(p, q) => {
                let p_holds = self.eval(p);
                let keep: Vec<bool> = self.eval(q).iter().map(|h| !h).collect();
                let sources: Vec<u32> = (0..self.state_count() as u32)
                    .filter(|&v| p_holds[v as usize] && keep[v as usize])
                    .collect();
                self.find_fair_cycle(&keep, &Sources::Restricted(sources))
            }
            Property::AlwaysEventually(p) => {
                let keep: Vec<bool> = self.eval(p).iter().map(|h| !h).collect();
                self.find_fair_cycle(&keep, &Sources::Anywhere)
            }
        };

        let lasso = witness.map(|w| {
            // A single-state cycle is synthetic stutter when the graph
            // stores no real self-loop there: deadlock states carry the
            // marked stutter loop, truncation-frontier states store no
            // outgoing edge at all.
            let entry = w.cycle_ids[0];
            let stutter = w.cycle_ids.len() == 1
                && (self.is_deadlock(entry) || !self.neighbors(entry).any(|(t, _)| t == entry));
            Lasso::new(
                w.stem_ids.iter().map(|&v| self.state(v)).collect(),
                w.cycle_ids.iter().map(|&v| self.state(v)).collect(),
                stutter,
            )
        });
        let verdict = if lasso.is_some() {
            Verdict::Violated
        } else if self.is_truncated() {
            Verdict::BudgetExhausted
        } else {
            Verdict::Holds
        };
        LivenessOutcome {
            verdict,
            lasso,
            stats: LivenessStats {
                states: self.state_count() as u64,
                edges: self.edge_count() as u64,
                deadlock_states: (0..self.state_count() as u32)
                    .filter(|&v| self.is_deadlock(v))
                    .count() as u64,
                sccs_examined,
                truncated: self.is_truncated(),
                build_time: self.build_time(),
                check_time: start.elapsed(),
            },
        }
    }

    /// Evaluates a predicate over every kept state, by id.
    fn eval(&self, pred: &StatePredicate<C::State>) -> Vec<bool> {
        (0..self.state_count() as u32)
            .map(|v| pred.holds(&self.state(v)))
            .collect()
    }

    /// Safety violation in lasso form: the shortest path to a `¬p`
    /// state, extended greedily until a state repeats or the walk hits
    /// the truncation frontier (both bounded by `n` steps: deadlock
    /// states carry a stutter loop, so only budget-dropped successors
    /// can leave a state without a stored edge). Any extension violates
    /// `G p`; no fairness analysis is needed.
    fn safety_witness(&self, holds: &[bool]) -> Option<CycleWitness> {
        let bad = (0..self.state_count() as u32).find(|&v| !holds[v as usize])?;
        let mut path = self.stem_ids_to(bad);
        let mut position = vec![usize::MAX; self.state_count()];
        for (i, &v) in path.iter().enumerate() {
            position[v as usize] = i;
        }
        loop {
            let cur = *path.last().expect("path starts non-empty");
            let Some((next, _)) = self.neighbors(cur).next() else {
                // Truncation frontier: `cur` has successors in the
                // model, but the `max_states` budget dropped all of
                // them. The `¬p` state is already on the path, so the
                // violation stands; close the lasso as a single-state
                // stutter cycle at the frontier, like a deadlock.
                let entry = path.pop().expect("path starts non-empty");
                return Some(CycleWitness {
                    stem_ids: path,
                    cycle_ids: vec![entry],
                });
            };
            if position[next as usize] != usize::MAX {
                let at = position[next as usize];
                let cycle_ids = path.split_off(at);
                return Some(CycleWitness {
                    stem_ids: path,
                    cycle_ids,
                });
            }
            position[next as usize] = path.len();
            path.push(next);
        }
    }

    /// Finds a weakly-fair cycle within the `keep` restriction,
    /// reachable as `sources` prescribes, and assembles the full
    /// stem/cycle id witness. The second element counts the strongly
    /// connected components examined, witness or not.
    fn find_fair_cycle(&self, keep: &[bool], sources: &Sources) -> (Option<CycleWitness>, u64) {
        let n = self.state_count();
        const UNSET: u32 = u32::MAX;

        // 1. The active node set, plus restricted-BFS parents when the
        //    search is anchored at sources.
        let mut restricted_parent = vec![UNSET; n];
        let active: Vec<bool> = match sources {
            Sources::Anywhere => keep.to_vec(),
            Sources::Restricted(srcs) => {
                let mut seen = vec![false; n];
                let mut queue = VecDeque::new();
                for &s in srcs {
                    if keep[s as usize] && !seen[s as usize] {
                        seen[s as usize] = true;
                        queue.push_back(s);
                    }
                }
                while let Some(v) = queue.pop_front() {
                    for (w, _) in self.neighbors(v) {
                        if keep[w as usize] && !seen[w as usize] {
                            seen[w as usize] = true;
                            restricted_parent[w as usize] = v;
                            queue.push_back(w);
                        }
                    }
                }
                seen
            }
        };

        // 2. SCCs of the active subgraph.
        let (offsets, targets) = self.csr();
        let scc = tarjan_csr(offsets, targets, Some(&active));
        let sccs_examined = scc.count as u64;
        let groups = scc.groups();
        let all = self.all_actions();

        // 3. Weak-fairness support test per component; pick the fair
        //    component whose entry (minimal member id) is shallowest in
        //    BFS order, for short stems and determinism.
        let mut chosen: Option<(u32, usize)> = None;
        for (cid, members) in groups.iter().enumerate() {
            let mut has_self_loop = false;
            let mut internal_taken = 0u32;
            let mut disabled_somewhere = 0u32;
            for &v in members {
                disabled_somewhere |= !self.enabled_mask(v) & all;
                for (w, label) in self.neighbors(v) {
                    if active[w as usize] && scc.component[w as usize] == cid as u32 {
                        internal_taken |= label;
                        has_self_loop |= w == v;
                    }
                }
            }
            let has_cycle = members.len() > 1 || has_self_loop;
            if has_cycle && (disabled_somewhere | internal_taken) == all {
                let entry = members[0]; // members ascend: minimal id
                if chosen.is_none_or(|(best, _)| entry < best) {
                    chosen = Some((entry, cid));
                }
            }
        }
        let Some((entry, cid)) = chosen else {
            return (None, sccs_examined);
        };

        // 4. Stitch a fair closed walk through the component.
        let cycle_ids = self.fair_walk(&active, &scc, cid, entry, &groups[cid]);

        // 5. Assemble the stem.
        let stem_ids = match sources {
            Sources::Anywhere => {
                let mut chain = self.stem_ids_to(entry);
                chain.pop();
                chain
            }
            Sources::Restricted(_) => {
                // entry ← restricted parents → some source, then the
                // unrestricted BFS chain from an initial state to it.
                let mut tail = vec![entry];
                let mut cur = entry;
                while restricted_parent[cur as usize] != UNSET {
                    cur = restricted_parent[cur as usize];
                    tail.push(cur);
                }
                tail.reverse();
                let mut chain = self.stem_ids_to(tail[0]);
                chain.extend_from_slice(&tail[1..]);
                chain.pop();
                chain
            }
        };

        (
            Some(CycleWitness {
                stem_ids,
                cycle_ids,
            }),
            sccs_examined,
        )
    }

    /// Builds a closed walk from `entry` through the strongly connected
    /// component `cid` that witnesses weak fairness of every action:
    /// for each action the walk contains a state where it is disabled
    /// or traverses an edge taking it.
    fn fair_walk(
        &self,
        active: &[bool],
        scc: &SccDecomposition,
        cid: usize,
        entry: u32,
        members: &[u32],
    ) -> Vec<u32> {
        let in_comp = |v: u32| active[v as usize] && scc.component[v as usize] == cid as u32;
        let mut walk = vec![entry];

        // Fairness support accumulated incrementally as the walk grows:
        // a bit is set once the walk visits a state where the action is
        // disabled or traverses an edge taking it, so no segment is
        // ever rescanned.
        let all = self.all_actions();
        let mut satisfied = !self.enabled_mask(entry) & all;
        for bit in (0..32).map(|i| 1u32 << i).filter(|b| all & b != 0) {
            if satisfied & bit != 0 {
                continue;
            }
            let cur = *walk.last().expect("walk starts at entry");
            if let Some(&w) = members.iter().find(|&&v| self.enabled_mask(v) & bit == 0) {
                // Visit a state where the action is disabled.
                let hop = self.path_in_comp(&in_comp, cur, w);
                self.extend_walk(&mut walk, &mut satisfied, hop.into_iter().skip(1));
            } else {
                // Traverse an edge that takes the action (the fairness
                // support test guarantees one exists in the component).
                let (u, v) = members
                    .iter()
                    .find_map(|&u| {
                        self.neighbors(u)
                            .find(|&(v, label)| in_comp(v) && label & bit != 0)
                            .map(|(v, _)| (u, v))
                    })
                    .expect("fair component has an internal edge taking the action");
                let hop = self.path_in_comp(&in_comp, cur, u);
                let hop = hop.into_iter().skip(1).chain(std::iter::once(v));
                self.extend_walk(&mut walk, &mut satisfied, hop);
            }
        }

        // Close the walk back at the entry.
        let cur = *walk.last().expect("walk is non-empty");
        if walk.len() == 1 {
            if self.neighbors(entry).any(|(w, _)| w == entry) {
                return walk; // real or stutter self-loop at the entry
            }
            let (first_hop, _) = self
                .neighbors(entry)
                .find(|&(w, _)| in_comp(w))
                .expect("a cyclic component has an internal successor");
            walk.push(first_hop);
            let back = self.path_in_comp(&in_comp, first_hop, entry);
            walk.extend(back.into_iter().skip(1));
            walk.pop(); // drop the repeated entry; the closing edge is implicit
        } else if cur == entry {
            walk.pop();
        } else {
            let back = self.path_in_comp(&in_comp, cur, entry);
            walk.extend(back.into_iter().skip(1));
            walk.pop();
        }
        walk
    }

    /// Appends `suffix` to the walk (each element must be a graph
    /// successor of its predecessor), folding every traversed edge's
    /// label and every visited state's disabled actions into the
    /// `satisfied` fairness-support mask.
    fn extend_walk(
        &self,
        walk: &mut Vec<u32>,
        satisfied: &mut u32,
        suffix: impl IntoIterator<Item = u32>,
    ) {
        let all = self.all_actions();
        for v in suffix {
            let prev = *walk.last().expect("walk is non-empty");
            *satisfied |= self.edge_label(prev, v) | (!self.enabled_mask(v) & all);
            walk.push(v);
        }
    }

    /// The label of the edge `u → v` (parallel edges share labels, as
    /// labels are a function of the two states).
    fn edge_label(&self, u: u32, v: u32) -> u32 {
        self.neighbors(u)
            .filter(|&(w, _)| w == v)
            .fold(0, |acc, (_, label)| acc | label)
    }

    /// Shortest path `from → to` inside one strongly connected
    /// component (both endpoints inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `to` is unreachable — impossible within an SCC.
    fn path_in_comp(&self, in_comp: &dyn Fn(u32) -> bool, from: u32, to: u32) -> Vec<u32> {
        if from == to {
            return vec![from];
        }
        let mut parent = vec![u32::MAX; self.state_count()];
        let mut seen = vec![false; self.state_count()];
        seen[from as usize] = true;
        let mut queue = VecDeque::from([from]);
        while let Some(v) = queue.pop_front() {
            for (w, _) in self.neighbors(v) {
                if !in_comp(w) || seen[w as usize] {
                    continue;
                }
                seen[w as usize] = true;
                parent[w as usize] = v;
                if w == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while cur != from {
                        cur = parent[cur as usize];
                        path.push(cur);
                    }
                    path.reverse();
                    return path;
                }
                queue.push_back(w);
            }
        }
        unreachable!("both endpoints lie in one strongly connected component")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_modelcheck::IdentityCodec;

    static CODEC: IdentityCodec<u32> = IdentityCodec::new();

    /// A counter that may stall: `s < 3` offers {stay, advance}; 3 loops.
    struct LazyCounter;
    impl TransitionSystem for LazyCounter {
        type State = u32;
        fn initial_states(&self) -> Vec<u32> {
            vec![0]
        }
        fn successors(&self, s: &u32, out: &mut Vec<u32>) {
            if *s < 3 {
                out.extend([*s, *s + 1]);
            } else {
                out.push(3);
            }
        }
    }

    fn advance() -> FairAction<u32> {
        FairAction::new("advance", |a: &u32, b: &u32| *b == a + 1)
    }

    #[test]
    fn eventually_fails_without_fairness() {
        let out = LivenessChecker::new().check(
            &LazyCounter,
            &CODEC,
            &[],
            &Property::eventually("reached 3", |s| *s == 3),
        );
        assert_eq!(out.verdict, Verdict::Violated);
        let lasso = out.lasso.unwrap();
        // The unfair execution stalls forever in the initial state.
        assert!(lasso.cycle().iter().all(|s| *s < 3));
        assert!(!lasso.is_stutter());
    }

    #[test]
    fn eventually_holds_under_weak_fairness() {
        let out = LivenessChecker::new().check(
            &LazyCounter,
            &CODEC,
            &[advance()],
            &Property::eventually("reached 3", |s| *s == 3),
        );
        assert_eq!(out.verdict, Verdict::Holds);
        assert!(out.lasso.is_none());
        assert_eq!(out.stats.states, 4);
        // Tarjan ran over the ¬p restriction {0, 1, 2} even though no
        // fair cycle was found: the SCC count must survive a Holds.
        assert_eq!(out.stats.sccs_examined, 3);
    }

    #[test]
    fn always_violation_comes_back_as_a_lasso() {
        let out = LivenessChecker::new().check(
            &LazyCounter,
            &CODEC,
            &[advance()],
            &Property::always("below 2", |s| *s < 2),
        );
        assert_eq!(out.verdict, Verdict::Violated);
        let lasso = out.lasso.unwrap();
        // BFS gives the shortest stem to the first bad state.
        assert_eq!(lasso.stem(), [0, 1]);
        assert!(lasso.states().any(|s| *s >= 2));
    }

    /// Request/serve: 0 idles or requests; 1 stalls or serves; 2 resets.
    struct ReqServe;
    impl TransitionSystem for ReqServe {
        type State = u32;
        fn initial_states(&self) -> Vec<u32> {
            vec![0]
        }
        fn successors(&self, s: &u32, out: &mut Vec<u32>) {
            match s {
                0 => out.extend([0, 1]),
                1 => out.extend([1, 2]),
                _ => out.push(0),
            }
        }
    }

    #[test]
    fn leads_to_depends_on_fairness_of_the_server() {
        let serve = FairAction::new("serve", |a: &u32, b: &u32| *a == 1 && *b == 2);
        let property = Property::leads_to("requested", |s| *s == 1, "served", |s| *s == 2);
        let unfair = LivenessChecker::new().check(&ReqServe, &CODEC, &[], &property);
        assert_eq!(unfair.verdict, Verdict::Violated);
        let lasso = unfair.lasso.unwrap();
        // The violating cycle stalls in the requested state; the stem
        // must actually reach a request.
        assert!(lasso.cycle().iter().all(|s| *s == 1));
        assert_eq!(lasso.stem(), [0]);

        let fair = LivenessChecker::new().check(&ReqServe, &CODEC, &[serve], &property);
        assert_eq!(fair.verdict, Verdict::Holds);
    }

    #[test]
    fn always_eventually_distinguishes_recurrent_from_escaped() {
        // 0 → {1, 3}; 1 → 2 → 0 (good ring); 3 → 3 (dead loop).
        struct Escape;
        impl TransitionSystem for Escape {
            type State = u32;
            fn initial_states(&self) -> Vec<u32> {
                vec![0]
            }
            fn successors(&self, s: &u32, out: &mut Vec<u32>) {
                match s {
                    0 => out.extend([1, 3]),
                    1 => out.push(2),
                    2 => out.push(0),
                    _ => out.push(3),
                }
            }
        }
        let out = LivenessChecker::new().check(
            &Escape,
            &CODEC,
            &[],
            &Property::always_eventually("at origin", |s| *s == 0),
        );
        assert_eq!(out.verdict, Verdict::Violated);
        let lasso = out.lasso.unwrap();
        assert_eq!(lasso.cycle(), [3]);
        assert_eq!(lasso.stem(), [0]);
        assert!(!lasso.is_stutter());
    }

    #[test]
    fn deadlocks_stutter_and_violate_eventually() {
        // 0 → 1, 1 deadlocks before ever reaching 2.
        struct Stops;
        impl TransitionSystem for Stops {
            type State = u32;
            fn initial_states(&self) -> Vec<u32> {
                vec![0]
            }
            fn successors(&self, s: &u32, out: &mut Vec<u32>) {
                if *s == 0 {
                    out.push(1);
                }
            }
        }
        let out = LivenessChecker::new().check(
            &Stops,
            &CODEC,
            &[advance()],
            &Property::eventually("reached 2", |s| *s == 2),
        );
        assert_eq!(out.verdict, Verdict::Violated);
        let lasso = out.lasso.unwrap();
        assert!(lasso.is_stutter());
        assert_eq!(lasso.cycle(), [1]);
        assert_eq!(lasso.stem(), [0]);
        assert_eq!(out.stats.deadlock_states, 1);
    }

    /// An unbounded counter for truncation behaviour.
    struct Unbounded;
    impl TransitionSystem for Unbounded {
        type State = u32;
        fn initial_states(&self) -> Vec<u32> {
            vec![0]
        }
        fn successors(&self, s: &u32, out: &mut Vec<u32>) {
            out.push(s + 1);
        }
    }

    #[test]
    fn truncation_downgrades_holds_to_budget_exhausted() {
        let out = LivenessChecker::new().max_states(10).check(
            &Unbounded,
            &CODEC,
            &[],
            &Property::eventually("reached 1000", |s| *s == 1000),
        );
        assert_eq!(out.verdict, Verdict::BudgetExhausted);
        assert!(out.stats.truncated);
        assert!(out.lasso.is_none());
    }

    #[test]
    fn always_violation_on_truncated_graph_closes_at_the_frontier() {
        // States 0..=9 are kept; 5 violates the invariant, and the
        // greedy extension walks 5 → … → 9, whose only successor (10)
        // was dropped by the budget, so the frontier state has no
        // stored outgoing edge. The checker must return the sound
        // Violated verdict with a stutter cycle there, not panic.
        let out = LivenessChecker::new().max_states(10).check(
            &Unbounded,
            &CODEC,
            &[],
            &Property::always("below 5", |s| *s < 5),
        );
        assert_eq!(out.verdict, Verdict::Violated);
        assert!(out.stats.truncated);
        let lasso = out.lasso.unwrap();
        assert_eq!(lasso.stem(), [0, 1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(lasso.cycle(), [9]);
        assert!(lasso.is_stutter());
    }

    #[test]
    fn violations_on_truncated_graphs_stay_sound() {
        // The stall cycle at 0 is inside any budget; truncation must not
        // block the (sound) violation verdict.
        let out = LivenessChecker::new().max_states(2).check(
            &LazyCounter,
            &CODEC,
            &[],
            &Property::eventually("reached 3", |s| *s == 3),
        );
        assert_eq!(out.verdict, Verdict::Violated);
        assert!(out.stats.truncated);
    }

    #[test]
    fn fair_cycle_must_witness_every_action() {
        // Two independent stalling bits: 0b00 → 0b01/0b10 → 0b11; every
        // state also self-loops. With fairness on both "set" actions the
        // only fair cycle is at 0b11 where both are disabled.
        struct TwoBits;
        impl TransitionSystem for TwoBits {
            type State = u32;
            fn initial_states(&self) -> Vec<u32> {
                vec![0]
            }
            fn successors(&self, s: &u32, out: &mut Vec<u32>) {
                out.push(*s);
                for bit in [1u32, 2] {
                    if s & bit == 0 {
                        out.push(s | bit);
                    }
                }
            }
        }
        let set_lo = FairAction::new("set lo", |a: &u32, b: &u32| a & 1 == 0 && b & 1 != 0);
        let set_hi = FairAction::new("set hi", |a: &u32, b: &u32| a & 2 == 0 && b & 2 != 0);
        let out = LivenessChecker::new().check(
            &TwoBits,
            &CODEC,
            &[set_lo, set_hi],
            &Property::always_eventually("origin", |s| *s == 0),
        );
        // 0 is never revisited; the fair stall is at 3 (both disabled).
        assert_eq!(out.verdict, Verdict::Violated);
        let lasso = out.lasso.unwrap();
        assert_eq!(lasso.cycle(), [3]);
    }
}
