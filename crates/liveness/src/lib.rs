//! # tta-liveness
//!
//! A fair-cycle liveness engine over any [`tta_modelcheck::TransitionSystem`].
//!
//! The paper's headline failure is a *liveness* failure wearing a safety
//! coat: a replayed cold-start frame freezes a healthy node out of
//! integration **forever**. The BFS checker can exhibit the freeze (a
//! safety violation of the monitor), but it cannot state — let alone
//! prove — "every correct node eventually integrates", nor present the
//! infinite freeze-out as what it is: an execution with a finite stem
//! and a repeating cycle. This crate adds exactly that:
//!
//! * [`Property`] — a small temporal AST: `Always`, `Eventually`,
//!   `LeadsTo(p, q)`, `AlwaysEventually`, over named [`StatePredicate`]s;
//! * [`FairAction`] — weak-fairness constraints over named transition
//!   judgments (a node that *can* act infinitely often *must*);
//! * [`FairGraph`] — the reachable graph built once through PR 1's
//!   [`tta_modelcheck::StateCodec`]/[`tta_modelcheck::StateArena`]
//!   interning, with per-edge action labels and a CSR adjacency;
//! * an iterative (non-recursive, stack-safe) Tarjan SCC decomposition
//!   ([`strongly_connected_components`], [`tarjan_csr`]) driving
//!   fair-cycle detection;
//! * [`Lasso`] counterexamples — stem + cycle — mirroring
//!   [`tta_modelcheck::Trace`] ergonomics.
//!
//! # Example
//!
//! ```
//! use tta_liveness::{FairAction, LivenessChecker, Property};
//! use tta_modelcheck::{IdentityCodec, TransitionSystem, Verdict};
//!
//! /// A task that may procrastinate forever: {stay, finish}.
//! struct Task;
//! impl TransitionSystem for Task {
//!     type State = u32;
//!     fn initial_states(&self) -> Vec<u32> { vec![0] }
//!     fn successors(&self, s: &u32, out: &mut Vec<u32>) {
//!         if *s == 0 { out.extend([0, 1]); } else { out.push(1); }
//!     }
//! }
//!
//! let codec = IdentityCodec::new();
//! let done = Property::eventually("done", |s: &u32| *s == 1);
//!
//! // Without fairness the task may stall forever: a lasso shows it.
//! let unfair = LivenessChecker::new().check(&Task, &codec, &[], &done);
//! assert_eq!(unfair.verdict, Verdict::Violated);
//! assert_eq!(unfair.lasso.unwrap().cycle(), [0]);
//!
//! // Weak fairness on "finish" forbids the infinite stall.
//! let finish = FairAction::new("finish", |a: &u32, b: &u32| *a == 0 && *b == 1);
//! let fair = LivenessChecker::new().check(&Task, &codec, &[finish], &done);
//! assert_eq!(fair.verdict, Verdict::Holds);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod check;
mod fairness;
mod graph;
mod lasso;
mod property;
mod scc;

pub use check::{LivenessChecker, LivenessOutcome, LivenessStats};
pub use fairness::{FairAction, MAX_FAIR_ACTIONS};
pub use graph::{ActionUsage, FairGraph};
pub use lasso::Lasso;
pub use property::{Property, StatePredicate};
pub use scc::{strongly_connected_components, tarjan_csr, SccDecomposition, NO_COMPONENT};
pub use tta_modelcheck::Verdict;
