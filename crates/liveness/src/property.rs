//! The temporal property AST.
//!
//! Properties are interpreted over the *infinite fair executions* of a
//! finite transition system: every maximal path, extended by stuttering
//! at deadlock states, that satisfies all registered weak-fairness
//! constraints (see [`crate::FairAction`]). This is the standard
//! possible-worlds reading under which "the cluster eventually starts"
//! is a meaningful claim even though every finite prefix is silent.

use std::fmt;

/// A named boolean predicate over states — the atoms of [`Property`].
///
/// The name is carried along into verdicts, lasso renderings and
/// `Debug` output, so pick something a reader of a counterexample will
/// recognize ("node 2 listening", not "p").
pub struct StatePredicate<S> {
    name: String,
    test: Box<dyn Fn(&S) -> bool>,
}

impl<S> StatePredicate<S> {
    /// Wraps a closure as a named predicate.
    pub fn new(name: impl Into<String>, test: impl Fn(&S) -> bool + 'static) -> Self {
        StatePredicate {
            name: name.into(),
            test: Box::new(test),
        }
    }

    /// The display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the predicate in `state`.
    #[must_use]
    pub fn holds(&self, state: &S) -> bool {
        (self.test)(state)
    }
}

impl<S> fmt::Debug for StatePredicate<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("StatePredicate").field(&self.name).finish()
    }
}

/// A temporal property over infinite fair executions.
///
/// The four forms cover the paper's needs: `Always` is the safety shape
/// the BFS checker already handles (`AG p`), the other three are genuine
/// liveness and require fair-cycle analysis.
#[derive(Debug)]
pub enum Property<S> {
    /// `G p`: the predicate holds in every reachable state. A violation
    /// is witnessed by any path to a `¬p` state (the lasso's cycle is
    /// then an arbitrary continuation — every extension violates).
    Always(StatePredicate<S>),
    /// `F p`: every fair execution eventually reaches a `p` state. A
    /// violation is a fair lasso that stays in `¬p` forever.
    Eventually(StatePredicate<S>),
    /// `G (p → F q)`: whenever `p` holds, `q` follows eventually — the
    /// classic *leads-to*. A violation is a fair lasso with a `p ∧ ¬q`
    /// state after which `q` never holds again.
    LeadsTo(StatePredicate<S>, StatePredicate<S>),
    /// `G F p`: the predicate holds infinitely often on every fair
    /// execution. A violation is a fair lasso whose cycle avoids `p`.
    AlwaysEventually(StatePredicate<S>),
}

impl<S> Property<S> {
    /// `G p` from a named closure.
    pub fn always(name: impl Into<String>, test: impl Fn(&S) -> bool + 'static) -> Self {
        Property::Always(StatePredicate::new(name, test))
    }

    /// `F p` from a named closure.
    pub fn eventually(name: impl Into<String>, test: impl Fn(&S) -> bool + 'static) -> Self {
        Property::Eventually(StatePredicate::new(name, test))
    }

    /// `G (p → F q)` from two named closures.
    pub fn leads_to(
        p_name: impl Into<String>,
        p: impl Fn(&S) -> bool + 'static,
        q_name: impl Into<String>,
        q: impl Fn(&S) -> bool + 'static,
    ) -> Self {
        Property::LeadsTo(
            StatePredicate::new(p_name, p),
            StatePredicate::new(q_name, q),
        )
    }

    /// `G F p` from a named closure.
    pub fn always_eventually(name: impl Into<String>, test: impl Fn(&S) -> bool + 'static) -> Self {
        Property::AlwaysEventually(StatePredicate::new(name, test))
    }
}

impl<S> fmt::Display for Property<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Property::Always(p) => write!(f, "G({})", p.name()),
            Property::Eventually(p) => write!(f, "F({})", p.name()),
            Property::LeadsTo(p, q) => write!(f, "{} ~> {}", p.name(), q.name()),
            Property::AlwaysEventually(p) => write!(f, "GF({})", p.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_evaluate_and_carry_names() {
        let p = StatePredicate::new("even", |s: &u32| s.is_multiple_of(2));
        assert!(p.holds(&4));
        assert!(!p.holds(&5));
        assert_eq!(p.name(), "even");
        assert!(format!("{p:?}").contains("even"));
    }

    #[test]
    fn display_uses_temporal_notation() {
        let ev: Property<u32> = Property::eventually("done", |s| *s == 9);
        assert_eq!(ev.to_string(), "F(done)");
        let lt: Property<u32> = Property::leads_to("req", |s| *s == 1, "ack", |s| *s == 2);
        assert_eq!(lt.to_string(), "req ~> ack");
        let gf: Property<u32> = Property::always_eventually("tick", |s| *s == 0);
        assert_eq!(gf.to_string(), "GF(tick)");
        let g: Property<u32> = Property::always("safe", |s| *s < 10);
        assert_eq!(g.to_string(), "G(safe)");
    }
}
