//! Lasso-shaped counterexamples: a finite stem plus a repeating cycle.
//!
//! A violation of a liveness property is an *infinite* execution; in a
//! finite system every such execution can be presented as a lasso —
//! `s₀ … sₖ (c₀ … cₘ)^ω` — which is exactly the shape SMV and SPIN
//! print. The API mirrors [`tta_modelcheck::Trace`] (`states`,
//! `transitions`, `map`, `Display`) so downstream narration code treats
//! both the same way.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A counterexample to a liveness property: after the `stem`, the
/// system repeats the `cycle` forever.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lasso<S> {
    stem: Vec<S>,
    cycle: Vec<S>,
    stutter: bool,
}

impl<S> Lasso<S> {
    /// Builds a lasso. The `stem` leads from an initial state up to —
    /// but not including — the cycle entry `cycle[0]`; consecutive
    /// states (across the stem/cycle seam too) must be transitions, and
    /// the last cycle state must have an edge back to `cycle[0]`.
    /// `stutter` marks a synthetic self-loop at a deadlock state (the
    /// stutter extension), whose closing edge is *not* a model
    /// transition.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is empty — an infinite execution repeats at
    /// least one state.
    #[must_use]
    pub fn new(stem: Vec<S>, cycle: Vec<S>, stutter: bool) -> Self {
        assert!(
            !cycle.is_empty(),
            "a lasso cycle contains at least one state"
        );
        Lasso {
            stem,
            cycle,
            stutter,
        }
    }

    /// The finite prefix, initial state first (empty when an initial
    /// state lies on the cycle).
    #[must_use]
    pub fn stem(&self) -> &[S] {
        &self.stem
    }

    /// The repeating cycle; `cycle()[0]` is the entry state reached by
    /// the stem.
    #[must_use]
    pub fn cycle(&self) -> &[S] {
        &self.cycle
    }

    /// Whether the cycle is a synthetic stutter loop at a deadlock
    /// state (the system has no real transition there; the lasso
    /// presents the maximal finite run as an infinite one).
    #[must_use]
    pub fn is_stutter(&self) -> bool {
        self.stutter
    }

    /// Transitions in the stem (= states needed to reach the cycle).
    #[must_use]
    pub fn stem_len(&self) -> usize {
        self.stem.len()
    }

    /// Transitions around the cycle (including the closing edge).
    #[must_use]
    pub fn cycle_len(&self) -> usize {
        self.cycle.len()
    }

    /// All distinct path states: stem first, then the cycle.
    pub fn states(&self) -> impl Iterator<Item = &S> {
        self.stem.iter().chain(self.cycle.iter())
    }

    /// Consecutive `(from, to)` pairs along stem and cycle, ending with
    /// the closing edge `cycle.last() → cycle[0]`. For a stutter lasso
    /// the closing pair is the synthetic self-loop.
    pub fn transitions(&self) -> impl Iterator<Item = (&S, &S)> {
        let path: Vec<&S> = self.states().collect();
        let closing = (&self.cycle[self.cycle.len() - 1], &self.cycle[0]);
        (0..path.len().saturating_sub(1))
            .map(move |i| (path[i], path[i + 1]))
            .chain(std::iter::once(closing))
    }

    /// The execution unrolled: stem followed by `copies` repetitions of
    /// the cycle (useful for replaying a lasso through trace oracles).
    #[must_use]
    pub fn unroll(&self, copies: usize) -> Vec<S>
    where
        S: Clone,
    {
        let mut out = self.stem.clone();
        for _ in 0..copies {
            out.extend(self.cycle.iter().cloned());
        }
        out
    }

    /// Maps every state through `f`, preserving the lasso structure.
    #[must_use]
    pub fn map<T, F: FnMut(&S) -> T>(&self, mut f: F) -> Lasso<T> {
        Lasso {
            stem: self.stem.iter().map(&mut f).collect(),
            cycle: self.cycle.iter().map(&mut f).collect(),
            stutter: self.stutter,
        }
    }
}

impl<S: fmt::Display> fmt::Display for Lasso<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lasso: stem of {} transition(s), cycle of {}{}:",
            self.stem_len(),
            self.cycle_len(),
            if self.stutter { " (stutter)" } else { "" }
        )?;
        for (i, s) in self.stem.iter().enumerate() {
            writeln!(f, "  {i}) {s}")?;
        }
        writeln!(f, "  ── cycle (repeats forever) ──")?;
        for (i, s) in self.cycle.iter().enumerate() {
            writeln!(f, "  {}) {s}", self.stem.len() + i)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_expose_lasso_structure() {
        let l = Lasso::new(vec![0, 1], vec![2, 3], false);
        assert_eq!(l.stem(), [0, 1]);
        assert_eq!(l.cycle(), [2, 3]);
        assert_eq!(l.stem_len(), 2);
        assert_eq!(l.cycle_len(), 2);
        assert!(!l.is_stutter());
        let states: Vec<i32> = l.states().copied().collect();
        assert_eq!(states, [0, 1, 2, 3]);
    }

    #[test]
    fn transitions_include_seam_and_closing_edge() {
        let l = Lasso::new(vec![0, 1], vec![2, 3], false);
        let pairs: Vec<(i32, i32)> = l.transitions().map(|(a, b)| (*a, *b)).collect();
        assert_eq!(pairs, [(0, 1), (1, 2), (2, 3), (3, 2)]);
    }

    #[test]
    fn empty_stem_starts_on_the_cycle() {
        let l = Lasso::new(vec![], vec![7], true);
        assert_eq!(l.stem_len(), 0);
        let pairs: Vec<(i32, i32)> = l.transitions().map(|(a, b)| (*a, *b)).collect();
        assert_eq!(pairs, [(7, 7)]);
        assert!(l.is_stutter());
    }

    #[test]
    fn unroll_repeats_the_cycle() {
        let l = Lasso::new(vec![0], vec![1, 2], false);
        assert_eq!(l.unroll(3), [0, 1, 2, 1, 2, 1, 2]);
        assert_eq!(l.unroll(0), [0]);
    }

    #[test]
    fn map_preserves_shape() {
        let l = Lasso::new(vec![1], vec![2, 3], true).map(|s| s * 10);
        assert_eq!(l.stem(), [10]);
        assert_eq!(l.cycle(), [20, 30]);
        assert!(l.is_stutter());
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn empty_cycle_is_rejected() {
        let _: Lasso<u32> = Lasso::new(vec![1], vec![], false);
    }

    #[test]
    fn display_marks_the_cycle() {
        let l = Lasso::new(vec![5], vec![6], false);
        let s = l.to_string();
        assert!(s.contains("0) 5"), "{s}");
        assert!(s.contains("repeats forever"), "{s}");
        assert!(s.contains("1) 6"), "{s}");
    }
}
