//! Iterative Tarjan strongly-connected-component decomposition.
//!
//! Fair-cycle detection reduces to an SCC scan: every cycle lies inside
//! one SCC, and for *weak* fairness a single pass over each component's
//! states and internal edges decides whether a fair cycle exists in it
//! (see [`crate::FairGraph::check`]). Tarjan's algorithm is the classic
//! single-pass answer, but the textbook version recurses as deep as the
//! longest DFS path — easily millions of frames on protocol state
//! graphs — so this implementation manages an explicit frame stack and
//! never recurses.
//!
//! The decomposition runs on a CSR adjacency restricted to an optional
//! `active` mask, because the property algorithms repeatedly analyse
//! induced subgraphs (`¬p`-states, `¬q`-states reachable from a
//! request) of one shared graph.

/// Component marker for nodes outside the active restriction.
pub const NO_COMPONENT: u32 = u32::MAX;

/// The result of an SCC decomposition over (a subgraph of) a digraph.
#[derive(Debug, Clone)]
pub struct SccDecomposition {
    /// Component id per node; [`NO_COMPONENT`] for inactive nodes.
    /// Components are numbered in Tarjan completion order, which is a
    /// reverse topological order of the component DAG.
    pub component: Vec<u32>,
    /// Number of components found.
    pub count: usize,
}

impl SccDecomposition {
    /// The members of every component, grouped: `groups()[c]` lists the
    /// node ids of component `c` in ascending order.
    #[must_use]
    pub fn groups(&self) -> Vec<Vec<u32>> {
        let mut groups = vec![Vec::new(); self.count];
        for (node, &c) in self.component.iter().enumerate() {
            if c != NO_COMPONENT {
                groups[c as usize].push(node as u32);
            }
        }
        groups
    }
}

/// Iterative Tarjan over a CSR adjacency (`offsets.len() == n + 1`;
/// the successors of `v` are `targets[offsets[v]..offsets[v + 1]]`).
/// Nodes with `active[v] == false` — and every edge touching them — are
/// ignored; pass `None` to decompose the whole graph.
///
/// The decomposition is the hot inner loop of every liveness check
/// (each property runs it on a fresh restriction), so the active test
/// is monomorphized — the full-graph pass carries no mask branch at
/// all — and each DFS frame caches its CSR end offset instead of
/// re-reading `offsets[v + 1]` on every edge.
///
/// # Panics
///
/// Panics if the CSR arrays are inconsistent (offsets out of bounds).
#[must_use]
pub fn tarjan_csr(offsets: &[usize], targets: &[u32], active: Option<&[bool]>) -> SccDecomposition {
    match active {
        None => tarjan_impl(offsets, targets, &AllActive),
        Some(mask) => tarjan_impl(offsets, targets, &MaskActive(mask)),
    }
}

/// Monomorphization hook for the active-node restriction.
trait ActiveSet {
    fn contains(&self, v: u32) -> bool;
}

/// The whole-graph decomposition: no mask, no branch.
struct AllActive;
impl ActiveSet for AllActive {
    #[inline(always)]
    fn contains(&self, _: u32) -> bool {
        true
    }
}

/// An induced-subgraph decomposition over a boolean mask.
struct MaskActive<'a>(&'a [bool]);
impl ActiveSet for MaskActive<'_> {
    #[inline(always)]
    fn contains(&self, v: u32) -> bool {
        self.0[v as usize]
    }
}

fn tarjan_impl<A: ActiveSet>(offsets: &[usize], targets: &[u32], active: &A) -> SccDecomposition {
    let n = offsets.len().saturating_sub(1);

    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut component = vec![NO_COMPONENT; n];
    let mut tarjan_stack: Vec<u32> = Vec::new();
    // Explicit DFS frames: (node, next CSR cursor, CSR end). This is
    // the entire recursion state; depth is bounded by the number of
    // nodes, on the heap, not the thread stack.
    let mut frames: Vec<(u32, usize, usize)> = Vec::new();
    let mut next_index = 0u32;
    let mut count = 0usize;

    for root in 0..n as u32 {
        if !active.contains(root) || index[root as usize] != UNVISITED {
            continue;
        }
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        on_stack[root as usize] = true;
        tarjan_stack.push(root);
        frames.push((root, offsets[root as usize], offsets[root as usize + 1]));

        while let Some(&mut (v, ref mut cursor, end)) = frames.last_mut() {
            if *cursor < end {
                let w = targets[*cursor];
                *cursor += 1;
                if !active.contains(w) {
                    continue;
                }
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    on_stack[w as usize] = true;
                    tarjan_stack.push(w);
                    frames.push((w, offsets[w as usize], offsets[w as usize + 1]));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if lowlink[v as usize] == index[v as usize] {
                    let c = count as u32;
                    count += 1;
                    loop {
                        let w = tarjan_stack.pop().expect("root of an SCC is on the stack");
                        on_stack[w as usize] = false;
                        component[w as usize] = c;
                        if w == v {
                            break;
                        }
                    }
                }
                if let Some(&(parent, _, _)) = frames.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
            }
        }
    }

    SccDecomposition { component, count }
}

/// Strongly connected components of an explicit edge-list digraph over
/// nodes `0..node_count`, as sorted member lists (the convenience entry
/// point; the engine itself calls [`tarjan_csr`] on its shared CSR).
///
/// # Panics
///
/// Panics if an edge endpoint is `>= node_count`.
#[must_use]
pub fn strongly_connected_components(node_count: usize, edges: &[(u32, u32)]) -> Vec<Vec<u32>> {
    let (offsets, targets) = csr_from_edges(node_count, edges);
    tarjan_csr(&offsets, &targets, None).groups()
}

/// Builds a CSR adjacency from an edge list (counting sort by source).
pub(crate) fn csr_from_edges(node_count: usize, edges: &[(u32, u32)]) -> (Vec<usize>, Vec<u32>) {
    let mut offsets = vec![0usize; node_count + 1];
    for &(from, to) in edges {
        assert!(
            (from as usize) < node_count && (to as usize) < node_count,
            "edge ({from}, {to}) out of range for {node_count} nodes"
        );
        offsets[from as usize + 1] += 1;
    }
    for i in 0..node_count {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor = offsets.clone();
    let mut targets = vec![0u32; edges.len()];
    for &(from, to) in edges {
        targets[cursor[from as usize]] = to;
        cursor[from as usize] += 1;
    }
    (offsets, targets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normalized(mut groups: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
        groups.sort();
        groups
    }

    #[test]
    fn two_cycles_and_a_bridge() {
        // 0 ⇄ 1 → 2 ⇄ 3, plus isolated 4.
        let comps = strongly_connected_components(5, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        assert_eq!(normalized(comps), vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn self_loop_is_its_own_component() {
        let comps = strongly_connected_components(2, &[(0, 0), (0, 1)]);
        assert_eq!(normalized(comps), vec![vec![0], vec![1]]);
    }

    #[test]
    fn completion_order_is_reverse_topological() {
        // 0 → 1 → 2: component ids must not increase along edges.
        let (offsets, targets) = csr_from_edges(3, &[(0, 1), (1, 2)]);
        let scc = tarjan_csr(&offsets, &targets, None);
        assert_eq!(scc.count, 3);
        assert!(scc.component[0] > scc.component[1]);
        assert!(scc.component[1] > scc.component[2]);
    }

    #[test]
    fn inactive_nodes_break_cycles() {
        // 0 → 1 → 2 → 0 is a cycle, but masking node 1 splits it.
        let (offsets, targets) = csr_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let all = tarjan_csr(&offsets, &targets, None);
        assert_eq!(all.count, 1);
        let masked = tarjan_csr(&offsets, &targets, Some(&[true, false, true]));
        assert_eq!(masked.count, 2);
        assert_eq!(masked.component[1], NO_COMPONENT);
    }

    #[test]
    fn deep_path_does_not_overflow_the_stack() {
        // A 200k-node path closed into one giant cycle: the recursive
        // formulation would need a 200k-deep call stack.
        let n = 200_000u32;
        let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        let comps = strongly_connected_components(n as usize, &edges);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), n as usize);
    }

    #[test]
    fn parallel_edges_and_duplicates_are_harmless() {
        let comps = strongly_connected_components(2, &[(0, 1), (0, 1), (1, 0)]);
        assert_eq!(normalized(comps), vec![vec![0, 1]]);
    }
}
