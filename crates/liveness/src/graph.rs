//! The fair transition graph: the reachable state space built once, in
//! interned compact form, with per-edge action labels and per-state
//! enabledness masks.
//!
//! Liveness analysis needs the *whole* reachable graph (cycles live
//! anywhere), not just a frontier, so memory discipline matters even
//! more than in the BFS checker. The builder reuses PR 1's interning
//! stack — [`StateCodec`] encodings stored exactly once in a
//! [`StateArena`], BFS parents as `u32` indices — and adds a CSR
//! adjacency with one `u32` action-label bitmask per edge.
//!
//! Two details keep later verdicts sound:
//!
//! * **Enabledness is derived during generation.** An action is enabled
//!   in a state iff some *generated* successor takes it. The mask is
//!   accumulated over every generated edge — including edges into
//!   states dropped by the `max_states` budget — so "enabled but never
//!   taken on this cycle" can never be a truncation artifact and
//!   `Violated` verdicts remain sound on truncated graphs (a would-be
//!   `Holds` becomes `BudgetExhausted` instead).
//! * **Deadlocks get a stutter loop.** A state with no successors
//!   receives a synthetic self-loop (label 0), the standard stutter
//!   extension: every state then has an infinite behaviour, and a
//!   maximal finite run appears as a lasso whose cycle repeats the
//!   final state. The loop is marked so renderers do not present it as
//!   a model transition.

use crate::fairness::{FairAction, MAX_FAIR_ACTIONS};
use std::fmt;
use std::time::{Duration, Instant};
use tta_modelcheck::{Interned, StateArena, StateCodec, TransitionSystem, NO_PARENT};

/// How often one registered fairness action is actually exercised in a
/// built [`FairGraph`] (see [`FairGraph::action_usage`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionUsage {
    /// The action's name, as registered.
    pub name: String,
    /// States whose enabledness mask includes this action (counted over
    /// all generated edges, so sound under truncation).
    pub enabled_states: u64,
    /// Stored edges labeled with this action.
    pub labeled_edges: u64,
}

/// The reachable state graph of a [`TransitionSystem`], interned through
/// a [`StateCodec`], labeled with weak-fairness actions.
pub struct FairGraph<'c, C: StateCodec> {
    codec: &'c C,
    arena: StateArena<C::Encoded>,
    offsets: Vec<usize>,
    targets: Vec<u32>,
    labels: Vec<u32>,
    enabled: Vec<u32>,
    deadlock: Vec<bool>,
    initial: Vec<u32>,
    action_names: Vec<String>,
    action_mask: u32,
    truncated: bool,
    edges_generated: u64,
    build_time: Duration,
}

impl<C: StateCodec> fmt::Debug for FairGraph<'_, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FairGraph")
            .field("states", &self.state_count())
            .field("edges", &self.edge_count())
            .field("actions", &self.action_names)
            .field("truncated", &self.truncated)
            .finish_non_exhaustive()
    }
}

impl<'c, C: StateCodec> FairGraph<'c, C> {
    /// Explores `system` breadth-first and builds the labeled graph,
    /// keeping at most `max_states` distinct states.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_FAIR_ACTIONS`] fairness constraints are
    /// supplied, or if the state space exceeds `u32` addressing.
    #[must_use]
    pub fn build<T>(
        system: &T,
        codec: &'c C,
        fairness: &[FairAction<C::State>],
        max_states: u64,
    ) -> Self
    where
        T: TransitionSystem<State = C::State>,
    {
        assert!(
            fairness.len() <= MAX_FAIR_ACTIONS,
            "at most {MAX_FAIR_ACTIONS} weak-fairness constraints per graph (got {})",
            fairness.len()
        );
        let start = Instant::now();
        let max_states = max_states.min(u64::from(u32::MAX - 1));

        let mut arena: StateArena<C::Encoded> = StateArena::new();
        let mut edges: Vec<(u32, u32, u32)> = Vec::new();
        let mut enabled: Vec<u32> = Vec::new();
        let mut deadlock: Vec<bool> = Vec::new();
        let mut initial: Vec<u32> = Vec::new();
        let mut truncated = false;
        let mut edges_generated = 0u64;

        for init in system.initial_states() {
            if (arena.len() as u64) >= max_states {
                truncated = true;
                break;
            }
            if let Interned::New(id) = arena.insert_if_absent(codec.encode(&init), NO_PARENT) {
                initial.push(id);
            }
        }

        // Arena ids are assigned in insertion order, so scanning them in
        // order with new states appended at the tail is exactly BFS, and
        // arena parents give shortest stems.
        let mut succs: Vec<C::State> = Vec::new();
        let mut cursor = 0u32;
        while (cursor as usize) < arena.len() {
            let id = cursor;
            cursor += 1;
            let state = codec.decode(arena.get(id));
            succs.clear();
            system.successors(&state, &mut succs);
            let mut mask = 0u32;
            if succs.is_empty() {
                // Stutter extension: synthetic self-loop, no labels.
                edges.push((id, id, 0));
                enabled.push(0);
                deadlock.push(true);
                continue;
            }
            for succ in &succs {
                edges_generated += 1;
                let mut label = 0u32;
                for (i, action) in fairness.iter().enumerate() {
                    if action.taken(&state, succ) {
                        label |= 1 << i;
                    }
                }
                // Enabledness counts every generated edge, kept or not.
                mask |= label;
                let encoded = codec.encode(succ);
                let target = match arena.lookup(&encoded) {
                    Some(t) => Some(t),
                    None if (arena.len() as u64) < max_states => {
                        match arena.insert_if_absent(encoded, id) {
                            Interned::New(t) => Some(t),
                            Interned::Present(t) => Some(t),
                        }
                    }
                    None => {
                        truncated = true;
                        None
                    }
                };
                if let Some(t) = target {
                    edges.push((id, t, label));
                }
            }
            enabled.push(mask);
            deadlock.push(false);
        }

        // Counting sort into CSR, labels carried alongside.
        let n = arena.len();
        let mut offsets = vec![0usize; n + 1];
        for &(from, _, _) in &edges {
            offsets[from as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut fill = offsets.clone();
        let mut targets = vec![0u32; edges.len()];
        let mut labels = vec![0u32; edges.len()];
        for &(from, to, label) in &edges {
            let slot = fill[from as usize];
            targets[slot] = to;
            labels[slot] = label;
            fill[from as usize] += 1;
        }

        FairGraph {
            codec,
            arena,
            offsets,
            targets,
            labels,
            enabled,
            deadlock,
            initial,
            action_names: fairness.iter().map(|a| a.name().to_string()).collect(),
            action_mask: if fairness.is_empty() {
                0
            } else {
                u32::MAX >> (32 - fairness.len())
            },
            truncated,
            edges_generated,
            build_time: start.elapsed(),
        }
    }

    /// Number of distinct reachable states kept.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.arena.len()
    }

    /// Number of stored edges (including synthetic stutter loops).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Number of transitions the model generated, dropped or kept
    /// (stutter loops excluded).
    #[must_use]
    pub fn edges_generated(&self) -> u64 {
        self.edges_generated
    }

    /// Whether the `max_states` budget cut off part of the graph.
    #[must_use]
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Ids of the initial states.
    #[must_use]
    pub fn initial(&self) -> &[u32] {
        &self.initial
    }

    /// Whether `id` is a deadlock state carrying a synthetic stutter
    /// loop.
    #[must_use]
    pub fn is_deadlock(&self, id: u32) -> bool {
        self.deadlock[id as usize]
    }

    /// Decodes the state stored at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn state(&self, id: u32) -> C::State {
        self.codec.decode(self.arena.get(id))
    }

    /// Names of the registered fairness actions, bit order.
    #[must_use]
    pub fn action_names(&self) -> &[String] {
        &self.action_names
    }

    /// Wall-clock time spent building the graph.
    #[must_use]
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Approximate resident bytes: the interned arena plus the CSR
    /// arrays.
    #[must_use]
    pub fn approx_bytes(&self) -> u64 {
        self.arena.approx_bytes()
            + (self.offsets.capacity() * std::mem::size_of::<usize>()
                + self.targets.capacity() * std::mem::size_of::<u32>()
                + self.labels.capacity() * std::mem::size_of::<u32>()
                + self.enabled.capacity() * std::mem::size_of::<u32>()
                + self.deadlock.capacity()) as u64
    }

    /// Outgoing `(target, label)` pairs of `v`, stutter loop included.
    ///
    /// The label is the bitmask of fairness actions the edge takes, in
    /// [`Self::action_names`] bit order (0 for the synthetic stutter
    /// loop). Public so graph consumers beyond the property algorithms —
    /// the vacuity and coverage analyses in `tta-modellint` — can walk
    /// the labeled adjacency without rebuilding the space.
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let range = self.offsets[v as usize]..self.offsets[v as usize + 1];
        range
            .clone()
            .map(move |i| (self.targets[i], self.labels[i]))
    }

    /// Actions enabled in `v`, as a bitmask in [`Self::action_names`]
    /// bit order. Derived over **all generated edges**, including edges
    /// dropped by the `max_states` budget, so a zero bit is never a
    /// truncation artifact.
    #[must_use]
    pub fn enabled_mask(&self, v: u32) -> u32 {
        self.enabled[v as usize]
    }

    /// Per-action usage statistics over the kept graph: for each
    /// registered fairness action, the number of states where it is
    /// enabled and the number of stored edges labeled with it.
    ///
    /// A fairness constraint whose labeled-edge count is zero constrains
    /// nothing — every fair cycle trivially satisfies it — which is the
    /// `ML04-unused-fairness` lint in `tta-modellint`.
    #[must_use]
    pub fn action_usage(&self) -> Vec<ActionUsage> {
        let mut usage: Vec<ActionUsage> = self
            .action_names
            .iter()
            .map(|name| ActionUsage {
                name: name.clone(),
                enabled_states: 0,
                labeled_edges: 0,
            })
            .collect();
        for &mask in &self.enabled {
            let mut bits = mask;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                usage[i].enabled_states += 1;
                bits &= bits - 1;
            }
        }
        for &label in &self.labels {
            let mut bits = label;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                usage[i].labeled_edges += 1;
                bits &= bits - 1;
            }
        }
        usage
    }

    /// BFS depth of `v`: the length in transitions of the shortest
    /// stem from an initial state (0 for initial states). Used by the
    /// vacuity analyses to report how deep the first witness lies.
    #[must_use]
    pub fn bfs_depth(&self, v: u32) -> usize {
        self.stem_ids_to(v).len() - 1
    }

    // ── internals shared with the property algorithms (check.rs) ──

    /// Bitmask covering every registered action.
    pub(crate) fn all_actions(&self) -> u32 {
        self.action_mask
    }

    /// BFS parent of `v` in the arena ([`NO_PARENT`] for initial
    /// states).
    pub(crate) fn bfs_parent(&self, v: u32) -> u32 {
        self.arena.parent(v)
    }

    /// The shortest-path id chain from an initial state to `v`
    /// (inclusive), via arena parents.
    pub(crate) fn stem_ids_to(&self, v: u32) -> Vec<u32> {
        let mut chain = vec![v];
        let mut cur = v;
        while self.bfs_parent(cur) != NO_PARENT {
            cur = self.bfs_parent(cur);
            chain.push(cur);
        }
        chain.reverse();
        chain
    }

    /// CSR slices for the SCC decomposition.
    pub(crate) fn csr(&self) -> (&[usize], &[u32]) {
        (&self.offsets, &self.targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_modelcheck::IdentityCodec;

    /// 0 → 1 → 2 → 1 (cycle), plus 0 → 3 (deadlock).
    struct Diamond;
    impl TransitionSystem for Diamond {
        type State = u32;
        fn initial_states(&self) -> Vec<u32> {
            vec![0]
        }
        fn successors(&self, s: &u32, out: &mut Vec<u32>) {
            match s {
                0 => out.extend([1, 3]),
                1 => out.push(2),
                2 => out.push(1),
                _ => {}
            }
        }
    }

    fn build(
        fairness: &[FairAction<u32>],
        max_states: u64,
    ) -> FairGraph<'static, IdentityCodec<u32>> {
        static CODEC: IdentityCodec<u32> = IdentityCodec::new();
        FairGraph::build(&Diamond, &CODEC, fairness, max_states)
    }

    #[test]
    fn builds_states_edges_and_stutter_loop() {
        let g = build(&[], 1 << 20);
        assert_eq!(g.state_count(), 4);
        // 4 real edges + 1 stutter loop on the deadlock state.
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.edges_generated(), 4);
        assert!(!g.is_truncated());
        let dead = (0..4).find(|&v| g.is_deadlock(v)).expect("one deadlock");
        assert_eq!(g.state(dead), 3);
        assert_eq!(g.neighbors(dead).collect::<Vec<_>>(), [(dead, 0)]);
    }

    #[test]
    fn labels_and_enabledness_are_derived_from_actions() {
        let forward = FairAction::new("forward", |a: &u32, b: &u32| b > a);
        let g = build(&[forward], 1 << 20);
        let id1 = (0..4).find(|&v| g.state(v) == 1).unwrap();
        let id2 = (0..4).find(|&v| g.state(v) == 2).unwrap();
        // 1 → 2 takes "forward"; 2 → 1 does not, so "forward" is
        // enabled at 1 but not at 2.
        assert_eq!(g.enabled_mask(id1), 1);
        assert_eq!(g.enabled_mask(id2), 0);
        assert_eq!(g.all_actions(), 1);
        let labels: Vec<u32> = g.neighbors(id1).map(|(_, l)| l).collect();
        assert_eq!(labels, [1]);
    }

    #[test]
    fn action_usage_counts_states_and_edges() {
        let forward = FairAction::new("forward", |a: &u32, b: &u32| b > a);
        let never = FairAction::new("never", |_: &u32, _: &u32| false);
        let g = build(&[forward, never], 1 << 20);
        let usage = g.action_usage();
        assert_eq!(usage.len(), 2);
        // "forward" is taken on 0→1, 0→3 and 1→2: enabled at states
        // 0 and 1, labeling three stored edges.
        assert_eq!(usage[0].name, "forward");
        assert_eq!(usage[0].enabled_states, 2);
        assert_eq!(usage[0].labeled_edges, 3);
        assert_eq!(usage[1].name, "never");
        assert_eq!(usage[1].enabled_states, 0);
        assert_eq!(usage[1].labeled_edges, 0);
    }

    #[test]
    fn truncation_keeps_enabledness_of_dropped_edges() {
        let forward = FairAction::new("forward", |a: &u32, b: &u32| b > a);
        let g = build(&[forward], 2);
        assert!(g.is_truncated());
        assert_eq!(g.state_count(), 2);
        // State 1's only successor (2) was dropped, but "forward" must
        // still read as enabled there.
        let id1 = (0..2).find(|&v| g.state(v) == 1).unwrap();
        assert_eq!(g.enabled_mask(id1), 1);
    }

    #[test]
    fn stem_ids_follow_bfs_parents() {
        let g = build(&[], 1 << 20);
        let id2 = (0..4).find(|&v| g.state(v) == 2).unwrap();
        let stem: Vec<u32> = g.stem_ids_to(id2).iter().map(|&v| g.state(v)).collect();
        assert_eq!(stem, [0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "weak-fairness constraints")]
    fn too_many_actions_are_rejected() {
        let actions: Vec<FairAction<u32>> = (0..33)
            .map(|i| FairAction::new(format!("a{i}"), |_: &u32, _: &u32| false))
            .collect();
        let _ = build(&actions, 1 << 20);
    }
}
