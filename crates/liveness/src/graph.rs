//! The fair transition graph: the reachable state space built once, in
//! interned compact form, with per-edge action labels and per-state
//! enabledness masks.
//!
//! Liveness analysis needs the *whole* reachable graph (cycles live
//! anywhere), not just a frontier, so memory discipline matters even
//! more than in the BFS checker. The builder reuses PR 1's interning
//! stack — [`StateCodec`] encodings stored exactly once in a
//! [`StateArena`], BFS parents as `u32` indices — and adds a CSR
//! adjacency with one `u32` action-label bitmask per edge.
//!
//! Two details keep later verdicts sound:
//!
//! * **Enabledness is derived during generation.** An action is enabled
//!   in a state iff some *generated* successor takes it. The mask is
//!   accumulated over every generated edge — including edges into
//!   states dropped by the `max_states` budget — so "enabled but never
//!   taken on this cycle" can never be a truncation artifact and
//!   `Violated` verdicts remain sound on truncated graphs (a would-be
//!   `Holds` becomes `BudgetExhausted` instead).
//! * **Deadlocks get a stutter loop.** A state with no successors
//!   receives a synthetic self-loop (label 0), the standard stutter
//!   extension: every state then has an infinite behaviour, and a
//!   maximal finite run appears as a lasso whose cycle repeats the
//!   final state. The loop is marked so renderers do not present it as
//!   a model transition.

use crate::fairness::{FairAction, MAX_FAIR_ACTIONS};
use std::fmt;
use std::time::{Duration, Instant};
use tta_modelcheck::hashing::fx_hash;
use tta_modelcheck::{map_chunks, Interned, StateArena, StateCodec, TransitionSystem, NO_PARENT};

/// Arena ids per stolen chunk in [`FairGraph::build_with_threads`].
/// Graph construction decodes, expands and re-encodes per state — far
/// more work than the safety explorer's successor step — so chunks can
/// be smaller before claim-counter contention shows.
const BUILD_CHUNK_STATES: usize = 512;

/// A worker's resolution of one generated edge target against the
/// wave-start arena snapshot. `Existing` ids are final (the arena only
/// grows); proposals are re-resolved against the live arena at merge,
/// where states inserted earlier in the same wave become visible.
enum EdgeTarget<E> {
    Existing(u32),
    Proposal { hash: u64, encoded: E },
}

/// Everything a worker computed for one scanned state: labeled edges
/// with snapshot-resolved targets, the enabledness mask over *all*
/// generated successors, and the generated-edge count.
struct NodeExpansion<E> {
    edges: Vec<(EdgeTarget<E>, u32)>,
    mask: u32,
    deadlock: bool,
    generated: u64,
}

/// How often one registered fairness action is actually exercised in a
/// built [`FairGraph`] (see [`FairGraph::action_usage`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionUsage {
    /// The action's name, as registered.
    pub name: String,
    /// States whose enabledness mask includes this action (counted over
    /// all generated edges, so sound under truncation).
    pub enabled_states: u64,
    /// Stored edges labeled with this action.
    pub labeled_edges: u64,
}

/// The reachable state graph of a [`TransitionSystem`], interned through
/// a [`StateCodec`], labeled with weak-fairness actions.
pub struct FairGraph<'c, C: StateCodec> {
    codec: &'c C,
    arena: StateArena<C::Encoded>,
    offsets: Vec<usize>,
    targets: Vec<u32>,
    labels: Vec<u32>,
    enabled: Vec<u32>,
    deadlock: Vec<bool>,
    initial: Vec<u32>,
    action_names: Vec<String>,
    action_mask: u32,
    truncated: bool,
    edges_generated: u64,
    build_time: Duration,
}

impl<C: StateCodec> fmt::Debug for FairGraph<'_, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FairGraph")
            .field("states", &self.state_count())
            .field("edges", &self.edge_count())
            .field("actions", &self.action_names)
            .field("truncated", &self.truncated)
            .finish_non_exhaustive()
    }
}

impl<'c, C: StateCodec> FairGraph<'c, C> {
    /// Explores `system` breadth-first and builds the labeled graph,
    /// keeping at most `max_states` distinct states.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_FAIR_ACTIONS`] fairness constraints are
    /// supplied, or if the state space exceeds `u32` addressing.
    #[must_use]
    pub fn build<T>(
        system: &T,
        codec: &'c C,
        fairness: &[FairAction<C::State>],
        max_states: u64,
    ) -> Self
    where
        T: TransitionSystem<State = C::State>,
    {
        // detlint: allow(DL02) reason=elapsed-time stats only; reported out-of-band, never part of the verification result
        let start = Instant::now();
        let (max_states, mut arena, initial, mut truncated) =
            Self::seed(system, codec, fairness, max_states);
        let mut edges: Vec<(u32, u32, u32)> = Vec::new();
        let mut enabled: Vec<u32> = Vec::new();
        let mut deadlock: Vec<bool> = Vec::new();
        let mut edges_generated = 0u64;

        // Arena ids are assigned in insertion order, so scanning them in
        // order with new states appended at the tail is exactly BFS, and
        // arena parents give shortest stems.
        let mut succs: Vec<C::State> = Vec::new();
        let mut cursor = 0u32;
        while (cursor as usize) < arena.len() {
            let id = cursor;
            cursor += 1;
            let state = codec.decode(arena.get(id));
            succs.clear();
            system.successors(&state, &mut succs);
            let mut mask = 0u32;
            if succs.is_empty() {
                // Stutter extension: synthetic self-loop, no labels.
                edges.push((id, id, 0));
                enabled.push(0);
                deadlock.push(true);
                continue;
            }
            for succ in &succs {
                edges_generated += 1;
                let label = edge_label(fairness, &state, succ);
                // Enabledness counts every generated edge, kept or not.
                mask |= label;
                let encoded = codec.encode(succ);
                let hash = fx_hash(&encoded);
                let target = match arena.lookup_hashed(hash, &encoded) {
                    Some(t) => Some(t),
                    None if (arena.len() as u64) < max_states => {
                        Some(arena.insert_new_hashed(hash, encoded, id))
                    }
                    None => {
                        truncated = true;
                        None
                    }
                };
                if let Some(t) = target {
                    edges.push((id, t, label));
                }
            }
            enabled.push(mask);
            deadlock.push(false);
        }

        Self::assemble(
            codec,
            arena,
            &edges,
            enabled,
            deadlock,
            initial,
            fairness,
            truncated,
            edges_generated,
            start,
        )
    }

    /// [`Self::build`] with `threads` worker threads expanding each BFS
    /// wave in parallel.
    ///
    /// The scan processes one *wave* at a time — the arena ids appended
    /// since the previous wave. Workers steal fixed-size chunks of the
    /// wave, expand and label each state, and resolve edge targets
    /// against the wave-start arena snapshot; unresolved targets come
    /// back as proposals (hash + encoding). The merge then replays the
    /// chunks in wave order against the live arena, so inserts happen in
    /// exactly the sequential scan's order: states, ids, parents, edges,
    /// labels and the truncation flag are bit-identical to
    /// [`Self::build`] at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero, plus everything [`Self::build`]
    /// panics on.
    #[must_use]
    pub fn build_with_threads<T>(
        system: &T,
        codec: &'c C,
        fairness: &[FairAction<C::State>],
        max_states: u64,
        threads: usize,
    ) -> Self
    where
        T: TransitionSystem<State = C::State> + Sync,
        C: Sync,
        C::Encoded: Send + Sync,
    {
        assert!(threads >= 1, "at least one worker thread is required");
        if threads == 1 {
            return Self::build(system, codec, fairness, max_states);
        }
        // detlint: allow(DL02) reason=elapsed-time stats only; reported out-of-band, never part of the verification result
        let start = Instant::now();
        let (max_states, mut arena, initial, mut truncated) =
            Self::seed(system, codec, fairness, max_states);
        let mut edges: Vec<(u32, u32, u32)> = Vec::new();
        let mut enabled: Vec<u32> = Vec::new();
        let mut deadlock: Vec<bool> = Vec::new();
        let mut edges_generated = 0u64;

        let mut wave_start = 0u32;
        while (wave_start as usize) < arena.len() {
            let wave_end = arena.len() as u32;
            let wave: Vec<u32> = (wave_start..wave_end).collect();
            let expansions = {
                let shared: &StateArena<C::Encoded> = &arena;
                map_chunks(&wave, BUILD_CHUNK_STATES, threads, &|_, ids: &[u32]| {
                    expand_wave_chunk(system, codec, shared, fairness, ids)
                })
            };
            let mut id = wave_start;
            wave_start = wave_end;
            for node in expansions.into_iter().flatten() {
                if node.deadlock {
                    edges.push((id, id, 0));
                    enabled.push(0);
                    deadlock.push(true);
                    id += 1;
                    continue;
                }
                edges_generated += node.generated;
                for (target, label) in node.edges {
                    let resolved = match target {
                        EdgeTarget::Existing(t) => Some(t),
                        EdgeTarget::Proposal { hash, encoded } => {
                            match arena.lookup_hashed(hash, &encoded) {
                                Some(t) => Some(t),
                                None if (arena.len() as u64) < max_states => {
                                    Some(arena.insert_new_hashed(hash, encoded, id))
                                }
                                None => {
                                    truncated = true;
                                    None
                                }
                            }
                        }
                    };
                    if let Some(t) = resolved {
                        edges.push((id, t, label));
                    }
                }
                enabled.push(node.mask);
                deadlock.push(false);
                id += 1;
            }
        }

        Self::assemble(
            codec,
            arena,
            &edges,
            enabled,
            deadlock,
            initial,
            fairness,
            truncated,
            edges_generated,
            start,
        )
    }

    /// Shared prologue: validate the fairness set, clamp the budget to
    /// `u32` addressing and intern the initial states.
    fn seed<T>(
        system: &T,
        codec: &C,
        fairness: &[FairAction<C::State>],
        max_states: u64,
    ) -> (u64, StateArena<C::Encoded>, Vec<u32>, bool)
    where
        T: TransitionSystem<State = C::State>,
    {
        assert!(
            fairness.len() <= MAX_FAIR_ACTIONS,
            "at most {MAX_FAIR_ACTIONS} weak-fairness constraints per graph (got {})",
            fairness.len()
        );
        let max_states = max_states.min(u64::from(u32::MAX - 1));
        let mut arena: StateArena<C::Encoded> = StateArena::new();
        let mut initial: Vec<u32> = Vec::new();
        let mut truncated = false;
        for init in system.initial_states() {
            if (arena.len() as u64) >= max_states {
                truncated = true;
                break;
            }
            if let Interned::New(id) = arena.insert_if_absent(codec.encode(&init), NO_PARENT) {
                initial.push(id);
            }
        }
        (max_states, arena, initial, truncated)
    }

    /// Shared epilogue: counting-sort the edge list into CSR (labels
    /// carried alongside) and assemble the graph.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        codec: &'c C,
        arena: StateArena<C::Encoded>,
        edges: &[(u32, u32, u32)],
        enabled: Vec<u32>,
        deadlock: Vec<bool>,
        initial: Vec<u32>,
        fairness: &[FairAction<C::State>],
        truncated: bool,
        edges_generated: u64,
        start: Instant,
    ) -> Self {
        let n = arena.len();
        let mut offsets = vec![0usize; n + 1];
        for &(from, _, _) in edges {
            offsets[from as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut fill = offsets.clone();
        let mut targets = vec![0u32; edges.len()];
        let mut labels = vec![0u32; edges.len()];
        for &(from, to, label) in edges {
            let slot = fill[from as usize];
            targets[slot] = to;
            labels[slot] = label;
            fill[from as usize] += 1;
        }

        FairGraph {
            codec,
            arena,
            offsets,
            targets,
            labels,
            enabled,
            deadlock,
            initial,
            action_names: fairness.iter().map(|a| a.name().to_string()).collect(),
            action_mask: if fairness.is_empty() {
                0
            } else {
                u32::MAX >> (32 - fairness.len())
            },
            truncated,
            edges_generated,
            build_time: start.elapsed(),
        }
    }

    /// Number of distinct reachable states kept.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.arena.len()
    }

    /// Number of stored edges (including synthetic stutter loops).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Number of transitions the model generated, dropped or kept
    /// (stutter loops excluded).
    #[must_use]
    pub fn edges_generated(&self) -> u64 {
        self.edges_generated
    }

    /// Whether the `max_states` budget cut off part of the graph.
    #[must_use]
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Ids of the initial states.
    #[must_use]
    pub fn initial(&self) -> &[u32] {
        &self.initial
    }

    /// Whether `id` is a deadlock state carrying a synthetic stutter
    /// loop.
    #[must_use]
    pub fn is_deadlock(&self, id: u32) -> bool {
        self.deadlock[id as usize]
    }

    /// Decodes the state stored at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn state(&self, id: u32) -> C::State {
        self.codec.decode(self.arena.get(id))
    }

    /// Names of the registered fairness actions, bit order.
    #[must_use]
    pub fn action_names(&self) -> &[String] {
        &self.action_names
    }

    /// Wall-clock time spent building the graph.
    #[must_use]
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Approximate resident bytes: the interned arena plus the CSR
    /// arrays.
    #[must_use]
    pub fn approx_bytes(&self) -> u64 {
        self.arena.approx_bytes()
            + (self.offsets.capacity() * std::mem::size_of::<usize>()
                + self.targets.capacity() * std::mem::size_of::<u32>()
                + self.labels.capacity() * std::mem::size_of::<u32>()
                + self.enabled.capacity() * std::mem::size_of::<u32>()
                + self.deadlock.capacity()) as u64
    }

    /// Outgoing `(target, label)` pairs of `v`, stutter loop included.
    ///
    /// The label is the bitmask of fairness actions the edge takes, in
    /// [`Self::action_names`] bit order (0 for the synthetic stutter
    /// loop). Public so graph consumers beyond the property algorithms —
    /// the vacuity and coverage analyses in `tta-modellint` — can walk
    /// the labeled adjacency without rebuilding the space.
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let range = self.offsets[v as usize]..self.offsets[v as usize + 1];
        range
            .clone()
            .map(move |i| (self.targets[i], self.labels[i]))
    }

    /// Actions enabled in `v`, as a bitmask in [`Self::action_names`]
    /// bit order. Derived over **all generated edges**, including edges
    /// dropped by the `max_states` budget, so a zero bit is never a
    /// truncation artifact.
    #[must_use]
    pub fn enabled_mask(&self, v: u32) -> u32 {
        self.enabled[v as usize]
    }

    /// Per-action usage statistics over the kept graph: for each
    /// registered fairness action, the number of states where it is
    /// enabled and the number of stored edges labeled with it.
    ///
    /// A fairness constraint whose labeled-edge count is zero constrains
    /// nothing — every fair cycle trivially satisfies it — which is the
    /// `ML04-unused-fairness` lint in `tta-modellint`.
    #[must_use]
    pub fn action_usage(&self) -> Vec<ActionUsage> {
        let mut usage: Vec<ActionUsage> = self
            .action_names
            .iter()
            .map(|name| ActionUsage {
                name: name.clone(),
                enabled_states: 0,
                labeled_edges: 0,
            })
            .collect();
        for &mask in &self.enabled {
            let mut bits = mask;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                usage[i].enabled_states += 1;
                bits &= bits - 1;
            }
        }
        for &label in &self.labels {
            let mut bits = label;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                usage[i].labeled_edges += 1;
                bits &= bits - 1;
            }
        }
        usage
    }

    /// BFS depth of `v`: the length in transitions of the shortest
    /// stem from an initial state (0 for initial states). Used by the
    /// vacuity analyses to report how deep the first witness lies.
    #[must_use]
    pub fn bfs_depth(&self, v: u32) -> usize {
        self.stem_ids_to(v).len() - 1
    }

    // ── internals shared with the property algorithms (check.rs) ──

    /// Bitmask covering every registered action.
    pub(crate) fn all_actions(&self) -> u32 {
        self.action_mask
    }

    /// BFS parent of `v` in the arena ([`NO_PARENT`] for initial
    /// states).
    pub(crate) fn bfs_parent(&self, v: u32) -> u32 {
        self.arena.parent(v)
    }

    /// The shortest-path id chain from an initial state to `v`
    /// (inclusive), via arena parents.
    pub(crate) fn stem_ids_to(&self, v: u32) -> Vec<u32> {
        let mut chain = vec![v];
        let mut cur = v;
        while self.bfs_parent(cur) != NO_PARENT {
            cur = self.bfs_parent(cur);
            chain.push(cur);
        }
        chain.reverse();
        chain
    }

    /// CSR slices for the SCC decomposition.
    pub(crate) fn csr(&self) -> (&[usize], &[u32]) {
        (&self.offsets, &self.targets)
    }
}

/// The fairness-action bitmask of one transition.
fn edge_label<S>(fairness: &[FairAction<S>], from: &S, to: &S) -> u32 {
    let mut label = 0u32;
    for (i, action) in fairness.iter().enumerate() {
        if action.taken(from, to) {
            label |= 1 << i;
        }
    }
    label
}

/// Worker body for [`FairGraph::build_with_threads`]: expand and label
/// one stolen chunk of wave ids against the read-only arena snapshot.
fn expand_wave_chunk<T, C>(
    system: &T,
    codec: &C,
    snapshot: &StateArena<C::Encoded>,
    fairness: &[FairAction<C::State>],
    ids: &[u32],
) -> Vec<NodeExpansion<C::Encoded>>
where
    C: StateCodec,
    T: TransitionSystem<State = C::State>,
{
    let mut out = Vec::with_capacity(ids.len());
    let mut succs: Vec<C::State> = Vec::new();
    for &id in ids {
        let state = codec.decode(snapshot.get(id));
        succs.clear();
        system.successors(&state, &mut succs);
        if succs.is_empty() {
            out.push(NodeExpansion {
                edges: Vec::new(),
                mask: 0,
                deadlock: true,
                generated: 0,
            });
            continue;
        }
        let mut mask = 0u32;
        let mut node_edges = Vec::with_capacity(succs.len());
        for succ in &succs {
            let label = edge_label(fairness, &state, succ);
            mask |= label;
            let encoded = codec.encode(succ);
            let hash = fx_hash(&encoded);
            let target = match snapshot.lookup_hashed(hash, &encoded) {
                Some(t) => EdgeTarget::Existing(t),
                None => EdgeTarget::Proposal { hash, encoded },
            };
            node_edges.push((target, label));
        }
        out.push(NodeExpansion {
            edges: node_edges,
            mask,
            deadlock: false,
            generated: succs.len() as u64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_modelcheck::IdentityCodec;

    /// 0 → 1 → 2 → 1 (cycle), plus 0 → 3 (deadlock).
    struct Diamond;
    impl TransitionSystem for Diamond {
        type State = u32;
        fn initial_states(&self) -> Vec<u32> {
            vec![0]
        }
        fn successors(&self, s: &u32, out: &mut Vec<u32>) {
            match s {
                0 => out.extend([1, 3]),
                1 => out.push(2),
                2 => out.push(1),
                _ => {}
            }
        }
    }

    fn build(
        fairness: &[FairAction<u32>],
        max_states: u64,
    ) -> FairGraph<'static, IdentityCodec<u32>> {
        static CODEC: IdentityCodec<u32> = IdentityCodec::new();
        FairGraph::build(&Diamond, &CODEC, fairness, max_states)
    }

    #[test]
    fn builds_states_edges_and_stutter_loop() {
        let g = build(&[], 1 << 20);
        assert_eq!(g.state_count(), 4);
        // 4 real edges + 1 stutter loop on the deadlock state.
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.edges_generated(), 4);
        assert!(!g.is_truncated());
        let dead = (0..4).find(|&v| g.is_deadlock(v)).expect("one deadlock");
        assert_eq!(g.state(dead), 3);
        assert_eq!(g.neighbors(dead).collect::<Vec<_>>(), [(dead, 0)]);
    }

    #[test]
    fn labels_and_enabledness_are_derived_from_actions() {
        let forward = FairAction::new("forward", |a: &u32, b: &u32| b > a);
        let g = build(&[forward], 1 << 20);
        let id1 = (0..4).find(|&v| g.state(v) == 1).unwrap();
        let id2 = (0..4).find(|&v| g.state(v) == 2).unwrap();
        // 1 → 2 takes "forward"; 2 → 1 does not, so "forward" is
        // enabled at 1 but not at 2.
        assert_eq!(g.enabled_mask(id1), 1);
        assert_eq!(g.enabled_mask(id2), 0);
        assert_eq!(g.all_actions(), 1);
        let labels: Vec<u32> = g.neighbors(id1).map(|(_, l)| l).collect();
        assert_eq!(labels, [1]);
    }

    #[test]
    fn action_usage_counts_states_and_edges() {
        let forward = FairAction::new("forward", |a: &u32, b: &u32| b > a);
        let never = FairAction::new("never", |_: &u32, _: &u32| false);
        let g = build(&[forward, never], 1 << 20);
        let usage = g.action_usage();
        assert_eq!(usage.len(), 2);
        // "forward" is taken on 0→1, 0→3 and 1→2: enabled at states
        // 0 and 1, labeling three stored edges.
        assert_eq!(usage[0].name, "forward");
        assert_eq!(usage[0].enabled_states, 2);
        assert_eq!(usage[0].labeled_edges, 3);
        assert_eq!(usage[1].name, "never");
        assert_eq!(usage[1].enabled_states, 0);
        assert_eq!(usage[1].labeled_edges, 0);
    }

    #[test]
    fn truncation_keeps_enabledness_of_dropped_edges() {
        let forward = FairAction::new("forward", |a: &u32, b: &u32| b > a);
        let g = build(&[forward], 2);
        assert!(g.is_truncated());
        assert_eq!(g.state_count(), 2);
        // State 1's only successor (2) was dropped, but "forward" must
        // still read as enabled there.
        let id1 = (0..2).find(|&v| g.state(v) == 1).unwrap();
        assert_eq!(g.enabled_mask(id1), 1);
    }

    #[test]
    fn stem_ids_follow_bfs_parents() {
        let g = build(&[], 1 << 20);
        let id2 = (0..4).find(|&v| g.state(v) == 2).unwrap();
        let stem: Vec<u32> = g.stem_ids_to(id2).iter().map(|&v| g.state(v)).collect();
        assert_eq!(stem, [0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "weak-fairness constraints")]
    fn too_many_actions_are_rejected() {
        let actions: Vec<FairAction<u32>> = (0..33)
            .map(|i| FairAction::new(format!("a{i}"), |_: &u32, _: &u32| false))
            .collect();
        let _ = build(&actions, 1 << 20);
    }

    /// A fan wide enough to split into several stolen chunks per wave:
    /// 0 → 1..=1500, each i → a shared child (cross-chunk dedup), the
    /// children alternate between a back-cycle and a deadlock.
    struct WideFan;
    impl TransitionSystem for WideFan {
        type State = u32;
        fn initial_states(&self) -> Vec<u32> {
            vec![0]
        }
        fn successors(&self, s: &u32, out: &mut Vec<u32>) {
            match *s {
                0 => out.extend(1..=1500),
                s if (1..=1500).contains(&s) => out.push(1501 + s % 100),
                s if (1501..1601).contains(&s) && s % 2 == 0 => out.push(0),
                _ => {}
            }
        }
    }

    fn assert_graphs_identical(
        seq: &FairGraph<'static, IdentityCodec<u32>>,
        par: &FairGraph<'static, IdentityCodec<u32>>,
    ) {
        assert_eq!(par.state_count(), seq.state_count());
        assert_eq!(par.edge_count(), seq.edge_count());
        assert_eq!(par.edges_generated(), seq.edges_generated());
        assert_eq!(par.is_truncated(), seq.is_truncated());
        assert_eq!(par.initial(), seq.initial());
        for v in 0..seq.state_count() as u32 {
            assert_eq!(par.state(v), seq.state(v), "state {v}");
            assert_eq!(par.bfs_parent(v), seq.bfs_parent(v), "parent {v}");
            assert_eq!(par.enabled_mask(v), seq.enabled_mask(v), "mask {v}");
            assert_eq!(par.is_deadlock(v), seq.is_deadlock(v), "deadlock {v}");
            assert_eq!(
                par.neighbors(v).collect::<Vec<_>>(),
                seq.neighbors(v).collect::<Vec<_>>(),
                "adjacency {v}"
            );
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns real threads over a wide graph")]
    fn threaded_build_is_bit_identical_to_sequential() {
        static CODEC: IdentityCodec<u32> = IdentityCodec::new();
        let forward = || vec![FairAction::new("forward", |a: &u32, b: &u32| b > a)];
        let seq = FairGraph::build(&WideFan, &CODEC, &forward(), 1 << 20);
        assert!(seq.state_count() > 2 * BUILD_CHUNK_STATES, "waves split");
        for threads in [2, 4] {
            let par = FairGraph::build_with_threads(&WideFan, &CODEC, &forward(), 1 << 20, threads);
            assert_graphs_identical(&seq, &par);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns real threads over a wide graph")]
    fn threaded_build_matches_sequential_under_truncation() {
        static CODEC: IdentityCodec<u32> = IdentityCodec::new();
        let seq = FairGraph::build(&WideFan, &CODEC, &[], 700);
        assert!(seq.is_truncated());
        let par = FairGraph::build_with_threads(&WideFan, &CODEC, &[], 700, 3);
        assert_graphs_identical(&seq, &par);
    }

    #[test]
    fn one_thread_delegates_to_the_sequential_build() {
        static CODEC: IdentityCodec<u32> = IdentityCodec::new();
        let seq = build(&[], 1 << 20);
        let par = FairGraph::build_with_threads(&Diamond, &CODEC, &[], 1 << 20, 1);
        assert_eq!(par.state_count(), seq.state_count());
        assert_eq!(par.edge_count(), seq.edge_count());
    }

    #[test]
    #[should_panic(expected = "at least one worker thread")]
    fn zero_threads_are_rejected() {
        static CODEC: IdentityCodec<u32> = IdentityCodec::new();
        let _ = FairGraph::build_with_threads(&Diamond, &CODEC, &[], 1 << 20, 0);
    }
}
