//! # tta-bench
//!
//! Experiment harness for the DSN 2004 reproduction: one `exp_*` binary
//! per table/figure of the paper (see EXPERIMENTS.md for the index) plus
//! Criterion micro-benchmarks.
//!
//! | binary | reproduces |
//! |---|---|
//! | `exp_verification` | Section 5.2 verification results (E1, E2) |
//! | `exp_trace_coldstart` | Section 5.2 trace 1 (E3) |
//! | `exp_trace_cstate` | Section 5.2 trace 2 (E4) |
//! | `exp_buffer_limits` | Section 6 equations 5–9 (E6–E8, A1) |
//! | `exp_figure3` | Figure 3 (F3) |
//! | `exp_fault_injection` | Bus-vs-star containment (E9) |
//! | `exp_scaling` | State-space scaling, replay-budget sweep (S1) |
//! | `exp_extensions` | Enhanced guardian functions, async masquerade, clock drift (S2) |
//! | `exp_liveness` | Integration liveness under weak fairness, fair-lasso counterexample (S4) |
//!
//! Run any of them with `cargo run --release -p tta-bench --bin <name>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;
use tta_core::{ClusterModel, ClusterState};
use tta_modelcheck::hashing::fx_hash;
use tta_modelcheck::TransitionSystem;

/// Layer BFS over a reconstruction of the **seed's** visited-set design:
/// a mutex-sharded `HashMap<State, Option<State>>` that clones every
/// discovered state twice per insert (once as the map key, once as the
/// parent link) and takes a lock per probe. The interning arena replaced
/// this; benchmarks run it head-to-head against the arena to quantify
/// what the replacement bought. Returns the number of distinct states.
#[must_use]
pub fn seed_style_bfs(model: &ClusterModel) -> u64 {
    const SHARD_COUNT: usize = 64;
    let shards: Vec<Mutex<HashMap<ClusterState, Option<ClusterState>>>> = (0..SHARD_COUNT)
        .map(|_| Mutex::new(HashMap::new()))
        .collect();
    let shard_of = |s: &ClusterState| (fx_hash(s) >> 58) as usize;

    let mut layer = model.initial_states();
    for state in &layer {
        shards[shard_of(state)]
            .lock()
            .expect("unpoisoned")
            .insert(state.clone(), None);
    }
    let mut states = layer.len() as u64;
    let mut succs = Vec::new();
    while !layer.is_empty() {
        let mut next = Vec::new();
        for state in &layer {
            succs.clear();
            model.successors(state, &mut succs);
            for succ in succs.drain(..) {
                let mut shard = shards[shard_of(&succ)].lock().expect("unpoisoned");
                if !shard.contains_key(&succ) {
                    shard.insert(succ.clone(), Some(state.clone()));
                    drop(shard);
                    states += 1;
                    next.push(succ);
                }
            }
        }
        layer = next;
    }
    states
}

/// Prints a section heading in the style the experiment binaries share.
pub fn heading(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

/// Formats a duration compactly for experiment output.
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2} s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.1} ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.0} µs", d.as_secs_f64() * 1e6)
    }
}

/// Formats a ratio as a percentage with two decimals (the paper's style:
/// "30.26%").
#[must_use]
pub fn fmt_percent(ratio: f64) -> String {
    format!("{:.2}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_pick_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
        assert_eq!(fmt_duration(Duration::from_millis(15)), "15.0 ms");
        assert_eq!(fmt_duration(Duration::from_micros(250)), "250 µs");
    }

    #[test]
    fn percent_matches_paper_style() {
        assert_eq!(fmt_percent(23.0 / 76.0), "30.26%");
        assert_eq!(fmt_percent(23.0 / 2076.0), "1.11%");
    }
}
