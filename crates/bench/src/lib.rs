//! # tta-bench
//!
//! Experiment harness for the DSN 2004 reproduction: one `exp_*` binary
//! per table/figure of the paper (see EXPERIMENTS.md for the index) plus
//! Criterion micro-benchmarks.
//!
//! | binary | reproduces |
//! |---|---|
//! | `exp_verification` | Section 5.2 verification results (E1, E2) |
//! | `exp_trace_coldstart` | Section 5.2 trace 1 (E3) |
//! | `exp_trace_cstate` | Section 5.2 trace 2 (E4) |
//! | `exp_buffer_limits` | Section 6 equations 5–9 (E6–E8, A1) |
//! | `exp_figure3` | Figure 3 (F3) |
//! | `exp_fault_injection` | Bus-vs-star containment (E9) |
//! | `exp_recovery` | Transient faults × restart policies: availability & recovery (E10) |
//! | `exp_scaling` | State-space scaling, replay-budget sweep (S1) |
//! | `exp_extensions` | Enhanced guardian functions, async masquerade, clock drift (S2) |
//! | `exp_liveness` | Integration liveness under weak fairness, fair-lasso counterexample (S4) |
//! | `tta_fuzz` | Coverage-guided fault-plan fuzzing with shrinking + scenario emission (S7) |
//! | `exp_fuzz` | Restart-policy synthesis over the fuzzed corpus (E11) |
//!
//! Run any of them with `cargo run --release -p tta-bench --bin <name>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;
use tta_core::{ClusterModel, ClusterState};
use tta_modelcheck::hashing::fx_hash;
use tta_modelcheck::TransitionSystem;

/// Layer BFS over a reconstruction of the **seed's** visited-set design:
/// a mutex-sharded `HashMap<State, Option<State>>` that clones every
/// discovered state twice per insert (once as the map key, once as the
/// parent link) and takes a lock per probe. The interning arena replaced
/// this; benchmarks run it head-to-head against the arena to quantify
/// what the replacement bought. Returns the number of distinct states.
#[must_use]
pub fn seed_style_bfs(model: &ClusterModel) -> u64 {
    const SHARD_COUNT: usize = 64;
    let shards: Vec<Mutex<HashMap<ClusterState, Option<ClusterState>>>> = (0..SHARD_COUNT)
        .map(|_| Mutex::new(HashMap::new()))
        .collect();
    let shard_of = |s: &ClusterState| (fx_hash(s) >> 58) as usize;

    let mut layer = model.initial_states();
    for state in &layer {
        shards[shard_of(state)]
            .lock()
            .expect("unpoisoned")
            .insert(state.clone(), None);
    }
    let mut states = layer.len() as u64;
    let mut succs = Vec::new();
    while !layer.is_empty() {
        let mut next = Vec::new();
        for state in &layer {
            succs.clear();
            model.successors(state, &mut succs);
            for succ in succs.drain(..) {
                let mut shard = shards[shard_of(&succ)].lock().expect("unpoisoned");
                if !shard.contains_key(&succ) {
                    shard.insert(succ.clone(), Some(state.clone()));
                    drop(shard);
                    states += 1;
                    next.push(succ);
                }
            }
        }
        layer = next;
    }
    states
}

/// One cell of a campaign JSON table: a scenario × configuration
/// combination with its outcome counts and derived metrics.
///
/// The experiment binaries that emit machine-readable campaign results
/// (`exp_fault_injection`, `exp_recovery`) share this shape so CI can
/// diff them against golden fixtures with one comparator.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCell {
    /// Scenario name (the campaign's `Display` form).
    pub scenario: String,
    /// Topology name.
    pub topology: String,
    /// Guardian authority name.
    pub authority: String,
    /// Restart policy, for recovery campaigns (omitted from the JSON
    /// when `None`).
    pub policy: Option<String>,
    /// Outcome counts in fixed report order.
    pub outcomes: Vec<(&'static str, u64)>,
    /// Derived metrics in fixed report order; `None` renders as `null`.
    pub metrics: Vec<(&'static str, Option<f64>)>,
}

/// A full campaign table destined for JSON output.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignJson {
    /// Experiment identifier ("E9", "E10", "E10-smoke").
    pub experiment: String,
    /// Trials per cell.
    pub trials: u32,
    /// All cells, in sweep order.
    pub cells: Vec<CampaignCell>,
}

impl CampaignJson {
    /// Renders the table as deterministic, line-oriented JSON: one cell
    /// per line, floats fixed to four decimals, keys in declaration
    /// order. Hand-rolled so the output is byte-stable for golden-file
    /// comparison (and because the vendored serde stubs don't serialize).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"experiment\": {},\n",
            json_string(&self.experiment)
        ));
        out.push_str(&format!("  \"trials\": {},\n", self.trials));
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            let mut fields = vec![
                format!("\"scenario\": {}", json_string(&cell.scenario)),
                format!("\"topology\": {}", json_string(&cell.topology)),
                format!("\"authority\": {}", json_string(&cell.authority)),
            ];
            if let Some(policy) = &cell.policy {
                fields.push(format!("\"policy\": {}", json_string(policy)));
            }
            let outcomes = cell
                .outcomes
                .iter()
                .map(|(k, v)| format!("{}: {v}", json_string(k)))
                .collect::<Vec<_>>()
                .join(", ");
            fields.push(format!("\"outcomes\": {{{outcomes}}}"));
            let metrics = cell
                .metrics
                .iter()
                .map(|(k, v)| {
                    let rendered = v.map_or_else(|| "null".to_string(), |x| format!("{x:.4}"));
                    format!("{}: {rendered}", json_string(k))
                })
                .collect::<Vec<_>>()
                .join(", ");
            fields.push(format!("\"metrics\": {{{metrics}}}"));
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            out.push_str(&format!("    {{{}}}{comma}\n", fields.join(", ")));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Line-diffs rendered campaign JSON against a golden fixture. Returns
/// the first mismatch (line number, expected, actual) as a displayable
/// error so CI failures point at the drifted cell, not just "differs".
///
/// # Errors
///
/// Returns a description of the first differing line, or a length
/// mismatch if one output is a prefix of the other.
pub fn diff_campaign_json(golden: &str, actual: &str) -> Result<(), String> {
    let golden_lines: Vec<&str> = golden.lines().collect();
    let actual_lines: Vec<&str> = actual.lines().collect();
    for (i, (g, a)) in golden_lines.iter().zip(actual_lines.iter()).enumerate() {
        if g != a {
            return Err(format!("line {}:\n  golden: {g}\n  actual: {a}", i + 1));
        }
    }
    if golden_lines.len() != actual_lines.len() {
        return Err(format!(
            "line count differs: golden {} vs actual {}",
            golden_lines.len(),
            actual_lines.len()
        ));
    }
    Ok(())
}

/// Checks rendered campaign JSON against the golden fixture at `path`,
/// printing a verdict. Returns `false` (and prints the first diff) on
/// drift — callers exit nonzero so CI fails.
#[must_use]
pub fn check_against_golden(path: &std::path::Path, actual: &str) -> bool {
    match std::fs::read_to_string(path) {
        Err(e) => {
            eprintln!("error: cannot read golden fixture {}: {e}", path.display());
            false
        }
        Ok(golden) => match diff_campaign_json(&golden, actual) {
            Ok(()) => {
                println!("golden fixture {}: ok", path.display());
                true
            }
            Err(why) => {
                eprintln!("golden fixture {} drifted at {why}", path.display());
                false
            }
        },
    }
}

/// Command-line options shared by the campaign experiment binaries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignArgs {
    /// `--threads N`: pin the campaign worker count.
    pub threads: Option<usize>,
    /// `--json [PATH]`: emit the campaign JSON (to PATH, or stdout).
    pub json: bool,
    /// The PATH given to `--json`, if any.
    pub json_path: Option<std::path::PathBuf>,
    /// `--check GOLDEN`: diff the JSON against a golden fixture and
    /// exit nonzero on drift.
    pub check: Option<std::path::PathBuf>,
    /// `--smoke`: run the reduced deterministic sweep (only accepted
    /// when the binary offers one).
    pub smoke: bool,
}

impl CampaignArgs {
    /// Parses `std::env::args`, exiting with the usage string on
    /// errors. `allow_smoke` gates the `--smoke` flag.
    #[must_use]
    pub fn parse(usage: &str, allow_smoke: bool) -> CampaignArgs {
        let mut args = CampaignArgs::default();
        let mut iter = std::env::args().skip(1).peekable();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--threads" => match iter.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n > 0 => args.threads = Some(n),
                    _ => die(usage, "--threads needs a positive integer"),
                },
                "--json" => {
                    args.json = true;
                    // An optional PATH: consume the next token unless it
                    // is another flag.
                    if let Some(next) = iter.peek() {
                        if !next.starts_with("--") {
                            args.json_path =
                                Some(std::path::PathBuf::from(iter.next().expect("peeked")));
                        }
                    }
                }
                "--check" => match iter.next() {
                    Some(path) => args.check = Some(std::path::PathBuf::from(path)),
                    None => die(usage, "--check needs a fixture path"),
                },
                "--smoke" if allow_smoke => args.smoke = true,
                other => die(usage, &format!("unknown argument {other}")),
            }
        }
        args
    }
}

fn die(usage: &str, why: &str) -> ! {
    eprintln!("error: {why}");
    eprintln!("usage: {usage}");
    std::process::exit(2);
}

/// Prints a section heading in the style the experiment binaries share.
pub fn heading(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

/// Formats a duration compactly for experiment output.
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2} s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.1} ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.0} µs", d.as_secs_f64() * 1e6)
    }
}

/// Formats a ratio as a percentage with two decimals (the paper's style:
/// "30.26%").
#[must_use]
pub fn fmt_percent(ratio: f64) -> String {
    format!("{:.2}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_pick_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
        assert_eq!(fmt_duration(Duration::from_millis(15)), "15.0 ms");
        assert_eq!(fmt_duration(Duration::from_micros(250)), "250 µs");
    }

    #[test]
    fn percent_matches_paper_style() {
        assert_eq!(fmt_percent(23.0 / 76.0), "30.26%");
        assert_eq!(fmt_percent(23.0 / 2076.0), "1.11%");
    }

    fn sample_json() -> CampaignJson {
        CampaignJson {
            experiment: "E10-smoke".to_string(),
            trials: 12,
            cells: vec![
                CampaignCell {
                    scenario: "SOS sender".to_string(),
                    topology: "star".to_string(),
                    authority: "passive".to_string(),
                    policy: Some("never".to_string()),
                    outcomes: vec![("contained", 12), ("recovered", 0)],
                    metrics: vec![("availability", Some(0.98765)), ("mean_ttr", None)],
                },
                CampaignCell {
                    scenario: "coupler replay (out-of-slot)".to_string(),
                    topology: "star".to_string(),
                    authority: "passive".to_string(),
                    policy: None,
                    outcomes: vec![("contained", 0)],
                    metrics: vec![],
                },
            ],
        }
    }

    #[test]
    fn campaign_json_is_line_oriented_and_stable() {
        let rendered = sample_json().render();
        assert!(rendered.contains("\"experiment\": \"E10-smoke\""));
        assert!(rendered.contains("\"policy\": \"never\""));
        // Floats pinned to four decimals, None to null.
        assert!(rendered.contains("\"availability\": 0.9877"));
        assert!(rendered.contains("\"mean_ttr\": null"));
        // The policy-free cell omits the key entirely.
        assert_eq!(rendered.matches("\"policy\"").count(), 1);
        // One cell per line keeps golden diffs cell-granular.
        assert_eq!(rendered.lines().count(), 4 + sample_json().cells.len() + 2);
    }

    #[test]
    fn diff_points_at_the_first_drifted_line() {
        let golden = sample_json().render();
        assert_eq!(diff_campaign_json(&golden, &golden), Ok(()));

        let mut drifted = sample_json();
        drifted.cells[1].outcomes[0].1 = 1;
        let err = diff_campaign_json(&golden, &drifted.render()).unwrap_err();
        assert!(err.contains("line 6"), "{err}");
        assert!(err.contains("\"contained\": 1"), "{err}");

        let mut truncated = sample_json();
        truncated.cells.pop();
        let err = diff_campaign_json(&golden, &truncated.render()).unwrap_err();
        assert!(err.contains("line"), "{err}");
    }

    #[test]
    fn json_strings_escape_quotes_and_control_characters() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
    }
}
