//! # tta-bench
//!
//! Experiment harness for the DSN 2004 reproduction: one `exp_*` binary
//! per table/figure of the paper (see EXPERIMENTS.md for the index) plus
//! Criterion micro-benchmarks.
//!
//! | binary | reproduces |
//! |---|---|
//! | `exp_verification` | Section 5.2 verification results (E1, E2) |
//! | `exp_trace_coldstart` | Section 5.2 trace 1 (E3) |
//! | `exp_trace_cstate` | Section 5.2 trace 2 (E4) |
//! | `exp_buffer_limits` | Section 6 equations 5–9 (E6–E8, A1) |
//! | `exp_figure3` | Figure 3 (F3) |
//! | `exp_fault_injection` | Bus-vs-star containment (E9) |
//! | `exp_recovery` | Transient faults × restart policies: availability & recovery (E10) |
//! | `exp_scaling` | State-space scaling, replay-budget sweep (S1) |
//! | `exp_extensions` | Enhanced guardian functions, async masquerade, clock drift (S2) |
//! | `exp_liveness` | Integration liveness under weak fairness, fair-lasso counterexample (S4) |
//! | `tta_fuzz` | Coverage-guided fault-plan fuzzing with shrinking + scenario emission (S7) |
//! | `exp_fuzz` | Restart-policy synthesis over the fuzzed corpus (E11) |
//!
//! Run any of them with `cargo run --release -p tta-bench --bin <name>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;
use tta_core::{ClusterModel, ClusterState};
use tta_modelcheck::hashing::fx_hash;
use tta_modelcheck::TransitionSystem;

/// Layer BFS over a reconstruction of the **seed's** visited-set design:
/// a mutex-sharded `HashMap<State, Option<State>>` that clones every
/// discovered state twice per insert (once as the map key, once as the
/// parent link) and takes a lock per probe. The interning arena replaced
/// this; benchmarks run it head-to-head against the arena to quantify
/// what the replacement bought. Returns the number of distinct states.
#[must_use]
pub fn seed_style_bfs(model: &ClusterModel) -> u64 {
    const SHARD_COUNT: usize = 64;
    let shards: Vec<Mutex<HashMap<ClusterState, Option<ClusterState>>>> = (0..SHARD_COUNT)
        .map(|_| Mutex::new(HashMap::new()))
        .collect();
    let shard_of = |s: &ClusterState| (fx_hash(s) >> 58) as usize;

    let mut layer = model.initial_states();
    for state in &layer {
        shards[shard_of(state)]
            .lock()
            .expect("unpoisoned")
            .insert(state.clone(), None);
    }
    let mut states = layer.len() as u64;
    let mut succs = Vec::new();
    while !layer.is_empty() {
        let mut next = Vec::new();
        for state in &layer {
            succs.clear();
            model.successors(state, &mut succs);
            for succ in succs.drain(..) {
                let mut shard = shards[shard_of(&succ)].lock().expect("unpoisoned");
                if !shard.contains_key(&succ) {
                    shard.insert(succ.clone(), Some(state.clone()));
                    drop(shard);
                    states += 1;
                    next.push(succ);
                }
            }
        }
        layer = next;
    }
    states
}

// Campaign tables, golden-fixture comparison, and the shared campaign
// CLI options moved to `tta-campaignd` when the daemon became their
// fourth consumer; re-exported here so the experiment binaries (and any
// external user of the old paths) keep compiling unchanged.
pub use tta_campaignd::table::{
    check_against_golden, diff_campaign_json, CampaignArgs, CampaignCell, CampaignJson,
};

/// A campaign-service connection for a `--daemon [SOCKET]` invocation,
/// plus the in-process daemon keeping it alive when no socket was
/// given. Hold the handle for as long as the client is used; dropping
/// it shuts the private daemon down.
#[derive(Debug)]
pub struct DaemonSession {
    /// The connected client.
    pub client: tta_campaignd::client::Client,
    /// The private in-process daemon, if this session spun one up.
    handle: Option<tta_campaignd::server::ServerHandle>,
    /// The private state directory, removed on teardown.
    scratch: Option<std::path::PathBuf>,
}

impl DaemonSession {
    /// Connects per the parsed `--daemon` flag: to the daemon at the
    /// given socket, or — with no socket — to a freshly spawned private
    /// in-process daemon on a temporary state directory (cold cache,
    /// torn down afterwards). Returns `None` when `--daemon` was not
    /// passed.
    ///
    /// # Panics
    ///
    /// Exits the process with a diagnostic if the daemon cannot be
    /// reached or spawned — these are experiment binaries, and a
    /// missing service is operator error, not a recoverable state.
    #[must_use]
    pub fn from_args(args: &CampaignArgs) -> Option<DaemonSession> {
        use tta_campaignd::client::Client;
        use tta_campaignd::server::{Server, ServerConfig};
        if !args.daemon {
            return None;
        }
        match &args.daemon_socket {
            Some(socket) => {
                let client = Client::new(socket);
                if !client.ping() {
                    eprintln!("error: no campaign daemon answers on {}", socket.display());
                    std::process::exit(1);
                }
                Some(DaemonSession {
                    client,
                    handle: None,
                    scratch: None,
                })
            }
            None => {
                // detlint: allow(DL02) reason=scratch-dir nonce for uniqueness only; never reaches any result or report
                let nonce = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map_or(0, |d| d.subsec_nanos());
                let state_dir = std::env::temp_dir().join(format!(
                    "campaignd-inproc-{}-{nonce:08x}",
                    std::process::id()
                ));
                let mut config = ServerConfig::at(&state_dir);
                if let Some(threads) = args.threads {
                    config.workers = threads;
                }
                match Server::spawn(config) {
                    Ok(handle) => Some(DaemonSession {
                        client: Client::new(handle.socket()),
                        handle: Some(handle),
                        scratch: Some(state_dir),
                    }),
                    Err(e) => {
                        eprintln!("error: cannot spawn in-process campaign daemon: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
    }
}

impl Drop for DaemonSession {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            handle.shutdown();
        }
        if let Some(scratch) = self.scratch.take() {
            let _ = std::fs::remove_dir_all(scratch);
        }
    }
}

/// Prints a section heading in the style the experiment binaries share.
pub fn heading(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

/// Formats a duration compactly for experiment output.
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2} s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.1} ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.0} µs", d.as_secs_f64() * 1e6)
    }
}

/// Formats a ratio as a percentage with two decimals (the paper's style:
/// "30.26%").
#[must_use]
pub fn fmt_percent(ratio: f64) -> String {
    format!("{:.2}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_pick_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
        assert_eq!(fmt_duration(Duration::from_millis(15)), "15.0 ms");
        assert_eq!(fmt_duration(Duration::from_micros(250)), "250 µs");
    }

    #[test]
    fn percent_matches_paper_style() {
        assert_eq!(fmt_percent(23.0 / 76.0), "30.26%");
        assert_eq!(fmt_percent(23.0 / 2076.0), "1.11%");
    }
}
