//! Experiment E4 — Section 5.2 trace 2: the C-state duplication
//! counterexample.
//!
//! Adding the paper's second constraint — the coupler may not duplicate
//! cold-start frames — forces the counterexample through a replayed
//! **C-state frame** instead ("The error may also be triggered by
//! duplicating a C-state frame").

use std::time::Instant;
use tta_bench::{fmt_duration, heading};
use tta_core::{narrate_compressed, verify_cluster, ClusterConfig, ClusterModel, Verdict};

fn main() {
    heading(
        "E4 — counterexample trace 2: duplicated C-state frame (cold-start duplication forbidden)",
    );
    let config = ClusterConfig::paper_trace_cstate();
    println!("configuration: {config}\n");

    // detlint: allow(DL02) reason=benchmark measurement; wall-clock is the quantity this binary reports
    let started = Instant::now();
    let report = verify_cluster(&config);
    let elapsed = started.elapsed();
    assert_eq!(
        report.verdict,
        Verdict::Violated,
        "the paper's violation must reproduce"
    );
    let trace = report.counterexample.expect("counterexample trace");

    println!(
        "verdict: VIOLATED — shortest trace of {} slot transitions, found in {} \
         ({} states explored)\n",
        trace.transition_count(),
        fmt_duration(elapsed),
        report.stats.states_explored
    );

    let model = ClusterModel::new(config);
    for line in narrate_compressed(&model, &trace) {
        println!("{line}");
    }

    println!("\nfinal state: {}", trace.violating_state());
    println!(
        "\npaper (trace 2, abridged): \"A faulty star coupler replicates the previous frame\n\
         into the next slot. Node D integrates on it … Node D freezes due to a clique\n\
         avoidance error.\" The constraint makes the trace slightly longer than trace 1,\n\
         as the paper observes."
    );
}
