//! Supplementary experiment S2 — the paper's discussion items,
//! executable:
//!
//! 1. **Enhanced guardian functions** (§6): mailboxes and CAN-emulation
//!    relays require full-frame buffering and therefore violate the
//!    fault-tolerance bound B_max = f_min − 1.
//! 2. **Asynchronous masquerading** (§7): a store-and-forward relay that
//!    replays an identification message splits an asynchronous system's
//!    rosters — no clocks or slots involved.
//! 3. **Clock drift & resynchronization**: the ρ of Section 6 as a
//!    physical phenomenon, bounded per-round by FTA clock sync.

use tta_analysis::tables::Table;
use tta_bench::heading;
use tta_guardian::enhanced::{audit, MailboxService, PriorityRelay};
use tta_sim::asynch::AsyncMasqueradeDemo;
use tta_sim::drift::DriftExperiment;
use tta_types::constants::N_FRAME_MIN_BITS;
use tta_types::{CState, FrameBuilder, FrameClass, MembershipVector, NodeId};

fn main() {
    heading("S2a — enhanced guardian functions vs. the eq. (3) buffer bound");
    let frame = |sender: u8, payload: &[u8]| {
        FrameBuilder::new(FrameClass::XFrame, NodeId::new(sender))
            .cstate(CState::new(
                10,
                u16::from(sender) + 1,
                0,
                MembershipVector::full(4),
            ))
            .data_bits(payload)
            .build()
            .expect("valid frame")
    };

    let mut mailbox = MailboxService::new();
    for i in 0..4u8 {
        mailbox.store(NodeId::new(i), frame(i, &[i; 16]));
    }
    let mut relay = PriorityRelay::new();
    relay.enqueue(0x100, frame(0, &[1; 8]));
    relay.enqueue(0x200, frame(1, &[2; 8]));
    relay.enqueue(0x080, frame(2, &[3; 8]));

    let mut table = Table::new([
        "guardian function",
        "buffer needed",
        "permitted (eq. 3)",
        "verdict",
    ]);
    for report in [
        audit("stale-value mailboxes (§6)", &mailbox, N_FRAME_MIN_BITS),
        audit(
            "CAN-emulation priority relay (§6)",
            &relay,
            N_FRAME_MIN_BITS,
        ),
    ] {
        table.row([
            report.function.clone(),
            format!("{} bits", report.required_bits),
            format!("{} bits", report.permitted_bits),
            if report.fault_tolerant {
                "ok".to_string()
            } else {
                "VIOLATES eq. (3)".to_string()
            },
        ]);
    }
    println!("{table}");
    println!("\"Both of these enhanced functions would require buffering full frames\" —");
    println!("and full-frame buffers enable the out_of_slot replay fault of Section 5.\n");

    heading("S2b — masquerading in an asynchronous system (§7)");
    let clean = AsyncMasqueradeDemo::new(false).run();
    let faulty = AsyncMasqueradeDemo::new(true).run();
    println!("healthy store-and-forward relay:");
    print!("{clean}");
    println!(
        "  rosters consistent: {} | deceived clients: {:?}\n",
        clean.rosters_consistent(),
        clean.deceived_clients()
    );
    println!("faulty relay replaying a stored identification message:");
    print!("{faulty}");
    println!(
        "  rosters consistent: {} | deceived clients: {:?}",
        faulty.rosters_consistent(),
        faulty.deceived_clients()
    );
    println!("\"the underlying issue is not timing, but rather identification.\"\n");

    heading("S2c — clock drift, FTA resynchronization, and ρ");
    let mut table = Table::new([
        "configuration",
        "max healthy offset (µt)",
        "per-round ρ·round (µt)",
    ]);
    let base = DriftExperiment::paper_crystals();
    for (label, config) in [
        ("±100 ppm, FTA sync each round", base),
        (
            "±100 ppm, no synchronization",
            DriftExperiment {
                resynchronize: false,
                ..base
            },
        ),
        (
            "±100 ppm, FTA + one Byzantine clock",
            DriftExperiment {
                byzantine: Some(1),
                ..base
            },
        ),
    ] {
        let report = config.run();
        table.row([
            label.to_string(),
            format!("{:.2}", report.max_offset_microticks),
            format!("{:.2}", report.per_round_drift_bound),
        ]);
    }
    println!("{table}");
    println!("synchronization bounds offsets near the per-round drift ρ·round — the residual");
    println!("rate difference within a round is exactly the ρ that sizes the guardian buffer");
    println!("in eq. (1).");
}
