//! Experiment E3 — Section 5.2 trace 1: the cold-start duplication
//! counterexample.
//!
//! With the paper's constraint of at most one out-of-slot error, the
//! shortest counterexample has a faulty full-shifting coupler replay a
//! buffered **cold-start frame**; a healthy node's clique-avoidance test
//! then freezes it during startup/integration.

use std::time::Instant;
use tta_bench::{fmt_duration, heading};
use tta_core::{narrate_compressed, verify_cluster, ClusterConfig, ClusterModel, Verdict};

fn main() {
    heading("E3 — counterexample trace 1: duplicated cold-start frame (≤1 out-of-slot error)");
    let config = ClusterConfig::paper_trace_cold_start();
    println!("configuration: {config}\n");

    // detlint: allow(DL02) reason=benchmark measurement; wall-clock is the quantity this binary reports
    let started = Instant::now();
    let report = verify_cluster(&config);
    let elapsed = started.elapsed();
    assert_eq!(
        report.verdict,
        Verdict::Violated,
        "the paper's violation must reproduce"
    );
    let trace = report.counterexample.expect("counterexample trace");

    println!(
        "verdict: VIOLATED — shortest trace of {} slot transitions, found in {} \
         ({} states explored)\n",
        trace.transition_count(),
        fmt_duration(elapsed),
        report.stats.states_explored
    );

    let model = ClusterModel::new(config);
    for line in narrate_compressed(&model, &trace) {
        println!("{line}");
    }

    println!("\nfinal state: {}", trace.violating_state());
    println!(
        "\npaper (trace 1, abridged): \"A faulty star coupler replays the previous cold\n\
         start frame. Node B integrates on it, in compliance with the big bang\n\
         requirements. … Node B freezes due to a clique avoidance error.\"\n\
         Both traces are generated well under the paper's one-minute budget."
    );
}
