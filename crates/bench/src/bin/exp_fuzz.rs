//! Experiment E11 — restart-policy synthesis over a fuzzed fault
//! corpus: the inverse of E10.
//!
//! E10 fixed a policy grid and measured availability; E11 fixes
//! availability floors and asks the synthesizer (`tta_fuzz::synthesize`)
//! for the *cheapest* restart policy that clears each floor, per
//! guardian authority level, against a corpus of fault plans the
//! coverage-guided fuzzer discovered from seed 7.
//!
//! Expected shape:
//!
//! * Weak authority (passive, time windows) lets fuzzer-found SOS
//!   senders freeze healthy peers, so low floors already force real
//!   restart budgets and high floors demand aggressive ones (watchdog /
//!   immediate) — restarts substitute for guardian authority.
//! * Reshaping authorities (small/full shifting) contain the same
//!   corpus in flight, so `never` clears every reachable floor and the
//!   ladder stops at its first rung — authority substitutes for
//!   restarts.
//! * No policy can beat the startup transient, so floors above the
//!   startup ceiling report the best scorer with the floor unmet.
//!
//! Flags: `--threads N` pins fuzzing workers (output is bit-identical
//! either way), `--json [PATH]` emits the machine-readable table,
//! `--check GOLDEN` diffs it against a fixture, `--smoke` runs the
//! reduced deterministic sweep, `--daemon [SOCKET]` evaluates the fuzz
//! candidates over the `tta-campaignd` service (same output bytes).

use tta_analysis::tables::Table;
use tta_bench::{heading, CampaignArgs, CampaignCell, CampaignJson, DaemonSession};
use tta_fuzz::{
    authority_token, fuzz_with, synthesize, DaemonEvaluator, Evaluator, FuzzConfig, LocalEvaluator,
};
use tta_guardian::CouplerAuthority;

const USAGE: &str =
    "exp_fuzz [--threads N] [--json [PATH]] [--check GOLDEN] [--smoke] [--daemon [SOCKET]]";

struct Sweep {
    experiment: &'static str,
    cfg: FuzzConfig,
    floors: Vec<f64>,
}

fn full_sweep() -> Sweep {
    Sweep {
        experiment: "E11",
        cfg: FuzzConfig::default(),
        floors: vec![0.30, 0.60, 0.90, 0.95],
    }
}

/// The reduced sweep for CI: fewer rounds, smaller batches, two floors
/// that bracket the story. Deterministic — same seed, any thread count.
fn smoke_sweep() -> Sweep {
    Sweep {
        experiment: "E11-smoke",
        cfg: FuzzConfig {
            rounds: 4,
            batch: 32,
            ..FuzzConfig::default()
        },
        floors: vec![0.60, 0.90],
    }
}

fn main() {
    let args = CampaignArgs::parse(USAGE, true);
    let mut sweep = if args.smoke {
        smoke_sweep()
    } else {
        full_sweep()
    };
    if let Some(threads) = args.threads {
        sweep.cfg.threads = threads;
    }

    heading(&format!(
        "{} — restart-policy synthesis over a fuzzed fault corpus",
        sweep.experiment
    ));
    println!(
        "corpus: coverage-guided fuzz, seed {}, {} rounds x {} candidates, \
         {}-node star, {} slots.",
        sweep.cfg.seed, sweep.cfg.rounds, sweep.cfg.batch, sweep.cfg.ctx.nodes, sweep.cfg.ctx.slots
    );
    println!(
        "cell format: cheapest restart policy whose WORST-case availability over the\n\
         whole corpus clears the row's floor (ladder: never, bounded retries by budget\n\
         then backoff, watchdogs by silence window, immediate); `!` marks floors no\n\
         policy clears (best scorer shown).\n"
    );

    let session = DaemonSession::from_args(&args);
    let evaluator: Box<dyn Evaluator> = match &session {
        Some(session) => Box::new(DaemonEvaluator::new(session.client.clone())),
        None => Box::new(LocalEvaluator),
    };
    let outcome = fuzz_with(&sweep.cfg, evaluator.as_ref());
    println!(
        "fuzzed corpus: {} entries in {} rounds ({} simulator executions)\n",
        outcome.corpus.len(),
        outcome.rounds_run,
        outcome.executions
    );

    let mut header = vec!["availability floor".to_string()];
    header.extend(
        CouplerAuthority::all()
            .iter()
            .map(|a| authority_token(*a).replace('_', " ")),
    );
    let mut table = Table::new(header);
    let mut cells = Vec::new();
    for &floor in &sweep.floors {
        let mut row = vec![format!(">= {floor:.2}")];
        for authority in CouplerAuthority::all() {
            let result = synthesize(&outcome.corpus, &sweep.cfg.ctx, authority, floor);
            row.push(format!(
                "{}{} ({:.3})",
                if result.met { "" } else { "! " },
                result.policy,
                result.worst_availability
            ));
            cells.push(CampaignCell {
                scenario: format!("floor {floor:.2}"),
                topology: "star".to_string(),
                authority: authority.to_string(),
                policy: Some(result.policy.to_string()),
                outcomes: vec![
                    ("met", u64::from(result.met)),
                    ("candidates_tried", result.candidates_tried as u64),
                ],
                metrics: vec![("worst_availability", Some(result.worst_availability))],
            });
        }
        table.row(row);
    }
    println!("{table}");

    println!("reading the table:");
    println!(" * under weak authority the fuzzed SOS senders freeze healthy peers, so");
    println!("   higher floors climb the ladder: restart budgets substitute for guardian");
    println!("   authority.");
    println!(" * reshaping authorities contain the same corpus in flight — `never` clears");
    println!("   every reachable floor, authority substitutes for restarts.");
    println!(" * no policy beats the startup transient; floors above that ceiling go");
    println!("   unmet (`!`) and report the best scorer.");

    let json = CampaignJson {
        experiment: sweep.experiment.to_string(),
        trials: sweep.cfg.batch as u32,
        cells,
    };
    let rendered = json.render();
    if args.json {
        match &args.json_path {
            Some(path) => {
                std::fs::write(path, &rendered).unwrap_or_else(|e| {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    std::process::exit(1);
                });
                println!("\nwrote {}", path.display());
            }
            None => print!("\n{rendered}"),
        }
    }
    if let Some(golden) = &args.check {
        if !tta_bench::check_against_golden(golden, &rendered) {
            std::process::exit(1);
        }
    }
}
