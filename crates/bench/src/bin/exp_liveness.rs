//! Supplementary experiment S4 — integration liveness under weak fairness.
//!
//! The paper's Section 5 property is pure safety ("no integrated node
//! freezes"); a cluster that never comes up satisfies it vacuously. This
//! experiment checks the complementary *liveness* property per node —
//! `listening(i) ~> integrated(i)` — under weak fairness on each node's
//! startup progress, for all four star-coupler authority levels.
//!
//! Expected rows: passive / time windows / small shifting → the leads-to
//! **holds** for every node; full shifting → a fair lasso counterexample
//! whose cycle keeps a correct node out of active membership forever.
//!
//! Usage:
//!
//! * `exp_liveness` — the S4 paper-style table plus the narrated lasso
//!   for the full-shifting violation.
//! * `exp_liveness [--artifacts DIR] SCENARIO.toml...` — check every
//!   scenario that declares `expect.liveness`; exit non-zero on any
//!   mismatch. With `--artifacts`, rendered lassos of violated runs are
//!   written to `DIR` (one `.lasso.txt` per scenario).
//! * `exp_liveness --bench-json [PATH] [--threads N]` — record a
//!   machine-readable snapshot of the liveness hot path (fair-graph
//!   build sequential vs. threaded, plus the SCC check pass) to `PATH`
//!   (default `BENCH_liveness.json`). `--threads` caps the threaded
//!   sweep. Threaded entries carry the same `comparable` /
//!   `speedup_vs_sequential` fields as `BENCH_modelcheck.json`.

use std::path::{Path, PathBuf};
use std::time::Instant;
use tta_analysis::tables::Table;
use tta_bench::{fmt_duration, heading};
use tta_conformance::{ExpectedVerdict, Scenario};
use tta_core::{
    cluster_startup_fairness, narrate_lasso, node_integration_property, verify_cluster_liveness,
    ClusterCodec, ClusterConfig, ClusterModel, LivenessReport, Verdict,
};
use tta_guardian::CouplerAuthority;
use tta_liveness::FairGraph;
use tta_modelcheck::DEFAULT_MAX_STATES;

fn main() {
    let mut artifacts: Option<PathBuf> = None;
    let mut scenarios: Vec<PathBuf> = Vec::new();
    let mut bench_json: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut iter = std::env::args().skip(1).peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--artifacts" => {
                let dir = iter
                    .next()
                    .unwrap_or_else(|| usage("--artifacts needs a directory"));
                artifacts = Some(PathBuf::from(dir));
            }
            "--bench-json" => {
                let path = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().expect("peeked"),
                    _ => "BENCH_liveness.json".to_string(),
                };
                bench_json = Some(path);
            }
            "--threads" => {
                let value = iter
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a value"));
                threads = Some(
                    value
                        .parse()
                        .unwrap_or_else(|_| usage("--threads needs an integer")),
                );
            }
            other if other.starts_with("--") => usage(&format!("unknown flag {other}")),
            path => scenarios.push(PathBuf::from(path)),
        }
    }
    if let Some(path) = bench_json {
        if !scenarios.is_empty() || artifacts.is_some() {
            usage("--bench-json does not combine with scenario mode");
        }
        bench_snapshot(&path, threads);
    } else if scenarios.is_empty() {
        if artifacts.is_some() {
            usage("--artifacts only applies to scenario mode");
        }
        paper_table();
    } else {
        scenario_mode(&scenarios, artifacts.as_deref());
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!(
        "usage: exp_liveness [--artifacts DIR] [SCENARIO.toml...] | --bench-json [PATH] [--threads N]"
    );
    std::process::exit(2);
}

fn verdict_word(verdict: Verdict) -> &'static str {
    match verdict {
        Verdict::Holds => "holds",
        Verdict::Violated => "VIOLATED",
        Verdict::BudgetExhausted => "budget exhausted",
    }
}

/// One-line per-node verdict summary, e.g. `✓✓✓✗`.
fn per_node_marks(report: &LivenessReport) -> String {
    report
        .per_node
        .iter()
        .map(|v| match v {
            Verdict::Holds => '✓',
            Verdict::Violated => '✗',
            Verdict::BudgetExhausted => '?',
        })
        .collect()
}

fn paper_table() {
    heading("S4 — integration liveness vs. star-coupler authority (4-node cluster)");
    println!("property: for every node i, listening(i) ~> integrated(i)");
    println!(
        "fairness: weak fairness on each node's startup progress (freeze→init, init→listen)\n"
    );

    let mut table = Table::new([
        "coupler authority",
        "liveness verdict",
        "per node",
        "states",
        "SCCs examined",
        "lasso (stem+cycle)",
        "time",
    ]);
    let mut violation: Option<(CouplerAuthority, LivenessReport)> = None;
    for authority in CouplerAuthority::all() {
        let config = ClusterConfig::paper(authority);
        // detlint: allow(DL02) reason=benchmark measurement; wall-clock is the quantity this binary reports
        let started = Instant::now();
        let report = verify_cluster_liveness(&config);
        let elapsed = started.elapsed();
        table.row([
            authority.to_string(),
            verdict_word(report.verdict).to_string(),
            per_node_marks(&report),
            report.stats.states.to_string(),
            report.stats.sccs_examined.to_string(),
            report.lasso.as_ref().map_or_else(
                || "—".to_string(),
                |l| format!("{}+{} slots", l.stem_len(), l.cycle_len()),
            ),
            fmt_duration(elapsed),
        ]);
        if report.verdict == Verdict::Violated && violation.is_none() {
            violation = Some((authority, report));
        }
    }
    println!("{table}");
    println!(
        "reading: under the three restrained authorities every correct node that starts\n\
         listening eventually attains active membership; a full-shifting coupler can replay\n\
         buffered frames so that a correct node is denied integration forever.\n"
    );

    if let Some((authority, report)) = violation {
        let node = report
            .violating_node
            .map_or_else(|| "?".to_string(), |n| n.to_string());
        heading(&format!(
            "fair lasso counterexample ({authority}, node {node} never integrates)"
        ));
        let model = ClusterModel::new(report.config);
        let lasso = report.lasso.as_ref().expect("violated ⇒ lasso");
        for line in narrate_lasso(&model, lasso) {
            println!("{line}");
        }
    }
}

fn scenario_mode(paths: &[PathBuf], artifacts: Option<&Path>) -> ! {
    let mut failures = 0usize;
    let mut checked = 0usize;
    for path in paths {
        let scenario = match Scenario::load(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        let Some(expected) = scenario.expect.liveness else {
            println!("{}: no expect.liveness — skipped", scenario.name);
            continue;
        };
        checked += 1;
        let config = scenario.checker_config();
        let report = verify_cluster_liveness(&config);
        let ok = match expected {
            ExpectedVerdict::Holds => report.verdict == Verdict::Holds,
            ExpectedVerdict::Violated => report.verdict == Verdict::Violated,
        };
        println!(
            "{}: liveness {} (expected {expected}, {} states, {}) ... {}",
            scenario.name,
            verdict_word(report.verdict),
            report.stats.states,
            fmt_duration(report.stats.build_time + report.stats.check_time),
            if ok { "ok" } else { "FAILED" }
        );
        if !ok {
            failures += 1;
        }
        if let (Some(dir), Some(lasso)) = (artifacts, report.lasso.as_ref()) {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                std::process::exit(1);
            }
            let file = dir.join(format!("{}.lasso.txt", scenario.name));
            let model = ClusterModel::new(config);
            let mut text = format!(
                "scenario: {}\nviolating node: {}\n\n",
                scenario.name,
                report
                    .violating_node
                    .map_or_else(|| "?".to_string(), |n| n.to_string())
            );
            for line in narrate_lasso(&model, lasso) {
                text.push_str(&line);
                text.push('\n');
            }
            if let Err(e) = std::fs::write(&file, text) {
                eprintln!("error: cannot write {}: {e}", file.display());
                std::process::exit(1);
            }
            println!("  wrote {}", file.display());
        }
    }
    println!("\n{checked} scenario(s) checked, {failures} failure(s)");
    std::process::exit(i32::from(failures > 0));
}

/// Records `BENCH_liveness.json`: for the two headline S4 configs, the
/// sequential fair-graph build time, the per-node SCC check time, and
/// the threaded builds with their speedups. The stub `serde_json`
/// cannot serialize maps, so the JSON is written by hand.
fn bench_snapshot(path: &str, max_threads: Option<usize>) {
    // detlint: allow(DL03) reason=bench sizing and host reporting only; measured worker counts are fixed in the sweep
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    heading("liveness hot-path snapshot (fair-graph build + SCC checks)");
    println!("host CPUs: {host_cpus}");

    let cap = max_threads.unwrap_or(4);
    let sweep: Vec<usize> = [2usize, 4].into_iter().filter(|&t| t <= cap).collect();

    let mut run_blocks = Vec::new();
    // Full shifting explores ~90× the states of small shifting; one
    // timed repetition keeps the snapshot affordable there.
    for (label, authority, runs) in [
        ("paper/small-shifting", CouplerAuthority::SmallShifting, 3),
        ("paper/full-shifting", CouplerAuthority::FullShifting, 1),
    ] {
        let config = ClusterConfig::paper(authority);
        let model = ClusterModel::new(config);
        let codec = ClusterCodec::new(&config);
        let fairness = cluster_startup_fairness(config.nodes);

        let mut graph = None;
        let mut build_secs = f64::INFINITY;
        for _ in 0..runs {
            // detlint: allow(DL02) reason=benchmark measurement; wall-clock is the quantity this binary reports
            let started = Instant::now();
            let g = FairGraph::build(&model, &codec, &fairness, DEFAULT_MAX_STATES);
            build_secs = build_secs.min(started.elapsed().as_secs_f64());
            graph = Some(g);
        }
        let graph = graph.expect("ran at least once");
        let states = graph.state_count();
        println!(
            "{label}: {states} states, {} edges, built in {}",
            graph.edge_count(),
            fmt_duration(std::time::Duration::from_secs_f64(build_secs))
        );

        // detlint: allow(DL02) reason=benchmark measurement; wall-clock is the quantity this binary reports
        let check_started = Instant::now();
        let mut sccs_examined = 0u64;
        let mut verdicts = Vec::with_capacity(config.nodes);
        for node in 0..config.nodes {
            let outcome = graph.check(&node_integration_property(node));
            sccs_examined += outcome.stats.sccs_examined;
            verdicts.push(outcome.verdict);
        }
        let check_secs = check_started.elapsed().as_secs_f64();
        let verdict = if verdicts.contains(&Verdict::Violated) {
            Verdict::Violated
        } else if verdicts.contains(&Verdict::BudgetExhausted) {
            Verdict::BudgetExhausted
        } else {
            Verdict::Holds
        };
        println!(
            "  {} per-node checks: {verdict:?}, {sccs_examined} SCCs in {}",
            config.nodes,
            fmt_duration(std::time::Duration::from_secs_f64(check_secs))
        );

        let mut threaded_entries = Vec::new();
        for &threads in &sweep {
            let mut secs = f64::INFINITY;
            for _ in 0..runs {
                // detlint: allow(DL02) reason=benchmark measurement; wall-clock is the quantity this binary reports
                let started = Instant::now();
                let g = FairGraph::build_with_threads(
                    &model,
                    &codec,
                    &fairness,
                    DEFAULT_MAX_STATES,
                    threads,
                );
                secs = secs.min(started.elapsed().as_secs_f64());
                assert_eq!(g.state_count(), states, "threaded build must agree");
                assert_eq!(
                    g.edge_count(),
                    graph.edge_count(),
                    "threaded build must agree"
                );
            }
            let comparable = threads <= host_cpus;
            let speedup = build_secs / secs;
            println!(
                "  threaded build, {threads} thread(s): {} ({speedup:.2}x sequential{})",
                fmt_duration(std::time::Duration::from_secs_f64(secs)),
                if comparable { "" } else { ", not comparable" }
            );
            threaded_entries.push(format!(
                "        {{\"threads\": {threads}, \"seconds\": {secs:.6}, \
                 \"speedup_vs_sequential\": {speedup:.3}, \"comparable\": {comparable}}}"
            ));
        }

        run_blocks.push(format!(
            "    {{\n      \"config\": \"{label}\",\n      \"verdict\": \"{verdict:?}\",\n      \
             \"states\": {states},\n      \"edges\": {},\n      \"sccs_examined\": {sccs_examined},\n      \
             \"build\": {{\"seconds\": {build_secs:.6}, \"states_per_second\": {:.0}}},\n      \
             \"check_seconds\": {check_secs:.6},\n      \"threaded_build\": [\n{}\n      ]\n    }}",
            graph.edge_count(),
            states as f64 / build_secs,
            threaded_entries.join(",\n"),
        ));
    }

    let json = format!(
        "{{\n  \"snapshot\": \"liveness_throughput\",\n  \"host_cpus\": {host_cpus},\n  \
         \"note\": \"entries with comparable=false used more threads than host CPUs and only time-slice one core; judge scaling on comparable entries\",\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        run_blocks.join(",\n"),
    );
    std::fs::write(path, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("\nwrote {path}");
}
