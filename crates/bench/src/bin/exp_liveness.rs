//! Supplementary experiment S4 — integration liveness under weak fairness.
//!
//! The paper's Section 5 property is pure safety ("no integrated node
//! freezes"); a cluster that never comes up satisfies it vacuously. This
//! experiment checks the complementary *liveness* property per node —
//! `listening(i) ~> integrated(i)` — under weak fairness on each node's
//! startup progress, for all four star-coupler authority levels.
//!
//! Expected rows: passive / time windows / small shifting → the leads-to
//! **holds** for every node; full shifting → a fair lasso counterexample
//! whose cycle keeps a correct node out of active membership forever.
//!
//! Usage:
//!
//! * `exp_liveness` — the S4 paper-style table plus the narrated lasso
//!   for the full-shifting violation.
//! * `exp_liveness [--artifacts DIR] SCENARIO.toml...` — check every
//!   scenario that declares `expect.liveness`; exit non-zero on any
//!   mismatch. With `--artifacts`, rendered lassos of violated runs are
//!   written to `DIR` (one `.lasso.txt` per scenario).

use std::path::{Path, PathBuf};
use std::time::Instant;
use tta_analysis::tables::Table;
use tta_bench::{fmt_duration, heading};
use tta_conformance::{ExpectedVerdict, Scenario};
use tta_core::{
    narrate_lasso, verify_cluster_liveness, ClusterConfig, ClusterModel, LivenessReport, Verdict,
};
use tta_guardian::CouplerAuthority;

fn main() {
    let mut artifacts: Option<PathBuf> = None;
    let mut scenarios: Vec<PathBuf> = Vec::new();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--artifacts" => {
                let dir = iter
                    .next()
                    .unwrap_or_else(|| usage("--artifacts needs a directory"));
                artifacts = Some(PathBuf::from(dir));
            }
            other if other.starts_with("--") => usage(&format!("unknown flag {other}")),
            path => scenarios.push(PathBuf::from(path)),
        }
    }
    if scenarios.is_empty() {
        if artifacts.is_some() {
            usage("--artifacts only applies to scenario mode");
        }
        paper_table();
    } else {
        scenario_mode(&scenarios, artifacts.as_deref());
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!("usage: exp_liveness [--artifacts DIR] [SCENARIO.toml...]");
    std::process::exit(2);
}

fn verdict_word(verdict: Verdict) -> &'static str {
    match verdict {
        Verdict::Holds => "holds",
        Verdict::Violated => "VIOLATED",
        Verdict::BudgetExhausted => "budget exhausted",
    }
}

/// One-line per-node verdict summary, e.g. `✓✓✓✗`.
fn per_node_marks(report: &LivenessReport) -> String {
    report
        .per_node
        .iter()
        .map(|v| match v {
            Verdict::Holds => '✓',
            Verdict::Violated => '✗',
            Verdict::BudgetExhausted => '?',
        })
        .collect()
}

fn paper_table() {
    heading("S4 — integration liveness vs. star-coupler authority (4-node cluster)");
    println!("property: for every node i, listening(i) ~> integrated(i)");
    println!(
        "fairness: weak fairness on each node's startup progress (freeze→init, init→listen)\n"
    );

    let mut table = Table::new([
        "coupler authority",
        "liveness verdict",
        "per node",
        "states",
        "SCCs examined",
        "lasso (stem+cycle)",
        "time",
    ]);
    let mut violation: Option<(CouplerAuthority, LivenessReport)> = None;
    for authority in CouplerAuthority::all() {
        let config = ClusterConfig::paper(authority);
        let started = Instant::now();
        let report = verify_cluster_liveness(&config);
        let elapsed = started.elapsed();
        table.row([
            authority.to_string(),
            verdict_word(report.verdict).to_string(),
            per_node_marks(&report),
            report.stats.states.to_string(),
            report.stats.sccs_examined.to_string(),
            report.lasso.as_ref().map_or_else(
                || "—".to_string(),
                |l| format!("{}+{} slots", l.stem_len(), l.cycle_len()),
            ),
            fmt_duration(elapsed),
        ]);
        if report.verdict == Verdict::Violated && violation.is_none() {
            violation = Some((authority, report));
        }
    }
    println!("{table}");
    println!(
        "reading: under the three restrained authorities every correct node that starts\n\
         listening eventually attains active membership; a full-shifting coupler can replay\n\
         buffered frames so that a correct node is denied integration forever.\n"
    );

    if let Some((authority, report)) = violation {
        let node = report
            .violating_node
            .map_or_else(|| "?".to_string(), |n| n.to_string());
        heading(&format!(
            "fair lasso counterexample ({authority}, node {node} never integrates)"
        ));
        let model = ClusterModel::new(report.config);
        let lasso = report.lasso.as_ref().expect("violated ⇒ lasso");
        for line in narrate_lasso(&model, lasso) {
            println!("{line}");
        }
    }
}

fn scenario_mode(paths: &[PathBuf], artifacts: Option<&Path>) -> ! {
    let mut failures = 0usize;
    let mut checked = 0usize;
    for path in paths {
        let scenario = match Scenario::load(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        let Some(expected) = scenario.expect.liveness else {
            println!("{}: no expect.liveness — skipped", scenario.name);
            continue;
        };
        checked += 1;
        let config = scenario.checker_config();
        let report = verify_cluster_liveness(&config);
        let ok = match expected {
            ExpectedVerdict::Holds => report.verdict == Verdict::Holds,
            ExpectedVerdict::Violated => report.verdict == Verdict::Violated,
        };
        println!(
            "{}: liveness {} (expected {expected}, {} states, {}) ... {}",
            scenario.name,
            verdict_word(report.verdict),
            report.stats.states,
            fmt_duration(report.stats.build_time + report.stats.check_time),
            if ok { "ok" } else { "FAILED" }
        );
        if !ok {
            failures += 1;
        }
        if let (Some(dir), Some(lasso)) = (artifacts, report.lasso.as_ref()) {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                std::process::exit(1);
            }
            let file = dir.join(format!("{}.lasso.txt", scenario.name));
            let model = ClusterModel::new(config);
            let mut text = format!(
                "scenario: {}\nviolating node: {}\n\n",
                scenario.name,
                report
                    .violating_node
                    .map_or_else(|| "?".to_string(), |n| n.to_string())
            );
            for line in narrate_lasso(&model, lasso) {
                text.push_str(&line);
                text.push('\n');
            }
            if let Err(e) = std::fs::write(&file, text) {
                eprintln!("error: cannot write {}: {e}", file.display());
                std::process::exit(1);
            }
            println!("  wrote {}", file.display());
        }
    }
    println!("\n{checked} scenario(s) checked, {failures} failure(s)");
    std::process::exit(i32::from(failures > 0));
}
