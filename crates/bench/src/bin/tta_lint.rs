//! `tta_lint` — static analysis of scenarios, properties and fault
//! plans (see `tta-modellint`).
//!
//! Usage:
//!
//! ```text
//! tta_lint [OPTIONS] [PATHS...]
//!
//!   PATHS                scenario files, or directories expanded to
//!                        their *.toml entries (sorted)
//!   --s4                 also lint the built-in S4 property set (the
//!                        per-node liveness/recovery properties across
//!                        all four authority levels)
//!   --json               emit line-oriented JSON instead of rendered
//!                        diagnostics
//!   --deny warnings      fail on any warning-severity diagnostic
//!   --deny CODE          fail on CODE regardless of severity
//!   --allow CODE         never fail on CODE (wins over --deny)
//!   --threads N          worker threads (0 = one per target)
//!   --max-states N       state budget per reachable-space analysis
//!   --evidence           also print per-target evidence (reachable
//!                        states, antecedent witness counts, fault-mode
//!                        coverage); always included in --json output
//! ```
//!
//! Exit status: 0 when nothing is denied, 1 when any denied diagnostic
//! remains (parse errors are always denied), 2 on usage errors.

use std::path::PathBuf;
use tta_modellint::{catalog, lint, AnalysisOptions, Gate, LintOptions};

fn main() {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut gate = Gate::default();
    let mut opts = LintOptions::default();
    let mut json = false;
    let mut evidence = false;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--s4" => opts.include_s4 = true,
            "--json" => json = true,
            "--evidence" => evidence = true,
            "--deny" => {
                let what = iter
                    .next()
                    .unwrap_or_else(|| usage("--deny needs an argument"));
                if what.eq_ignore_ascii_case("warnings") {
                    gate.deny_warnings = true;
                } else {
                    let code = catalog::find(&what)
                        .unwrap_or_else(|| usage(&format!("unknown lint code `{what}`")));
                    gate.deny_codes.push(code.id.to_string());
                }
            }
            "--allow" => {
                let what = iter
                    .next()
                    .unwrap_or_else(|| usage("--allow needs an argument"));
                let code = catalog::find(&what)
                    .unwrap_or_else(|| usage(&format!("unknown lint code `{what}`")));
                gate.allow_codes.push(code.id.to_string());
            }
            "--threads" => {
                let n = iter
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a number"));
                opts.threads = n
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("bad thread count `{n}`")));
            }
            "--max-states" => {
                let n = iter
                    .next()
                    .unwrap_or_else(|| usage("--max-states needs a number"));
                opts.analysis = AnalysisOptions {
                    max_states: n
                        .parse()
                        .unwrap_or_else(|_| usage(&format!("bad state budget `{n}`"))),
                };
            }
            other if other.starts_with("--") => usage(&format!("unknown flag {other}")),
            path => paths.push(PathBuf::from(path)),
        }
    }
    if paths.is_empty() && !opts.include_s4 {
        usage("nothing to lint: pass scenario paths and/or --s4");
    }

    let run = lint(&paths, &opts);
    if json {
        print!("{}", run.report.render_json(&gate));
        for ev in &run.evidence {
            println!("{}", ev.render_json());
        }
    } else {
        print!("{}", run.report.render(&gate));
        if evidence {
            for ev in &run.evidence {
                println!("evidence: {}", ev.render_json());
            }
        }
    }

    if run.report.denied(&gate).next().is_some() {
        std::process::exit(1);
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!(
        "usage: tta_lint [--s4] [--json] [--evidence] [--deny warnings|CODE] \
         [--allow CODE] [--threads N] [--max-states N] [PATHS...]"
    );
    std::process::exit(2);
}
