//! Experiment F3 — Figure 3: relationship between frame-size range and
//! the admissible ratio of clock rates.
//!
//! The curve is eq. (10): ρ_max/ρ_min = f_max / (f_max − f_min + 1 + le),
//! plotted for le = 4; valid systems lie **below** it. The paper's spot
//! check — f_max = f_min = 128 bits gives a ratio of f_max/5 ≈ 25, not
//! f_max — is reproduced, along with an ASCII rendering of the curve.

use tta_analysis::tables::Table;
use tta_analysis::{clock_ratio_limit, figure3_series};
use tta_bench::heading;
use tta_types::constants::{LINE_ENCODING_BITS, N_FRAME_MIN_BITS, X_FRAME_MAX_BITS};

fn main() {
    let le = LINE_ENCODING_BITS;

    heading("F3 — clock-ratio limit vs. frame-size range (eq. 10, le = 4)");

    let mut table = Table::new([
        "f_max (bits)",
        "f_min (bits)",
        "range f_max−f_min",
        "ρmax/ρmin limit",
    ]);
    for point in figure3_series(&[128, 512, X_FRAME_MAX_BITS], N_FRAME_MIN_BITS, 8, le) {
        table.row([
            point.max_frame_bits.to_string(),
            point.min_frame_bits.to_string(),
            (point.max_frame_bits - point.min_frame_bits).to_string(),
            format!("{:.2}", point.ratio_limit),
        ]);
    }
    println!("{table}");

    heading("paper spot check");
    let ratio_128 = clock_ratio_limit(128, 128, le).expect("feasible");
    println!(
        "f_max = f_min = 128 bits → ratio = 128 / (1 + le) = {ratio_128:.1} (paper: \"f_max / 5 = 25\")"
    );
    println!(
        "The 1 + le term caps the ratio even with zero frame-size range — \"a significant\n\
         limit at high clock ratios\"."
    );

    heading("ASCII rendering (f_max = 2076 bits)");
    ascii_curve(X_FRAME_MAX_BITS, le);
    println!("valid systems lie below the curve: wide frame-size ranges and wide clock-rate");
    println!("ranges are mutually exclusive (Section 6).");
}

/// Plots ratio limit (log-ish vertical axis) against f_min.
fn ascii_curve(f_max: u32, le: u32) {
    const COLS: usize = 64;
    const ROWS: usize = 16;
    let points: Vec<(u32, f64)> = (0..=COLS)
        .map(|i| {
            let f_min = N_FRAME_MIN_BITS + ((f_max - N_FRAME_MIN_BITS) as usize * i / COLS) as u32;
            (
                f_min,
                clock_ratio_limit(f_max, f_min, le).expect("feasible"),
            )
        })
        .collect();
    let max_log = points
        .iter()
        .map(|(_, r)| r.log10())
        .fold(f64::MIN, f64::max);
    let min_log = points
        .iter()
        .map(|(_, r)| r.log10())
        .fold(f64::MAX, f64::min);
    let mut grid = vec![vec![' '; COLS + 1]; ROWS + 1];
    for (i, (_, ratio)) in points.iter().enumerate() {
        let y = ((ratio.log10() - min_log) / (max_log - min_log) * ROWS as f64).round() as usize;
        grid[ROWS - y][i] = '*';
    }
    println!(
        "ρmax/ρmin (log scale, {:.2} … {:.1})",
        10f64.powf(min_log),
        10f64.powf(max_log)
    );
    for row in grid {
        let line: String = row.into_iter().collect();
        println!("|{line}");
    }
    println!("+{}", "-".repeat(COLS + 1));
    println!(" f_min = {N_FRAME_MIN_BITS}  …  f_min = f_max = {f_max}");
}
