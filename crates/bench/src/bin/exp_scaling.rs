//! Supplementary experiment S1 — state-space scaling.
//!
//! How the reachable state space and verification time of the Section 4
//! model grow with cluster size and with the replay budget. Not a paper
//! table (the paper fixes 4 nodes), but it substantiates the paper's
//! claim that the model is tractable and maps where it stops being so.

use std::time::Instant;
use tta_analysis::tables::Table;
use tta_bench::{fmt_duration, heading};
use tta_core::{verify_cluster, ClusterConfig, FaultBudget, Verdict};
use tta_guardian::CouplerAuthority;

fn main() {
    heading("S1a — state space vs. cluster size (per coupler authority)");
    let mut table = Table::new(["nodes", "authority", "verdict", "states", "depth", "time"]);
    for nodes in 2..=5 {
        for authority in [CouplerAuthority::SmallShifting, CouplerAuthority::FullShifting] {
            let config = ClusterConfig {
                nodes,
                ..ClusterConfig::paper(authority)
            };
            let started = Instant::now();
            let report = verify_cluster(&config);
            table.row([
                nodes.to_string(),
                authority.to_string(),
                format!("{:?}", report.verdict),
                report.stats.states_explored.to_string(),
                report.stats.depth_reached.to_string(),
                fmt_duration(started.elapsed()),
            ]);
        }
    }
    println!("{table}");

    heading("S1b — replay budget vs. counterexample length (4 nodes, full shifting)");
    let mut table = Table::new(["budget", "verdict", "trace length", "states", "time"]);
    for budget in [
        FaultBudget::AtMost(0),
        FaultBudget::AtMost(1),
        FaultBudget::AtMost(2),
        FaultBudget::Unlimited,
    ] {
        let config = ClusterConfig {
            out_of_slot_budget: budget,
            ..ClusterConfig::paper(CouplerAuthority::FullShifting)
        };
        let started = Instant::now();
        let report = verify_cluster(&config);
        table.row([
            budget.to_string(),
            match report.verdict {
                Verdict::Holds => "holds".into(),
                Verdict::Violated => "VIOLATED".to_string(),
                Verdict::BudgetExhausted => "budget exhausted".into(),
            },
            report
                .counterexample_len()
                .map_or_else(|| "—".into(), |l| l.to_string()),
            report.stats.states_explored.to_string(),
            fmt_duration(started.elapsed()),
        ]);
    }
    println!("{table}");
    println!("a zero budget restores safety even for full shifting: the *capability to");
    println!("replay*, not the authority label, is what breaks the property. Constraining");
    println!("the budget lengthens the shortest counterexample, as the paper observes.");
}
