//! Supplementary experiment S1 — state-space scaling.
//!
//! How the reachable state space and verification time of the Section 4
//! model grow with cluster size and with the replay budget. Not a paper
//! table (the paper fixes 4 nodes), but it substantiates the paper's
//! claim that the model is tractable and maps where it stops being so.
//!
//! Flags:
//!
//! * `--threads N` — run the S1 sweeps with the parallel BFS backend at
//!   `N` worker threads instead of sequential BFS. Combined with
//!   `--bench-json`, caps the parallel sweep at `N` threads instead.
//! * `--bench-json [PATH]` — skip the tables and instead record a
//!   machine-readable throughput snapshot (sequential vs. seed-style
//!   visited set vs. parallel at 1/2/4/8 threads, plus visited-set byte
//!   accounting) to `PATH` (default `BENCH_modelcheck.json`). Each
//!   parallel entry records its speedup over the sequential run and a
//!   `comparable` flag that is `false` whenever the entry used more
//!   threads than the host has CPUs — time-slicing one core says
//!   nothing about parallel scaling, so consumers (the CI bench gate)
//!   must skip non-comparable entries.

use std::time::Instant;
use tta_analysis::tables::Table;
use tta_bench::{fmt_duration, heading, seed_style_bfs};
use tta_core::{
    verify_cluster_with, CheckStrategy, ClusterConfig, ClusterModel, FaultBudget, Verdict,
};
use tta_guardian::CouplerAuthority;

struct Args {
    threads: Option<usize>,
    bench_json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        threads: None,
        bench_json: None,
    };
    let mut iter = std::env::args().skip(1).peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threads" => {
                let value = iter
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a value"));
                args.threads = Some(
                    value
                        .parse()
                        .unwrap_or_else(|_| usage("--threads needs an integer")),
                );
            }
            "--bench-json" => {
                // Optional path operand; defaults to the committed snapshot name.
                let path = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().expect("peeked"),
                    _ => "BENCH_modelcheck.json".to_string(),
                };
                args.bench_json = Some(path);
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }
    args
}

fn usage(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!("usage: exp_scaling [--threads N] [--bench-json [PATH]]");
    std::process::exit(2);
}

fn strategy_for(args: &Args) -> CheckStrategy {
    match args.threads {
        Some(threads) => CheckStrategy::ParallelBfs { threads },
        None => CheckStrategy::Bfs,
    }
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.bench_json {
        bench_snapshot(path, args.threads);
        return;
    }
    let strategy = strategy_for(&args);

    heading("S1a — state space vs. cluster size (per coupler authority)");
    let mut table = Table::new(["nodes", "authority", "verdict", "states", "depth", "time"]);
    for nodes in 2..=5 {
        for authority in [
            CouplerAuthority::SmallShifting,
            CouplerAuthority::FullShifting,
        ] {
            let config = ClusterConfig {
                nodes,
                ..ClusterConfig::paper(authority)
            };
            // detlint: allow(DL02) reason=benchmark measurement; wall-clock is the quantity this binary reports
            let started = Instant::now();
            let report = verify_cluster_with(&config, strategy);
            table.row([
                nodes.to_string(),
                authority.to_string(),
                format!("{:?}", report.verdict),
                report.stats.states_explored.to_string(),
                report.stats.depth_reached.to_string(),
                fmt_duration(started.elapsed()),
            ]);
        }
    }
    println!("{table}");

    heading("S1b — replay budget vs. counterexample length (4 nodes, full shifting)");
    let mut table = Table::new(["budget", "verdict", "trace length", "states", "time"]);
    for budget in [
        FaultBudget::AtMost(0),
        FaultBudget::AtMost(1),
        FaultBudget::AtMost(2),
        FaultBudget::Unlimited,
    ] {
        let config = ClusterConfig {
            out_of_slot_budget: budget,
            ..ClusterConfig::paper(CouplerAuthority::FullShifting)
        };
        // detlint: allow(DL02) reason=benchmark measurement; wall-clock is the quantity this binary reports
        let started = Instant::now();
        let report = verify_cluster_with(&config, strategy);
        table.row([
            budget.to_string(),
            match report.verdict {
                Verdict::Holds => "holds".into(),
                Verdict::Violated => "VIOLATED".to_string(),
                Verdict::BudgetExhausted => "budget exhausted".into(),
            },
            report
                .counterexample_len()
                .map_or_else(|| "—".into(), |l| l.to_string()),
            report.stats.states_explored.to_string(),
            fmt_duration(started.elapsed()),
        ]);
    }
    println!("{table}");
    println!("a zero budget restores safety even for full shifting: the *capability to");
    println!("replay*, not the authority label, is what breaks the property. Constraining");
    println!("the budget lengthens the shortest counterexample, as the paper observes.");
}

/// One timed run; the minimum of `runs` repetitions (throughput snapshots
/// should not be inflated by a cold first run).
fn time_min<F: FnMut() -> u64>(runs: usize, mut f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut states = 0;
    for _ in 0..runs {
        // detlint: allow(DL02) reason=benchmark measurement; wall-clock is the quantity this binary reports
        let started = Instant::now();
        states = f();
        best = best.min(started.elapsed().as_secs_f64());
    }
    (best, states)
}

fn json_run(seconds: f64, states: u64) -> String {
    format!(
        "{{\"seconds\": {seconds:.6}, \"states_per_second\": {:.0}}}",
        states as f64 / seconds
    )
}

/// Records `BENCH_modelcheck.json`. The stub `serde_json` the offline
/// build patches in cannot serialize maps, so the JSON is written by
/// hand — it is a handful of flat fields.
fn bench_snapshot(path: &str, max_threads: Option<usize>) {
    const RUNS: usize = 3;
    let config = ClusterConfig::paper(CouplerAuthority::SmallShifting);
    // detlint: allow(DL03) reason=bench sizing and host reporting only; measured worker counts are fixed in the sweep
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    heading("model-checking throughput snapshot (paper config, small shifting)");
    println!("host CPUs: {host_cpus}");

    let (seed_secs, seed_states) = time_min(RUNS, || seed_style_bfs(&ClusterModel::new(config)));
    println!(
        "seed-style visited set: {seed_states} states in {}",
        fmt_duration_secs(seed_secs)
    );

    let mut sequential = None;
    let (seq_secs, seq_states) = time_min(RUNS, || {
        let report = verify_cluster_with(&config, CheckStrategy::Bfs);
        let states = report.stats.states_explored;
        sequential = Some(report);
        states
    });
    let sequential = sequential.expect("ran at least once");
    assert_eq!(
        seq_states, seed_states,
        "both visited-set designs must agree"
    );
    println!(
        "arena + compact codec:  {seq_states} states in {}",
        fmt_duration_secs(seq_secs)
    );

    let cap = max_threads.unwrap_or(8);
    let mut parallel_entries = Vec::new();
    for threads in [1usize, 2, 4, 8].into_iter().filter(|&t| t <= cap) {
        let (secs, states) = time_min(RUNS, || {
            verify_cluster_with(&config, CheckStrategy::ParallelBfs { threads })
                .stats
                .states_explored
        });
        assert_eq!(
            states, seq_states,
            "parallel backend must agree at {threads} threads"
        );
        // More workers than CPUs only time-slices one core; such an
        // entry says nothing about parallel scaling and is flagged so
        // the CI bench gate skips it instead of failing on it.
        let comparable = threads <= host_cpus;
        let speedup = seq_secs / secs;
        println!(
            "parallel, {threads} thread(s): {states} states in {} ({speedup:.2}x sequential{})",
            fmt_duration_secs(secs),
            if comparable { "" } else { ", not comparable" }
        );
        parallel_entries.push(format!(
            "    {{\"threads\": {threads}, \"seconds\": {secs:.6}, \"states_per_second\": {:.0}, \
             \"speedup_vs_sequential\": {speedup:.3}, \"comparable\": {comparable}}}",
            states as f64 / secs
        ));
    }

    let json = format!(
        "{{\n  \"snapshot\": \"model_checking_throughput\",\n  \"config\": \"paper/small-shifting\",\n  \"host_cpus\": {host_cpus},\n  \"note\": \"entries with comparable=false used more threads than host CPUs and only time-slice one core; judge scaling on comparable entries\",\n  \"states\": {},\n  \"visited_bytes\": {},\n  \"bytes_per_state\": {:.1},\n  \"seed_style_visited_set\": {},\n  \"sequential_arena\": {},\n  \"parallel_arena\": [\n{}\n  ]\n}}\n",
        seq_states,
        sequential.stats.visited_bytes,
        sequential.stats.bytes_per_state(),
        json_run(seed_secs, seed_states),
        json_run(seq_secs, seq_states),
        parallel_entries.join(",\n"),
    );
    std::fs::write(path, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("\nwrote {path}");
}

fn fmt_duration_secs(secs: f64) -> String {
    fmt_duration(std::time::Duration::from_secs_f64(secs))
}
