//! Experiment E10 — recovery and graceful degradation: what the E9
//! containment table looks like once hosts are allowed to *restart*
//! frozen controllers and faults are *transient*.
//!
//! Each cell runs a Monte-Carlo campaign of one fault scenario against
//! one topology/authority/restart-policy combination, bounds the fault
//! to a transient window, and classifies every trial as contained /
//! recovered / degraded-stable / permanent-loss, with availability (the
//! mean fraction of slots at full healthy strength) and mean
//! time-to-reintegration alongside.
//!
//! Expected shape:
//!
//! * With `never` (the paper's semantics — freeze is absorbing) both
//!   ends of the authority spectrum turn transient disturbances into
//!   **permanent losses**: weak authority lets an SOS sender freeze
//!   healthy peers, and the one fault the star *adds* — the
//!   full-shifting replay — freezes them from the other side.
//! * Unlimited restarting (`immediate`, `watchdog`) converts those
//!   trials into bounded-TTR recoveries once the fault clears; a
//!   bounded retry budget that the fault window outlasts degenerates
//!   back to `never`.
//! * Reshaping authorities contain the SOS sender outright, so their
//!   policy rows all agree; channel redundancy contains silence
//!   everywhere.
//!
//! Flags: `--threads N` pins workers (reports are bit-identical either
//! way), `--json [PATH]` emits the machine-readable table,
//! `--check GOLDEN` diffs that JSON against a fixture (CI), `--smoke`
//! runs the reduced deterministic sweep the `recovery` CI job pins,
//! `--daemon [SOCKET]` routes every cell through the `tta-campaignd`
//! service (same seeds, bit-identical tables — E12 pins this).

use tta_analysis::tables::Table;
use tta_bench::{heading, CampaignArgs, CampaignCell, CampaignJson, DaemonSession};
use tta_campaignd::spec::{JobSpec, ScenarioSource};
use tta_guardian::CouplerAuthority;
use tta_protocol::RestartPolicy;
use tta_sim::{Campaign, RecoveryReport, Scenario, Topology};

const USAGE: &str =
    "exp_recovery [--threads N] [--json [PATH]] [--check GOLDEN] [--smoke] [--daemon [SOCKET]]";

/// One topology/authority column of the sweep.
type Config = (&'static str, Topology, CouplerAuthority);

struct Sweep {
    experiment: &'static str,
    configs: Vec<Config>,
    scenarios: Vec<Scenario>,
    policies: Vec<RestartPolicy>,
    trials: u32,
    slots: u64,
    fault_duration: u64,
}

fn full_sweep() -> Sweep {
    Sweep {
        experiment: "E10",
        configs: vec![
            ("bus / local", Topology::Bus, CouplerAuthority::Passive),
            ("star / passive", Topology::Star, CouplerAuthority::Passive),
            (
                "star / time windows",
                Topology::Star,
                CouplerAuthority::TimeWindows,
            ),
            (
                "star / small shifting",
                Topology::Star,
                CouplerAuthority::SmallShifting,
            ),
            (
                "star / full shifting",
                Topology::Star,
                CouplerAuthority::FullShifting,
            ),
        ],
        scenarios: vec![
            Scenario::SosSender,
            Scenario::CouplerSilence,
            Scenario::CouplerReplay,
        ],
        policies: vec![
            RestartPolicy::Never,
            RestartPolicy::Immediate,
            RestartPolicy::BoundedRetry {
                max_restarts: 3,
                backoff_slots: 4,
            },
            RestartPolicy::Watchdog { silence_slots: 8 },
        ],
        trials: 24,
        slots: 400,
        fault_duration: 60,
    }
}

/// The reduced sweep the CI `recovery` job runs: two scenarios that
/// bracket the story (an SOS sender every guardian contains; the replay
/// only full shifting admits) × the two extreme policies × the two
/// extreme authorities. Deterministic — same seeds, any thread count.
fn smoke_sweep() -> Sweep {
    Sweep {
        experiment: "E10-smoke",
        configs: vec![
            ("star / passive", Topology::Star, CouplerAuthority::Passive),
            (
                "star / full shifting",
                Topology::Star,
                CouplerAuthority::FullShifting,
            ),
        ],
        scenarios: vec![Scenario::SosSender, Scenario::CouplerReplay],
        policies: vec![
            RestartPolicy::Never,
            RestartPolicy::Watchdog { silence_slots: 8 },
        ],
        trials: 12,
        slots: 300,
        fault_duration: 60,
    }
}

fn run_cell(
    sweep: &Sweep,
    config: &Config,
    scenario: Scenario,
    policy: RestartPolicy,
    threads: Option<usize>,
    session: Option<&DaemonSession>,
) -> RecoveryReport {
    let (_, topology, authority) = *config;
    if let Some(session) = session {
        // The service path: same scenario, same seeds, same fold — the
        // daemon shards trials, journals chunks, and the summary
        // aggregate rebuilds a report bit-identical to the inline one.
        let spec = JobSpec {
            topology,
            authority,
            policy,
            trials: sweep.trials,
            slots: sweep.slots,
            fault_duration: Some(sweep.fault_duration),
            ..JobSpec::new(ScenarioSource::Builtin(scenario))
        };
        let result = session
            .client
            .submit_resilient(
                &spec,
                threads,
                &tta_campaignd::client::ReconnectPolicy::default(),
                &mut |_| {},
            )
            .unwrap_or_else(|e| {
                eprintln!("error: campaign daemon failed: {e}");
                std::process::exit(1);
            });
        return RecoveryReport::from_aggregate(
            scenario,
            topology,
            authority,
            policy,
            &result.aggregate,
        );
    }
    let mut campaign = Campaign::new(4, topology, authority)
        .trials(sweep.trials)
        .slots(sweep.slots)
        .restart_policy(policy)
        .fault_duration(sweep.fault_duration);
    if let Some(threads) = threads {
        campaign = campaign.threads(threads);
    }
    campaign.run_recovery(scenario)
}

fn table_cell(report: &RecoveryReport) -> String {
    if !report.applicable() {
        return "n/a".to_string();
    }
    let mut cell = format!("{:.3}", report.availability());
    if report.permanent_loss > 0 {
        cell.push_str(&format!(" ({} lost)", report.permanent_loss));
    } else if let Some(ttr) = report.mean_time_to_reintegration {
        cell.push_str(&format!(" (TTR {ttr:.0})"));
    }
    cell
}

fn json_cell(report: &RecoveryReport) -> CampaignCell {
    CampaignCell {
        scenario: report.scenario.to_string(),
        topology: report.topology.to_string(),
        authority: report.authority.to_string(),
        policy: Some(report.policy.to_string()),
        outcomes: vec![
            ("contained", u64::from(report.contained)),
            ("recovered", u64::from(report.recovered)),
            ("degraded", u64::from(report.degraded)),
            ("permanent_loss", u64::from(report.permanent_loss)),
        ],
        metrics: vec![
            (
                "availability",
                report.applicable().then(|| report.availability()),
            ),
            ("mean_ttr", report.mean_time_to_reintegration),
        ],
    }
}

fn main() {
    let args = CampaignArgs::parse(USAGE, true);
    let session = DaemonSession::from_args(&args);
    let sweep = if args.smoke {
        smoke_sweep()
    } else {
        full_sweep()
    };

    heading(&format!(
        "{} — recovery & graceful degradation: transient faults vs. restart policies",
        sweep.experiment
    ));
    println!(
        "{} randomized trials per cell; 4-node cluster, {} slots per trial, \
         faults transient ({} slots).",
        sweep.trials, sweep.slots, sweep.fault_duration
    );
    println!(
        "cell format: availability = mean fraction of slots at full healthy strength\n\
         (includes each trial's startup transient), with permanent losses or mean\n\
         freeze-to-reintegration latency in parentheses.\n"
    );

    let mut cells = Vec::new();
    for &scenario in &sweep.scenarios {
        let mut header = vec!["restart policy".to_string()];
        header.extend(sweep.configs.iter().map(|c| c.0.to_string()));
        let mut table = Table::new(header);
        for &policy in &sweep.policies {
            let mut row = vec![policy.to_string()];
            for config in &sweep.configs {
                let report = run_cell(
                    &sweep,
                    config,
                    scenario,
                    policy,
                    args.threads,
                    session.as_ref(),
                );
                row.push(table_cell(&report));
                cells.push(json_cell(&report));
            }
            table.row(row);
        }
        println!("--- {scenario} ---");
        println!("{table}");
    }

    println!("reading the tables:");
    println!(" * reshaping authorities (small/full shifting) repair SOS frames in flight —");
    println!("   nothing healthy ever freezes, so every restart-policy row agrees.");
    println!(" * weaker authority (bus, passive hub, time windows) lets a transient SOS");
    println!("   sender freeze healthy peers; the full-shifting replay does the same from");
    println!("   the other end of the spectrum. Under `never` (the paper's absorbing freeze)");
    println!("   those disturbances outlive the fault: permanent losses.");
    println!(" * unlimited restarting (immediate, watchdog) turns every such trial into a");
    println!("   bounded-TTR recovery once the fault clears; the watchdog pays its silence");
    println!("   threshold in detection latency.");
    println!(" * a bounded retry budget the fault window outlasts (retry max 3, backoff 4");
    println!("   against a 60-slot fault) burns out mid-transient and degenerates to");
    println!("   `never` — the budget must be sized to the transients it rides out.");
    println!(" * coupler silence is contained everywhere by channel redundancy; the");
    println!("   restart policy never even fires.");

    let json = CampaignJson {
        experiment: sweep.experiment.to_string(),
        trials: sweep.trials,
        cells,
    };
    let rendered = json.render();
    if args.json {
        match &args.json_path {
            Some(path) => {
                std::fs::write(path, &rendered).unwrap_or_else(|e| {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    std::process::exit(1);
                });
                println!("\nwrote {}", path.display());
            }
            None => print!("\n{rendered}"),
        }
    }
    if let Some(golden) = &args.check {
        if !tta_bench::check_against_golden(golden, &rendered) {
            std::process::exit(1);
        }
    }
}
