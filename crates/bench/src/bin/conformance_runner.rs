//! Conformance scenario runner.
//!
//! Executes one or more TOML scenario files through both engines — the
//! bounded model checker and the slot-level simulator — and diffs every
//! outcome against the scenario's `[expect]` section (see
//! `crates/conformance` and the scenario files under `scenarios/`).
//!
//! ```text
//! cargo run -p tta-bench --bin conformance_runner -- scenarios/coldstart_dup.toml
//! ```
//!
//! Exits 0 iff every scenario passed; a failing check prints the
//! divergence report and exits 1, a bad scenario file exits 2.

use std::path::Path;
use std::process::ExitCode;
use tta_conformance::run_scenario_file;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: conformance_runner <scenario.toml>...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for (i, path) in paths.iter().enumerate() {
        if i > 0 {
            println!();
        }
        match run_scenario_file(Path::new(path)) {
            Ok(outcome) => {
                print!("{}", outcome.report);
                failed |= !outcome.passed;
            }
            Err(err) => {
                eprintln!("{path}: {err}");
                return ExitCode::from(2);
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
