//! Experiments E6–E8 and ablation A1 — Section 6 buffer-size analysis.
//!
//! Regenerates the paper's numeric chain:
//!
//! * eq. (5): ±100 ppm crystals → ρ = 0.0002;
//! * eq. (6): f_max = (28 − 1 − 4) / 0.0002 = **115,000 bits**;
//! * eq. (8): minimal protocol operation (f_max = 76) → ρ ≤ **30.26 %**;
//! * eq. (9): maximum X-frames (f_max = 2076) → ρ ≤ **1.11 %**;
//! * A1: the Bauer et al. ×2 variant of eq. (1) halves every ρ bound.
//!
//! It also cross-validates eq. (1) against the *executable* leaky-bucket
//! model in `tta-guardian::buffer` (bit-level forwarding simulation).

use tta_analysis::tables::Table;
use tta_analysis::{
    bauer_min_buffer_bits, max_buffer_bits, max_frame_bits, max_rho, min_buffer_bits,
    rho_from_crystal_ppm,
};
use tta_bench::{fmt_percent, heading};
use tta_guardian::buffer::simulate_forwarding;
use tta_types::constants::{
    I_FRAME_PROTOCOL_BITS, LINE_ENCODING_BITS, N_FRAME_MIN_BITS, X_FRAME_MAX_BITS,
};

fn main() {
    let le = LINE_ENCODING_BITS;
    let f_min = N_FRAME_MIN_BITS;

    heading("E6 — largest allowable frame at commodity crystal tolerance (eq. 5–6)");
    let rho = rho_from_crystal_ppm(100.0);
    println!("ρ = 2 × 100 ppm = {rho:.4}");
    let f_max = max_frame_bits(f_min, le, rho).expect("feasible configuration");
    println!("f_max = (f_min − 1 − le) / ρ = ({f_min} − 1 − {le}) / {rho:.4} = {f_max:.0} bits");
    println!(
        "paper: 115,000 bits — far above the longest allowable TTP/C frame ({X_FRAME_MAX_BITS} bits)."
    );

    heading("E7/E8 — largest allowable clock-rate difference (eq. 7–9)");
    let mut table = Table::new(["f_max (bits)", "scenario", "ρ limit", "paper"]);
    let rho_min_protocol = max_rho(f_min, I_FRAME_PROTOCOL_BITS, le).expect("feasible");
    table.row([
        I_FRAME_PROTOCOL_BITS.to_string(),
        "minimal protocol operation (I-frame)".to_string(),
        fmt_percent(rho_min_protocol),
        "30.26%".to_string(),
    ]);
    let rho_x_frames = max_rho(f_min, X_FRAME_MAX_BITS, le).expect("feasible");
    table.row([
        X_FRAME_MAX_BITS.to_string(),
        "maximum-length X-frames".to_string(),
        fmt_percent(rho_x_frames),
        "1.11%".to_string(),
    ]);
    println!("{table}");

    heading("A1 — ablation: the Bauer et al. ×2 buffer term");
    let mut ablation = Table::new([
        "f_max (bits)",
        "B_min eq.(1)",
        "B_min ×2 (Bauer)",
        "B_max = f_min − 1",
        "ρ limit eq.(7)",
        "ρ limit ×2",
    ]);
    for f in [I_FRAME_PROTOCOL_BITS, 512, X_FRAME_MAX_BITS, 10_000] {
        let rho_limit = max_rho(f_min, f, le).expect("feasible");
        ablation.row([
            f.to_string(),
            format!("{:.2} bits @ρ={rho:.4}", min_buffer_bits(le, rho, f)),
            format!("{:.2} bits @ρ={rho:.4}", bauer_min_buffer_bits(le, rho, f)),
            max_buffer_bits(f_min).to_string(),
            fmt_percent(rho_limit),
            fmt_percent(rho_limit / 2.0),
        ]);
    }
    println!("{ablation}");
    println!("the ×2 term halves every admissible clock-rate difference, as DESIGN.md notes.");

    heading("cross-validation — executable leaky bucket vs. eq. (1)");
    let mut check = Table::new([
        "frame (bits)",
        "ρ",
        "closed form le+ρ·f",
        "simulated peak occupancy",
    ]);
    for (f, r) in [
        (2_076u32, 2e-4),
        (10_000, 2e-4),
        (115_000, 2e-4),
        (10_000, 1e-2),
    ] {
        let sim = simulate_forwarding(f, 1.0, 1.0 - r, le);
        check.row([
            f.to_string(),
            format!("{r}"),
            format!("{:.2} bits", min_buffer_bits(le, r, f)),
            format!("{} bits", sim.peak_occupancy_bits),
        ]);
    }
    println!("{check}");
    println!(
        "at f = 115,000 bits and ρ = 0.0002 the guardian's peak occupancy reaches\n\
         B_max = f_min − 1 = {} bits: the frame size of eq. (6) is exactly the point\n\
         where the buffer bound binds.",
        max_buffer_bits(f_min)
    );
}
