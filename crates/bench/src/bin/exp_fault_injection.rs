//! Experiment E9 — bus vs. star fault containment (the motivating
//! Ademaj et al. comparison, run as Monte-Carlo fault-injection
//! campaigns on the simulator).
//!
//! Expected shape, per the paper's Section 2.2 and our Section 5/6
//! results:
//!
//! * SOS, masquerading-cold-start and invalid-C-state faults propagate in
//!   the **bus** topology but are contained by central guardians with
//!   blocking/reshaping authority;
//! * passive coupler faults (silence, noise) are tolerated everywhere
//!   thanks to channel redundancy;
//! * the **out-of-slot replay** — possible only for a full-shifting
//!   central guardian — is the one fault the star topology *adds*.

use tta_analysis::tables::Table;
use tta_bench::{heading, CampaignArgs, CampaignCell, CampaignJson, DaemonSession};
use tta_campaignd::spec::{JobSpec, ScenarioSource};
use tta_guardian::CouplerAuthority;
use tta_sim::{Campaign, CampaignReport, Scenario, Topology};

const TRIALS: u32 = 40;
const USAGE: &str =
    "exp_fault_injection [--threads N] [--json [PATH]] [--check GOLDEN] [--daemon [SOCKET]]";

fn run_cell(
    scenario: Scenario,
    topology: Topology,
    authority: CouplerAuthority,
    threads: Option<usize>,
    session: Option<&DaemonSession>,
) -> CampaignReport {
    if let Some(session) = session {
        let spec = JobSpec {
            topology,
            authority,
            trials: TRIALS,
            ..JobSpec::new(ScenarioSource::Builtin(scenario))
        };
        let result = session
            .client
            .submit_resilient(
                &spec,
                threads,
                &tta_campaignd::client::ReconnectPolicy::default(),
                &mut |_| {},
            )
            .unwrap_or_else(|e| {
                eprintln!("error: campaign daemon failed: {e}");
                std::process::exit(1);
            });
        return CampaignReport::from_aggregate(scenario, topology, authority, &result.aggregate);
    }
    let mut campaign = Campaign::new(4, topology, authority).trials(TRIALS);
    if let Some(threads) = threads {
        campaign = campaign.threads(threads);
    }
    campaign.run(scenario)
}

fn main() {
    let args = CampaignArgs::parse(USAGE, false);
    let session = DaemonSession::from_args(&args);
    let threads = args.threads;
    heading("E9 — fault containment: bus (local guardians) vs. star (central guardians)");
    println!("{TRIALS} randomized trials per cell; 4-node cluster, 400 slots per trial.");
    println!("cell format: propagation rate (healthy node frozen or startup failed)\n");

    let configs = [
        (
            "bus / local guardians",
            Topology::Bus,
            CouplerAuthority::Passive,
        ),
        (
            "star / passive hub",
            Topology::Star,
            CouplerAuthority::Passive,
        ),
        (
            "star / time windows",
            Topology::Star,
            CouplerAuthority::TimeWindows,
        ),
        (
            "star / small shifting",
            Topology::Star,
            CouplerAuthority::SmallShifting,
        ),
        (
            "star / full shifting",
            Topology::Star,
            CouplerAuthority::FullShifting,
        ),
    ];

    let mut table = Table::new([
        "fault scenario",
        configs[0].0,
        configs[1].0,
        configs[2].0,
        configs[3].0,
        configs[4].0,
    ]);

    let mut cells = Vec::new();
    for scenario in Scenario::all() {
        let mut row = vec![scenario.to_string()];
        for (_, topology, authority) in configs {
            let report = run_cell(scenario, topology, authority, threads, session.as_ref());
            row.push(if report.applicable() {
                format!("{:.0}%", report.propagation_rate() * 100.0)
            } else {
                "n/a".to_string()
            });
            cells.push(CampaignCell {
                scenario: report.scenario.to_string(),
                topology: report.topology.to_string(),
                authority: report.authority.to_string(),
                policy: None,
                outcomes: vec![
                    ("contained", u64::from(report.contained)),
                    ("healthy_frozen", u64::from(report.healthy_frozen)),
                    ("startup_failed", u64::from(report.startup_failed)),
                ],
                metrics: vec![(
                    "propagation_rate",
                    report.applicable().then(|| report.propagation_rate()),
                )],
            });
        }
        table.row(row);
    }
    println!("{table}");

    println!("reading the table:");
    println!(" * SOS / masquerade / invalid C-state: high on the bus, 0% once the central");
    println!("   guardian can block and reshape — the benefit that motivated the star.");
    println!(" * coupler replay: n/a everywhere except the full-shifting star — the new");
    println!("   failure mode that full-frame buffering introduces (the paper's tradeoff).");
    println!(" * silence/noise channel faults: contained everywhere by channel redundancy.");

    let json = CampaignJson {
        experiment: "E9".to_string(),
        trials: TRIALS,
        cells,
    };
    let rendered = json.render();
    if args.json {
        match &args.json_path {
            Some(path) => {
                std::fs::write(path, &rendered).unwrap_or_else(|e| {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    std::process::exit(1);
                });
                println!("\nwrote {}", path.display());
            }
            None => print!("\n{rendered}"),
        }
    }
    if let Some(golden) = &args.check {
        if !tta_bench::check_against_golden(golden, &rendered) {
            std::process::exit(1);
        }
    }
}
