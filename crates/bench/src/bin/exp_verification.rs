//! Experiment E1/E2 — Section 5.2 verification results.
//!
//! Checks the paper's safety property (*no single coupler fault may
//! prevent any node from integrating or cost it its membership — an
//! integrated node never freezes*) for all four star-coupler authority
//! levels, printing verdicts, state-space sizes and wall-clock times.
//!
//! Paper rows reproduced: passive / time windows / small shifting →
//! property **holds**; full shifting → **counterexample** (frames
//! replayed out of slot).

use std::time::Instant;
use tta_analysis::tables::Table;
use tta_bench::{fmt_duration, heading};
use tta_core::{verify_cluster, ClusterConfig, Verdict};
use tta_guardian::CouplerAuthority;

fn main() {
    heading("E1/E2 — star-coupler authority vs. the Section 5 property (4-node cluster)");
    println!("property: AG ((state = active ∨ state = passive) → next(state) ≠ freeze)");
    println!("fault hypothesis: at most one faulty coupler per slot\n");

    let mut table = Table::new([
        "coupler authority",
        "verdict",
        "states explored",
        "trace length",
        "time",
    ]);
    for authority in CouplerAuthority::all() {
        let config = ClusterConfig::paper(authority);
        let started = Instant::now();
        let report = verify_cluster(&config);
        let elapsed = started.elapsed();
        let verdict = match report.verdict {
            Verdict::Holds => "holds".to_string(),
            Verdict::Violated => "VIOLATED".to_string(),
            Verdict::BudgetExhausted => "budget exhausted".to_string(),
        };
        table.row([
            authority.to_string(),
            verdict,
            report.stats.states_explored.to_string(),
            report
                .counterexample_len()
                .map_or_else(|| "—".to_string(), |l| format!("{l} slots")),
            fmt_duration(elapsed),
        ]);
    }
    println!("{table}");
    println!(
        "paper: \"For the passive, time windows, and small shifting couplers we verify that\n\
         the property above holds. For the configuration that allows any star coupler to\n\
         buffer full frames and replay them in a later time slot, we obtain counter\n\
         examples from the model checker.\""
    );
}
