//! Experiment E1/E2 — Section 5.2 verification results.
//!
//! Checks the paper's safety property (*no single coupler fault may
//! prevent any node from integrating or cost it its membership — an
//! integrated node never freezes*) for all four star-coupler authority
//! levels, printing verdicts, state-space sizes and wall-clock times.
//!
//! Paper rows reproduced: passive / time windows / small shifting →
//! property **holds**; full shifting → **counterexample** (frames
//! replayed out of slot).
//!
//! Flags:
//!
//! * `--json [PATH]` — additionally record the four rows machine-readably
//!   (verdict, counterexample length, full exploration statistics) to
//!   `PATH` (default `verification.json`), in the same hand-written JSON
//!   style as `exp_scaling --bench-json`.

use std::time::Instant;
use tta_analysis::tables::Table;
use tta_bench::{fmt_duration, heading};
use tta_core::{verify_cluster, ClusterConfig, Verdict, VerificationReport};
use tta_guardian::CouplerAuthority;

fn parse_args() -> Option<String> {
    let mut json = None;
    let mut iter = std::env::args().skip(1).peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => {
                // Optional path operand, like exp_scaling --bench-json.
                let path = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().expect("peeked"),
                    _ => "verification.json".to_string(),
                };
                json = Some(path);
            }
            other => {
                eprintln!("error: unknown argument {other}");
                eprintln!("usage: exp_verification [--json [PATH]]");
                std::process::exit(2);
            }
        }
    }
    json
}

fn verdict_word(verdict: Verdict) -> &'static str {
    match verdict {
        Verdict::Holds => "holds",
        Verdict::Violated => "violated",
        Verdict::BudgetExhausted => "budget_exhausted",
    }
}

/// One row as a hand-written JSON object (the stub `serde_json` the
/// offline build patches in cannot serialize maps).
fn json_row(authority: CouplerAuthority, report: &VerificationReport, seconds: f64) -> String {
    let stats = &report.stats;
    format!(
        "    {{\"authority\": \"{}\", \"verdict\": \"{}\", \"counterexample_len\": {}, \
         \"states_explored\": {}, \"transitions\": {}, \"frontier_peak\": {}, \
         \"depth_reached\": {}, \"visited_bytes\": {}, \"seconds\": {seconds:.6}}}",
        authority.to_string().replace(' ', "_"),
        verdict_word(report.verdict),
        report
            .counterexample_len()
            .map_or_else(|| "null".to_string(), |l| l.to_string()),
        stats.states_explored,
        stats.transitions,
        stats.frontier_peak,
        stats.depth_reached,
        stats.visited_bytes,
    )
}

fn main() {
    let json_path = parse_args();
    heading("E1/E2 — star-coupler authority vs. the Section 5 property (4-node cluster)");
    println!("property: AG ((state = active ∨ state = passive) → next(state) ≠ freeze)");
    println!("fault hypothesis: at most one faulty coupler per slot\n");

    let mut table = Table::new([
        "coupler authority",
        "verdict",
        "states explored",
        "trace length",
        "time",
    ]);
    let mut rows = Vec::new();
    for authority in CouplerAuthority::all() {
        let config = ClusterConfig::paper(authority);
        // detlint: allow(DL02) reason=benchmark measurement; wall-clock is the quantity this binary reports
        let started = Instant::now();
        let report = verify_cluster(&config);
        let elapsed = started.elapsed();
        let verdict = match report.verdict {
            Verdict::Holds => "holds".to_string(),
            Verdict::Violated => "VIOLATED".to_string(),
            Verdict::BudgetExhausted => "budget exhausted".to_string(),
        };
        table.row([
            authority.to_string(),
            verdict,
            report.stats.states_explored.to_string(),
            report
                .counterexample_len()
                .map_or_else(|| "—".to_string(), |l| format!("{l} slots")),
            fmt_duration(elapsed),
        ]);
        rows.push(json_row(authority, &report, elapsed.as_secs_f64()));
    }
    println!("{table}");
    println!(
        "paper: \"For the passive, time windows, and small shifting couplers we verify that\n\
         the property above holds. For the configuration that allows any star coupler to\n\
         buffer full frames and replay them in a later time slot, we obtain counter\n\
         examples from the model checker.\""
    );

    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"snapshot\": \"verification_results\",\n  \"config\": \"paper/4-node\",\n  \
             \"rows\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        );
        std::fs::write(&path, &json).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("\nwrote {path}");
    }
}
