//! `tta_fuzz` — coverage-guided fault-plan fuzzing (see `tta-fuzz`).
//!
//! Usage:
//!
//! ```text
//! tta_fuzz [OPTIONS]
//!
//!   --seed N            master seed (default 7); the whole run is a
//!                       pure function of it
//!   --budget DUR        wall-clock budget, e.g. 60s or 2m (checked at
//!                       round boundaries; cuts the run short but never
//!                       changes a round's content)
//!   --rounds N          maximum rounds (default 16)
//!   --batch N           candidates per round (default 32)
//!   --threads N         worker threads (0 = available parallelism)
//!   --delta F           availability-cliff threshold (default 0.3)
//!   --max-finds N       stop after N emitted finds (default 8)
//!   --out DIR           write emitted scenario TOMLs into DIR
//!   --journal PATH      also write the run journal to PATH
//!   --expect-find N     exit 1 unless at least N finds were emitted
//!   --synth             after fuzzing, synthesize the cheapest restart
//!                       policy per authority level over the corpus
//!   --threshold F       availability floor for --synth (default 0.5)
//!   --daemon [SOCKET]   evaluate candidates over the tta-campaignd
//!                       service (at SOCKET, or a private in-process
//!                       daemon); output stays byte-identical
//! ```
//!
//! The journal is printed to stdout and carries no timestamps:
//! identical flags produce byte-identical journals and scenario files
//! at any `--threads` value.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use tta_bench::{CampaignArgs, DaemonSession};
use tta_fuzz::{
    authority_token, fuzz_with, synthesize, DaemonEvaluator, Evaluator, FuzzConfig, LocalEvaluator,
};
use tta_guardian::CouplerAuthority;

const USAGE: &str = "tta_fuzz [--seed N] [--budget DUR] [--rounds N] [--batch N] \
                     [--threads N] [--delta F] [--max-finds N] [--out DIR] \
                     [--journal PATH] [--expect-find N] [--synth] [--threshold F] \
                     [--daemon [SOCKET]]";

fn die(why: &str) -> ! {
    eprintln!("error: {why}");
    eprintln!("usage: {USAGE}");
    std::process::exit(2);
}

/// Parses `60s` / `2m` / bare seconds into a duration.
fn parse_budget(text: &str) -> Option<Duration> {
    let (digits, scale) = match text.strip_suffix('s') {
        Some(d) => (d, 1),
        None => match text.strip_suffix('m') {
            Some(d) => (d, 60),
            None => (text, 1),
        },
    };
    digits
        .parse::<u64>()
        .ok()
        .map(|n| Duration::from_secs(n * scale))
}

fn main() {
    let mut cfg = FuzzConfig::default();
    let mut out_dir: Option<PathBuf> = None;
    let mut journal_path: Option<PathBuf> = None;
    let mut expect_find = 0usize;
    let mut synth = false;
    let mut threshold = 0.5f64;
    let mut daemon = false;
    let mut daemon_socket: Option<PathBuf> = None;

    let mut iter = std::env::args().skip(1).peekable();
    while let Some(arg) = iter.next() {
        let mut num = |what: &str| -> String {
            iter.next()
                .unwrap_or_else(|| die(&format!("{what} needs an argument")))
        };
        match arg.as_str() {
            "--seed" => cfg.seed = num("--seed").parse().unwrap_or_else(|_| die("bad seed")),
            "--budget" => {
                let text = num("--budget");
                let budget =
                    parse_budget(&text).unwrap_or_else(|| die(&format!("bad budget `{text}`")));
                // detlint: allow(DL02) reason=--budget deadline; bounds how long the fuzzer explores, results found are still seed-deterministic
                cfg.deadline = Some(Instant::now() + budget);
            }
            "--rounds" => {
                cfg.rounds = num("--rounds")
                    .parse()
                    .unwrap_or_else(|_| die("bad rounds"));
            }
            "--batch" => {
                cfg.batch = num("--batch").parse().unwrap_or_else(|_| die("bad batch"));
                if cfg.batch == 0 {
                    die("--batch must be positive");
                }
            }
            "--threads" => {
                cfg.threads = num("--threads")
                    .parse()
                    .unwrap_or_else(|_| die("bad threads"));
            }
            "--delta" => {
                cfg.delta = num("--delta").parse().unwrap_or_else(|_| die("bad delta"));
                if !(0.0..=1.0).contains(&cfg.delta) {
                    die("--delta must be in 0..=1");
                }
            }
            "--max-finds" => {
                cfg.max_finds = num("--max-finds")
                    .parse()
                    .unwrap_or_else(|_| die("bad max-finds"));
            }
            "--out" => out_dir = Some(PathBuf::from(num("--out"))),
            "--journal" => journal_path = Some(PathBuf::from(num("--journal"))),
            "--expect-find" => {
                expect_find = num("--expect-find")
                    .parse()
                    .unwrap_or_else(|_| die("bad expect-find"));
            }
            "--synth" => synth = true,
            "--threshold" => {
                threshold = num("--threshold")
                    .parse()
                    .unwrap_or_else(|_| die("bad threshold"));
            }
            "--daemon" => {
                daemon = true;
                if let Some(next) = iter.peek() {
                    if !next.starts_with("--") {
                        daemon_socket = Some(PathBuf::from(iter.next().expect("peeked")));
                    }
                }
            }
            other => die(&format!("unknown argument {other}")),
        }
    }

    let session = DaemonSession::from_args(&CampaignArgs {
        threads: (cfg.threads > 0).then_some(cfg.threads),
        daemon,
        daemon_socket,
        ..CampaignArgs::default()
    });
    let evaluator: Box<dyn Evaluator> = match &session {
        Some(session) => Box::new(DaemonEvaluator::new(session.client.clone())),
        None => Box::new(LocalEvaluator),
    };
    let outcome = fuzz_with(&cfg, evaluator.as_ref());
    print!("{}", outcome.journal);

    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            die(&format!("cannot create {}: {e}", dir.display()));
        }
        for find in &outcome.finds {
            let path = dir.join(&find.emitted.file_name);
            if let Err(e) = std::fs::write(&path, &find.emitted.toml) {
                die(&format!("cannot write {}: {e}", path.display()));
            }
            println!("wrote {}", path.display());
        }
    }
    if let Some(path) = &journal_path {
        if let Err(e) = std::fs::write(path, &outcome.journal) {
            die(&format!("cannot write {}: {e}", path.display()));
        }
    }

    if synth {
        println!();
        println!(
            "synthesis: cheapest restart policy keeping worst-case availability >= {threshold:.2} \
             over the {}-entry corpus",
            outcome.corpus.len()
        );
        for authority in CouplerAuthority::all() {
            let result = synthesize(&outcome.corpus, &cfg.ctx, authority, threshold);
            println!(
                "  {:>14}: {} (worst availability {:.4}, {} candidate{} tried{})",
                authority_token(authority),
                result.policy,
                result.worst_availability,
                result.candidates_tried,
                if result.candidates_tried == 1 {
                    ""
                } else {
                    "s"
                },
                if result.met {
                    ""
                } else {
                    "; threshold NOT met"
                },
            );
        }
    }

    if outcome.finds.len() < expect_find {
        eprintln!(
            "error: expected at least {expect_find} find(s), got {}",
            outcome.finds.len()
        );
        std::process::exit(1);
    }
}
