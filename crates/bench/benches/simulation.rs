//! Simulator throughput: slots per second per topology, and full
//! fault-injection trials (the E9 workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tta_guardian::CouplerAuthority;
use tta_sim::{Campaign, FaultPlan, Scenario, SimBuilder, Topology};

const SLOTS: u64 = 400;

fn bench_golden_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_golden");
    group.throughput(Throughput::Elements(SLOTS));
    for (name, topology, authority) in [
        ("bus", Topology::Bus, CouplerAuthority::Passive),
        (
            "star_small_shifting",
            Topology::Star,
            CouplerAuthority::SmallShifting,
        ),
        (
            "star_full_shifting",
            Topology::Star,
            CouplerAuthority::FullShifting,
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| {
                let report = SimBuilder::new(4)
                    .topology(topology)
                    .authority(authority)
                    .slots(SLOTS)
                    .plan(FaultPlan::none())
                    .build()
                    .run();
                black_box(report)
            });
        });
    }
    group.finish();
}

fn bench_cluster_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_cluster_size");
    for nodes in [4usize, 8, 16] {
        group.throughput(Throughput::Elements(SLOTS));
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &nodes| {
            b.iter(|| {
                let report = SimBuilder::new(nodes)
                    .slots(SLOTS)
                    .plan(FaultPlan::none())
                    .build()
                    .run();
                black_box(report)
            });
        });
    }
    group.finish();
}

fn bench_campaign_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.bench_function("sos_campaign_10_trials_bus", |b| {
        b.iter(|| {
            let report = Campaign::new(4, Topology::Bus, CouplerAuthority::Passive)
                .trials(10)
                .run(Scenario::SosSender);
            black_box(report)
        });
    });
    // Worker-count sweep: reports are bit-identical at every count (trial
    // seeds are derived per index), so this isolates orchestration cost /
    // scaling. On a single-core host counts above 1 only add overhead.
    for threads in [1usize, 2, 4] {
        group.bench_function(
            format!("sos_campaign_40_trials_bus_threads_{threads}"),
            |b| {
                b.iter(|| {
                    let report = Campaign::new(4, Topology::Bus, CouplerAuthority::Passive)
                        .trials(40)
                        .threads(threads)
                        .run(Scenario::SosSender);
                    black_box(report)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_golden_runs,
    bench_cluster_sizes,
    bench_campaign_trial
);
criterion_main!(benches);
