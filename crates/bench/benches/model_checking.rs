//! E5/A2 — model-checking performance.
//!
//! The paper reports both counterexample traces "generated in less than a
//! minute on a 1.5 GHz AMD machine"; these benches time the same
//! verification problems and the A2 strategy ablation (sequential BFS vs.
//! parallel BFS vs. bounded DFS).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tta_bench::seed_style_bfs;
use tta_core::{verify_cluster_with, CheckStrategy, ClusterConfig, ClusterModel};
use tta_guardian::CouplerAuthority;

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_paper_configs");
    group.sample_size(10);
    for authority in [
        CouplerAuthority::Passive,
        CouplerAuthority::SmallShifting,
        CouplerAuthority::FullShifting,
    ] {
        let config = ClusterConfig::paper(authority);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{authority}")),
            &config,
            |b, config| b.iter(|| black_box(verify_cluster_with(config, CheckStrategy::Bfs))),
        );
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("counterexample_traces");
    group.sample_size(10);
    group.bench_function("trace1_cold_start_duplication", |b| {
        let config = ClusterConfig::paper_trace_cold_start();
        b.iter(|| black_box(verify_cluster_with(&config, CheckStrategy::Bfs)));
    });
    group.bench_function("trace2_cstate_duplication", |b| {
        let config = ClusterConfig::paper_trace_cstate();
        b.iter(|| black_box(verify_cluster_with(&config, CheckStrategy::Bfs)));
    });
    group.finish();
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_ablation_small_shifting");
    group.sample_size(10);
    let config = ClusterConfig::paper(CouplerAuthority::SmallShifting);
    group.bench_function("sequential_bfs", |b| {
        b.iter(|| black_box(verify_cluster_with(&config, CheckStrategy::Bfs)));
    });
    group.bench_function("parallel_bfs", |b| {
        b.iter(|| {
            black_box(verify_cluster_with(
                &config,
                CheckStrategy::ParallelBfs { threads: 0 },
            ))
        });
    });
    group.bench_function("bounded_dfs_depth20", |b| {
        b.iter(|| {
            black_box(verify_cluster_with(
                &config,
                CheckStrategy::Bounded { depth: 20 },
            ))
        });
    });
    group.finish();
}

fn bench_visited_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("visited_set_head_to_head");
    group.sample_size(10);
    let config = ClusterConfig::paper(CouplerAuthority::SmallShifting);
    group.bench_function("seed_mutex_sharded_clone_map", |b| {
        b.iter(|| black_box(seed_style_bfs(&ClusterModel::new(config))));
    });
    group.bench_function("arena_compact_codec", |b| {
        b.iter(|| black_box(verify_cluster_with(&config, CheckStrategy::Bfs)));
    });
    group.finish();
}

fn bench_parallel_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_thread_sweep_small_shifting");
    group.sample_size(10);
    let config = ClusterConfig::paper(CouplerAuthority::SmallShifting);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| {
                black_box(verify_cluster_with(
                    &config,
                    CheckStrategy::ParallelBfs { threads: t },
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_verification,
    bench_trace_generation,
    bench_strategies,
    bench_visited_set,
    bench_parallel_sweep
);
criterion_main!(benches);
