//! Analysis-layer benches: Figure 3 series generation and the closed-form
//! limit evaluations (cheap by design — these run inside design-space
//! exploration loops).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tta_analysis::{clock_ratio_limit, figure3_series, max_frame_bits, max_rho};
use tta_types::constants::{LINE_ENCODING_BITS, N_FRAME_MIN_BITS, X_FRAME_MAX_BITS};

fn bench_limits(c: &mut Criterion) {
    c.bench_function("eq4_max_frame_bits", |b| {
        b.iter(|| black_box(max_frame_bits(N_FRAME_MIN_BITS, LINE_ENCODING_BITS, 2e-4)));
    });
    c.bench_function("eq7_max_rho", |b| {
        b.iter(|| {
            black_box(max_rho(
                N_FRAME_MIN_BITS,
                X_FRAME_MAX_BITS,
                LINE_ENCODING_BITS,
            ))
        });
    });
    c.bench_function("eq10_clock_ratio_limit", |b| {
        b.iter(|| black_box(clock_ratio_limit(X_FRAME_MAX_BITS, N_FRAME_MIN_BITS, 4)));
    });
}

fn bench_figure3(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure3_series");
    for steps in [16u32, 256, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, &steps| {
            b.iter(|| {
                black_box(figure3_series(
                    &[128, 512, X_FRAME_MAX_BITS],
                    N_FRAME_MIN_BITS,
                    steps,
                    LINE_ENCODING_BITS,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_limits, bench_figure3);
criterion_main!(benches);
