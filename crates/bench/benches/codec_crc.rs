//! Wire-layer throughput: frame encode/decode and CRC-24 digestion.
//!
//! Relevant to the Section 6 analysis: the guardian must process frames
//! at line rate while holding at most `f_min − 1` bits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tta_types::{
    decode_frame, BitVec, CState, Crc24, FrameBuilder, FrameClass, MembershipVector, NodeId,
};

fn cstate() -> CState {
    CState::new(512, 7, 1, MembershipVector::full(4))
}

fn bench_crc(c: &mut Criterion) {
    let mut group = c.benchmark_group("crc24");
    for bits in [28u32, 76, 2076, 115_000] {
        let mut payload = BitVec::with_capacity(bits as usize);
        for i in 0..bits {
            payload.push(i % 3 == 0);
        }
        group.throughput(Throughput::Elements(u64::from(bits)));
        group.bench_with_input(BenchmarkId::from_parameter(bits), &payload, |b, payload| {
            b.iter(|| black_box(Crc24::new().digest_bits(payload).finish()));
        });
    }
    group.finish();
}

fn bench_encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_codec");

    let iframe = FrameBuilder::new(FrameClass::IFrame, NodeId::new(2))
        .cstate(cstate())
        .build()
        .expect("valid frame");
    group.bench_function("encode_iframe", |b| b.iter(|| black_box(iframe.encode())));
    let bits = iframe.encode();
    group.bench_function("decode_iframe", |b| {
        b.iter(|| black_box(decode_frame(&bits).expect("valid bits")));
    });

    let data = vec![0xA5u8; 240];
    let xframe = FrameBuilder::new(FrameClass::XFrame, NodeId::new(1))
        .cstate(cstate())
        .data_bits(&data)
        .build()
        .expect("valid frame");
    group.bench_function("encode_xframe_max", |b| {
        b.iter(|| black_box(xframe.encode()));
    });
    let bits = xframe.encode();
    group.bench_function("decode_xframe_max", |b| {
        b.iter(|| black_box(decode_frame(&bits).expect("valid bits")));
    });

    group.finish();
}

fn bench_guardian_forwarding(c: &mut Criterion) {
    use tta_guardian::buffer::simulate_forwarding;
    let mut group = c.benchmark_group("guardian_forwarding");
    group.sample_size(20);
    for bits in [2_076u32, 115_000] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            b.iter(|| black_box(simulate_forwarding(bits, 1.0, 1.0 - 2e-4, 4)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_crc,
    bench_encode_decode,
    bench_guardian_forwarding
);
criterion_main!(benches);
