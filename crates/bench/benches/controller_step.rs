//! Protocol hot path: controller successor enumeration and stepping.
//!
//! The model checker calls `Controller::successors` for every node in
//! every expanded state; this bench isolates that cost per protocol
//! state.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tta_protocol::{ChannelObservation, ChannelView, Controller, EagerStartPolicy, HostChoices};
use tta_types::{FrameKind, NodeId};

const SLOTS: u16 = 4;

fn listen_node() -> Controller {
    let choices = HostChoices::eager();
    let mut policy = EagerStartPolicy;
    let mut c = Controller::new(NodeId::new(1), SLOTS);
    for _ in 0..2 {
        c = c.step(&ChannelView::silent(), &choices, &mut policy);
    }
    c
}

fn active_node() -> Controller {
    let choices = HostChoices::eager();
    let mut policy = EagerStartPolicy;
    let mut c = listen_node();
    // Integrate on two cold-start frames, then gather a majority.
    let cs = ChannelView::both(ChannelObservation::frame(FrameKind::ColdStart, 1));
    c = c.step(&cs, &choices, &mut policy);
    c = c.step(&cs, &choices, &mut policy);
    for id in [3u16, 4, 1] {
        let view = ChannelView::both(ChannelObservation::frame(FrameKind::CState, id));
        c = c.step(&view, &choices, &mut policy);
    }
    c
}

fn bench_successors(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller_successors");
    let choices = HostChoices::checking();
    let silent = ChannelView::silent();
    let traffic = ChannelView::both(ChannelObservation::frame(FrameKind::CState, 2));

    group.bench_function("freeze_silent", |b| {
        let node = Controller::new(NodeId::new(0), SLOTS);
        b.iter(|| black_box(node.successors(&silent, &choices)));
    });
    group.bench_function("listen_with_traffic", |b| {
        let node = listen_node();
        b.iter(|| black_box(node.successors(&traffic, &choices)));
    });
    group.bench_function("integrated_with_traffic", |b| {
        let node = active_node();
        b.iter(|| black_box(node.successors(&traffic, &choices)));
    });
    group.finish();
}

fn bench_full_round(c: &mut Criterion) {
    c.bench_function("controller_step_full_round", |b| {
        let choices = HostChoices::eager();
        let node = active_node();
        let views: Vec<ChannelView> = (1..=SLOTS)
            .map(|id| ChannelView::both(ChannelObservation::frame(FrameKind::CState, id)))
            .collect();
        b.iter(|| {
            let mut policy = EagerStartPolicy;
            let mut n = node;
            for view in &views {
                n = n.step(view, &choices, &mut policy);
            }
            black_box(n)
        });
    });
}

criterion_group!(benches, bench_successors, bench_full_round);
criterion_main!(benches);
