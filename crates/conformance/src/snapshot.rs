//! Golden-trace snapshots: deterministic text renderings of
//! verification reports, compared line-by-line against checked-in
//! fixtures so the paper's counterexamples cannot drift silently.
//!
//! The vendored `serde` stub does not serialize, so fixtures are plain
//! text built from the crate's `Display` impls. The renderings are
//! deterministic because `verify_cluster` uses sequential BFS, which
//! always finds the same shortest counterexample.
//!
//! To regenerate fixtures after an *intentional* model change, run the
//! affected test with `TTA_BLESS=1`; the test rewrites the fixture and
//! fails once, so blessing is always a visible, deliberate step.

use std::fmt::Write as _;
use std::path::Path;
use tta_core::VerificationReport;
use tta_modelcheck::Verdict;

/// Renders a verification report into the golden fixture format: the
/// config line, the verdict, and the counterexample states step by step.
#[must_use]
pub fn render_verification(report: &VerificationReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "config: {}", report.config);
    let _ = writeln!(out, "verdict: {}", verdict_name(report.verdict));
    match &report.counterexample {
        None => {
            let _ = writeln!(out, "counterexample: none");
        }
        Some(trace) => {
            let _ = writeln!(out, "transitions: {}", trace.transition_count());
            for (i, state) in trace.states().iter().enumerate() {
                let _ = writeln!(out, "step {i:>2}: {state}");
            }
        }
    }
    out
}

/// Stable lowercase verdict names (`Verdict` has no `Display`).
#[must_use]
pub fn verdict_name(verdict: Verdict) -> &'static str {
    match verdict {
        Verdict::Holds => "holds",
        Verdict::Violated => "violated",
        Verdict::BudgetExhausted => "budget exhausted",
    }
}

/// Compares `actual` against the fixture at `path`.
///
/// With `TTA_BLESS=1` in the environment the fixture is rewritten to
/// match and an error is still returned, so a blessing run is visible.
///
/// # Errors
///
/// Returns a per-line diff on mismatch, or the I/O error text if the
/// fixture cannot be read or written.
pub fn compare_golden(path: &Path, actual: &str) -> Result<(), String> {
    let bless = std::env::var_os("TTA_BLESS").is_some_and(|v| v == "1");
    let expected = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) if bless => {
            write_fixture(path, actual)?;
            return Err(format!(
                "golden fixture {} did not exist ({err}); wrote it — rerun without TTA_BLESS",
                path.display()
            ));
        }
        Err(err) => {
            return Err(format!(
                "cannot read golden fixture {}: {err} (set TTA_BLESS=1 to create it)",
                path.display()
            ))
        }
    };
    if expected == actual {
        return Ok(());
    }
    if bless {
        write_fixture(path, actual)?;
        return Err(format!(
            "golden fixture {} updated — rerun without TTA_BLESS",
            path.display()
        ));
    }
    Err(format!(
        "golden fixture {} drifted:\n{}",
        path.display(),
        diff_lines(&expected, actual)
    ))
}

fn write_fixture(path: &Path, actual: &str) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    std::fs::write(path, actual).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Unified-ish per-line diff: every differing line as `- expected` /
/// `+ actual`, with line numbers.
#[must_use]
pub fn diff_lines(expected: &str, actual: &str) -> String {
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    for i in 0..exp.len().max(act.len()) {
        match (exp.get(i), act.get(i)) {
            (Some(e), Some(a)) if e == a => {}
            (e, a) => {
                if let Some(e) = e {
                    let _ = writeln!(out, "  line {:>3} - {e}", i + 1);
                }
                if let Some(a) = a {
                    let _ = writeln!(out, "  line {:>3} + {a}", i + 1);
                }
            }
        }
    }
    if out.is_empty() {
        out.push_str("  (difference is in trailing whitespace)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_core::{verify_cluster, ClusterConfig};

    #[test]
    fn rendering_is_deterministic_and_structured() {
        let config = ClusterConfig::paper_trace_cold_start();
        let a = render_verification(&verify_cluster(&config));
        let b = render_verification(&verify_cluster(&config));
        assert_eq!(a, b, "sequential BFS renders identically every run");
        assert!(a.starts_with("config: "), "{a}");
        assert!(a.contains("verdict: violated"), "{a}");
        assert!(a.contains("transitions: "), "{a}");
        assert!(a.contains("step  0: "), "{a}");
    }

    #[test]
    fn holding_configs_render_without_counterexample() {
        let config = ClusterConfig {
            forbid_cold_start_replay: true,
            ..ClusterConfig::paper_trace_cold_start()
        };
        let rendered = render_verification(&verify_cluster(&ClusterConfig {
            out_of_slot_budget: tta_core::FaultBudget::AtMost(0),
            ..config
        }));
        assert!(rendered.contains("verdict: holds"), "{rendered}");
        assert!(rendered.contains("counterexample: none"), "{rendered}");
    }

    #[test]
    fn diff_reports_changed_lines_with_numbers() {
        let diff = diff_lines("a\nb\nc\n", "a\nX\nc\nd\n");
        assert!(diff.contains("line   2 - b"), "{diff}");
        assert!(diff.contains("line   2 + X"), "{diff}");
        assert!(diff.contains("line   4 + d"), "{diff}");
        assert!(!diff.contains("line   1"), "{diff}");
    }

    #[test]
    fn compare_golden_reports_missing_fixture() {
        let err = compare_golden(Path::new("/nonexistent/fixture.trace"), "x").unwrap_err();
        assert!(err.contains("TTA_BLESS"), "{err}");
    }
}
