//! Lifting simulator observations into the model's state vocabulary.
//!
//! The simulator and the model checker describe the same cluster at
//! different granularities: the simulator logs physical transmissions
//! per slot, the model enumerates abstract per-slot steps. The bridge is
//! the [`ClusterSnapshot`] the simulator emits before each slot, lifted
//! here into a [`ClusterState`] the model can judge. The lifting rules:
//!
//! * **controllers** carry over verbatim — both engines run the same
//!   `tta_protocol::Controller`.
//! * **coupler buffers** are the simulator's latched frames, already in
//!   the guardian's `BufferedFrame` vocabulary.
//! * **replay counter**: the model counts *delivered* replays and
//!   saturates at [`REPLAY_COUNTER_CAP`]; the simulator's monotone
//!   `replays_delivered` counter is clamped to match. Replays of an
//!   empty buffer are not counted on either side (the model folds them
//!   into the `Silence` fault mode).
//! * **violation flag**: the first healthy-frozen node becomes the
//!   model's `frozen_victim`. Violating states are absorbing in the
//!   model, so a lifted trace is truncated after its first violating
//!   state — the simulator keeps stepping past a freeze, the model
//!   does not.

use tta_core::{ClusterState, REPLAY_COUNTER_CAP};
use tta_sim::ClusterSnapshot;

/// Lifts one simulator snapshot into the model's state vocabulary.
#[must_use]
pub fn lift_snapshot(snap: &ClusterSnapshot) -> ClusterState {
    ClusterState::with_parts(
        snap.controllers.clone(),
        snap.buffers,
        snap.replays_delivered.min(REPLAY_COUNTER_CAP),
        snap.healthy_frozen.first().copied(),
    )
}

/// Lifts a full snapshot trace, truncating after the first violating
/// state (violating states are absorbing in the model, so later
/// simulator steps have no model-side counterpart).
#[must_use]
pub fn lift_trace(snapshots: &[ClusterSnapshot]) -> Vec<ClusterState> {
    let mut states = Vec::with_capacity(snapshots.len());
    for snap in snapshots {
        let state = lift_snapshot(snap);
        let violated = !state.property_holds();
        states.push(state);
        if violated {
            break;
        }
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_guardian::CouplerAuthority;
    use tta_sim::{SimBuilder, Topology};

    #[test]
    fn lifted_states_mirror_the_snapshots() {
        let (_, snapshots) = SimBuilder::new(4)
            .topology(Topology::Star)
            .authority(CouplerAuthority::SmallShifting)
            .slots(40)
            .build()
            .run_traced();
        let states = lift_trace(&snapshots);
        assert_eq!(states.len(), snapshots.len(), "fault-free: no truncation");
        for (state, snap) in states.iter().zip(&snapshots) {
            assert_eq!(state.nodes(), &snap.controllers[..]);
            assert_eq!(state.coupler_buffers(), snap.buffers);
            assert_eq!(state.property_holds(), snap.property_holds());
        }
    }

    #[test]
    fn replay_counter_saturates_at_the_model_cap() {
        let snap = ClusterSnapshot {
            slot: 0,
            controllers: Vec::new(),
            buffers: Default::default(),
            replays_delivered: 200,
            healthy_frozen: Vec::new(),
        };
        assert_eq!(lift_snapshot(&snap).out_of_slot_used(), REPLAY_COUNTER_CAP);
    }

    #[test]
    fn trace_truncates_at_the_first_violation() {
        let good = ClusterSnapshot {
            slot: 0,
            controllers: Vec::new(),
            buffers: Default::default(),
            replays_delivered: 0,
            healthy_frozen: Vec::new(),
        };
        let bad = ClusterSnapshot {
            healthy_frozen: vec![tta_types::NodeId::new(2)],
            slot: 1,
            ..good.clone()
        };
        let states = lift_trace(&[good.clone(), bad.clone(), bad, good]);
        assert_eq!(states.len(), 2, "everything after the violation is dropped");
        assert!(states[0].property_holds());
        assert!(!states[1].property_holds());
        assert_eq!(states[1].frozen_victim(), Some(tta_types::NodeId::new(2)));
    }
}
