//! The trace-replay oracle: asserts every observed simulator step is
//! admitted by the model's transition relation.
//!
//! Given a lifted state sequence, the oracle walks consecutive pairs and
//! asks [`ClusterModel::step_between`] whether the model admits the
//! observed transition. On a mismatch it builds a [`Divergence`] report:
//! the offending step, the states on both sides, and the admitted
//! successors *closest* to what the simulator actually did, with a
//! per-node diff — the report a human debugs from, minimized to the
//! components that actually differ.

use std::fmt;
use std::fmt::Write as _;
use tta_core::{ClusterModel, ClusterState, StepInfo};

/// How many closest admitted successors a divergence report keeps.
const NEAREST_KEPT: usize = 3;

/// A successful replay: every observed step was admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conformance {
    /// Number of transitions checked (states − 1).
    pub steps_checked: usize,
}

/// One admitted successor ranked by distance to the observed state.
#[derive(Debug, Clone)]
pub struct NearMiss {
    /// The admitted successor state.
    pub state: ClusterState,
    /// The fault/view labels under which the model admits it.
    pub info: StepInfo,
    /// Number of differing components vs. the observed state.
    pub distance: usize,
}

/// A step the model does not admit, with debugging context.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index of the offending transition (0-based: `states[step]` →
    /// `states[step + 1]`).
    pub step: usize,
    /// The state the step started from (admitted so far).
    pub before: ClusterState,
    /// The state the simulator observed next.
    pub observed: ClusterState,
    /// The admitted successors closest to `observed`, nearest first.
    pub nearest: Vec<NearMiss>,
}

impl Divergence {
    /// Renders the pretty mismatch report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace replay diverged at step {} -> {}:",
            self.step,
            self.step + 1
        );
        let _ = writeln!(out, "  before:   {}", self.before);
        let _ = writeln!(out, "  observed: {}", self.observed);
        if self.nearest.is_empty() {
            let _ = writeln!(out, "  the model admits NO successor of `before`");
        } else {
            let _ = writeln!(
                out,
                "  model admits {} closest alternative(s):",
                self.nearest.len()
            );
            for miss in &self.nearest {
                let _ = writeln!(
                    out,
                    "   - [faults ({}, {}), view {:?}, distance {}]",
                    miss.info.faults[0], miss.info.faults[1], miss.info.view, miss.distance
                );
                for line in diff_states(&self.observed, &miss.state) {
                    let _ = writeln!(out, "       {line}");
                }
            }
        }
        out
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl std::error::Error for Divergence {}

/// Replays `states` through `model`, checking that every consecutive
/// pair is admitted by the transition relation.
///
/// # Errors
///
/// Returns the first [`Divergence`] (boxed — it carries full states).
pub fn check_trace(
    model: &ClusterModel,
    states: &[ClusterState],
) -> Result<Conformance, Box<Divergence>> {
    for (step, pair) in states.windows(2).enumerate() {
        let (before, observed) = (&pair[0], &pair[1]);
        if model.step_between(before, observed).is_none() {
            return Err(Box::new(divergence(model, step, before, observed)));
        }
    }
    Ok(Conformance {
        steps_checked: states.len().saturating_sub(1),
    })
}

fn divergence(
    model: &ClusterModel,
    step: usize,
    before: &ClusterState,
    observed: &ClusterState,
) -> Divergence {
    let mut nearest: Vec<NearMiss> = model
        .expand(before)
        .into_iter()
        .map(|(state, info)| NearMiss {
            distance: state_distance(observed, &state),
            state,
            info,
        })
        .collect();
    nearest.sort_by_key(|m| m.distance);
    nearest.truncate(NEAREST_KEPT);
    Divergence {
        step,
        before: before.clone(),
        observed: observed.clone(),
        nearest,
    }
}

/// Number of differing components between two states: per-node
/// controllers (a node missing on one side counts), both coupler
/// buffers, the replay counter and the violation flag.
fn state_distance(a: &ClusterState, b: &ClusterState) -> usize {
    let nodes = a.nodes().len().max(b.nodes().len());
    let mut d = 0;
    for i in 0..nodes {
        if a.nodes().get(i) != b.nodes().get(i) {
            d += 1;
        }
    }
    for ch in 0..2 {
        if a.coupler_buffers()[ch] != b.coupler_buffers()[ch] {
            d += 1;
        }
    }
    if a.out_of_slot_used() != b.out_of_slot_used() {
        d += 1;
    }
    if a.frozen_victim() != b.frozen_victim() {
        d += 1;
    }
    d
}

/// Per-component diff lines between the observed state and an admitted
/// alternative, one line per differing component.
fn diff_states(observed: &ClusterState, admitted: &ClusterState) -> Vec<String> {
    let mut lines = Vec::new();
    let nodes = observed.nodes().len().max(admitted.nodes().len());
    for i in 0..nodes {
        let o = observed.nodes().get(i);
        let a = admitted.nodes().get(i);
        if o != a {
            lines.push(format!(
                "node {i}: observed {} / admitted {}",
                display_or(o),
                display_or(a)
            ));
        }
    }
    for ch in 0..2 {
        let o = observed.coupler_buffers()[ch];
        let a = admitted.coupler_buffers()[ch];
        if o != a {
            lines.push(format!("buffer[{ch}]: observed {o} / admitted {a}"));
        }
    }
    if observed.out_of_slot_used() != admitted.out_of_slot_used() {
        lines.push(format!(
            "replays: observed {} / admitted {}",
            observed.out_of_slot_used(),
            admitted.out_of_slot_used()
        ));
    }
    if observed.frozen_victim() != admitted.frozen_victim() {
        lines.push(format!(
            "frozen victim: observed {:?} / admitted {:?}",
            observed.frozen_victim(),
            admitted.frozen_victim()
        ));
    }
    lines
}

fn display_or<T: fmt::Display>(value: Option<&T>) -> String {
    value.map_or_else(|| "<absent>".to_string(), ToString::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_core::{ClusterConfig, ClusterModel};

    fn model() -> ClusterModel {
        ClusterModel::new(ClusterConfig::default())
    }

    #[test]
    fn an_actual_model_walk_conforms() {
        let m = model();
        let mut states = vec![m.initial_state()];
        for _ in 0..6 {
            let (next, _) = m
                .expand(states.last().unwrap())
                .into_iter()
                .next()
                .expect("non-violating states always have successors");
            states.push(next);
        }
        let conf = check_trace(&m, &states).expect("walk along real edges conforms");
        assert_eq!(conf.steps_checked, 6);
    }

    #[test]
    fn a_skipped_step_is_reported_with_near_misses() {
        let m = model();
        let s0 = m.initial_state();
        let (s1, _) = m.expand(&s0).into_iter().next().unwrap();
        // Skip a slot: find a grandchild that is not also a child.
        let children = m.expand(&s0);
        let s2 = m
            .expand(&s1)
            .into_iter()
            .map(|(s, _)| s)
            .find(|s| !children.iter().any(|(c, _)| c == s))
            .expect("some grandchild is not a direct child");
        let err = check_trace(&m, &[s0.clone(), s2]).unwrap_err();
        assert_eq!(err.step, 0);
        assert_eq!(err.before, s0);
        assert!(!err.nearest.is_empty());
        assert!(
            err.nearest
                .windows(2)
                .all(|w| w[0].distance <= w[1].distance),
            "near misses sorted by distance"
        );
        let report = err.render();
        assert!(report.contains("diverged at step 0"), "{report}");
        assert!(report.contains("observed"), "{report}");
    }

    #[test]
    fn single_state_traces_trivially_conform() {
        let m = model();
        let s0 = m.initial_state();
        assert_eq!(check_trace(&m, &[s0]).unwrap().steps_checked, 0);
        assert_eq!(check_trace(&m, &[]).unwrap().steps_checked, 0);
    }
}
