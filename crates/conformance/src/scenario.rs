//! The TOML scenario DSL: one file describes a cluster, a fault plan and
//! the verdicts both engines are expected to reach.
//!
//! ```toml
//! [scenario]
//! name = "coldstart-dup"
//!
//! [cluster]
//! nodes = 4
//! topology = "star"
//! authority = "full_shifting"
//!
//! [model]
//! out_of_slot_budget = 1          # or "unlimited"
//!
//! [sim]
//! slots = 400
//!
//! [[fault.coupler]]
//! channel = 0
//! mode = "out_of_slot"            # silence | bad_frame | out_of_slot
//! from_slot = 12
//! to_slot = 340
//!
//! [expect]
//! verdict = "violated"            # holds | violated
//! trace_len = 10
//! sim_disturbed = true
//! golden = "../crates/conformance/fixtures/coldstart_dup.trace"
//! ```

use crate::toml::{Document, Table, Value};
use std::fmt;
use std::path::{Path, PathBuf};
use tta_core::{ClusterConfig, ClusterModel, FaultBudget};
use tta_guardian::sos::SosDomain;
use tta_guardian::{CouplerAuthority, CouplerFaultMode};
use tta_protocol::{HostChoices, RestartPolicy};
use tta_sim::{
    CouplerFaultEvent, FaultPersistence, FaultPlan, NodeFault, NodeFaultKind, RecoveryOutcome,
    SimBuilder, Topology,
};
use tta_types::NodeId;

/// The verdict a scenario expects from the bounded checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectedVerdict {
    /// The property holds on every reachable state.
    Holds,
    /// A counterexample exists.
    Violated,
}

impl fmt::Display for ExpectedVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExpectedVerdict::Holds => "holds",
            ExpectedVerdict::Violated => "violated",
        })
    }
}

/// What the scenario author expects each engine to report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Expectations {
    /// Expected checker verdict.
    pub verdict: Option<ExpectedVerdict>,
    /// Expected verdict for the liveness checker: per-node
    /// `listening ~> integrated` under weak startup fairness.
    pub liveness: Option<ExpectedVerdict>,
    /// Expected verdict for the recovery checker: per-node
    /// `frozen ~> integrated` under restart fairness.
    pub recovery: Option<ExpectedVerdict>,
    /// Expected counterexample length in transitions.
    pub trace_len: Option<usize>,
    /// Whether the simulated run should be disturbed (a healthy node
    /// froze or the cluster failed to start).
    pub sim_disturbed: Option<bool>,
    /// Expected [`RecoveryOutcome`] classification of the simulated run
    /// — the recovery-aware refinement of `sim_disturbed` used to pin
    /// fuzzer-discovered regressions.
    pub recovery_outcome: Option<RecoveryOutcome>,
    /// Whether the trace-replay oracle should find every step admitted
    /// (`true`, the default when the oracle runs) or is expected to
    /// diverge (`false`) — used to pin *known* abstraction gaps, e.g.
    /// the simulator's per-receiver membership semantics on replayed
    /// C-state frames, which the model's uniform channel view cannot
    /// express. An expected divergence that stops reproducing fails the
    /// scenario, so a closed gap is noticed.
    pub oracle_conforms: Option<bool>,
    /// Golden-trace fixture to compare the rendered counterexample
    /// against, relative to the scenario file.
    pub golden: Option<String>,
}

/// The temporal shape of a declared [`PropertySpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropertyKind {
    /// `G(predicate)` — the predicate holds on every reachable state.
    Invariant,
    /// `F(predicate)` — the predicate eventually holds on every fair path.
    Eventually,
    /// `GF(predicate)` — the predicate holds infinitely often.
    AlwaysEventually,
    /// `antecedent ~> consequent` — every antecedent state is fairly
    /// followed by a consequent state.
    LeadsTo,
}

impl fmt::Display for PropertyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PropertyKind::Invariant => "invariant",
            PropertyKind::Eventually => "eventually",
            PropertyKind::AlwaysEventually => "always_eventually",
            PropertyKind::LeadsTo => "leads_to",
        })
    }
}

/// A named temporal property declared in a `[[property]]` section.
///
/// Predicates are referenced by name from the shared predicate catalog
/// (see `tta-modellint`); the conformance layer stores the names verbatim
/// and leaves resolution to consumers, so a scenario with properties
/// still parses without the lint engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertySpec {
    /// Short identifier used in diagnostics.
    pub name: String,
    /// Temporal shape.
    pub kind: PropertyKind,
    /// The predicate (invariant / eventually / always_eventually), or
    /// the antecedent (leads_to).
    pub predicate: String,
    /// The consequent (leads_to only).
    pub consequent: Option<String>,
    /// 1-based line of the `[[property]]` header.
    pub line: usize,
}

/// One parsed conformance scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Short identifier.
    pub name: String,
    /// Free-form description.
    pub description: String,
    /// Cluster size (2..=16).
    pub nodes: usize,
    /// Interconnect topology.
    pub topology: Topology,
    /// Central-guardian authority level.
    pub authority: CouplerAuthority,
    /// Simulation horizon in slots.
    pub slots: u64,
    /// Per-node start delays (defaults to the simulator's staggering).
    pub start_delays: Option<Vec<u32>>,
    /// The hosts' restart policy for the simulated run (default
    /// [`RestartPolicy::Never`], the paper's absorbing-freeze semantics).
    pub restart_policy: RestartPolicy,
    /// Replay budget for the *checker* configuration.
    pub out_of_slot_budget: FaultBudget,
    /// Checker constraint: prohibit replaying cold-start frames.
    pub forbid_cold_start_replay: bool,
    /// Coupler faults injected into the simulated run.
    pub coupler_faults: Vec<CouplerFaultEvent>,
    /// Node (transmitter-side) faults injected into the simulated run.
    pub node_faults: Vec<NodeFault>,
    /// Additional named temporal properties (`[[property]]` sections),
    /// checked for non-vacuity by the lint engine.
    pub properties: Vec<PropertySpec>,
    /// Expected outcomes.
    pub expect: Expectations,
    /// Directory of the scenario file (fixture paths resolve against it).
    pub base_dir: PathBuf,
}

/// A scenario-level error: a syntax error from the TOML layer or a
/// semantic error (unknown section, bad enum value, inconsistent plan).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError(String);

impl ScenarioError {
    fn new(message: impl Into<String>) -> Self {
        ScenarioError(message.into())
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ScenarioError {}

const KNOWN_SECTIONS: [&str; 6] = ["", "scenario", "cluster", "model", "sim", "expect"];

impl Scenario {
    /// Parses a scenario from TOML text. `base_dir` is the directory
    /// fixture references resolve against.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] for syntax errors, unknown sections or
    /// keys, out-of-range values, and fault plans inconsistent with the
    /// declared authority.
    pub fn parse(text: &str, base_dir: &Path) -> Result<Self, ScenarioError> {
        let doc = Document::parse(text).map_err(|e| ScenarioError::new(e.to_string()))?;
        for path in doc.paths() {
            if !KNOWN_SECTIONS.contains(&path)
                && path != "fault.coupler"
                && path != "fault.node"
                && path != "property"
            {
                return Err(ScenarioError::new(format!("unknown section [{path}]")));
            }
        }
        // The TOML layer rejects a repeated `[section]` header, but a
        // repeated `[[section]]` header is legal syntax (it is how
        // fault.coupler lists are written). For singleton sections that
        // would silently drop the later block: `Document::table` returns
        // the first match. Reject the repetition instead.
        for section in KNOWN_SECTIONS {
            if section.is_empty() {
                continue;
            }
            let count = doc.tables(section).count();
            if count > 1 {
                return Err(ScenarioError::new(format!(
                    "section [{section}] declared {count} times — only fault.coupler, \
                     fault.node and property may repeat"
                )));
            }
        }
        if let Some(root) = doc.table("") {
            if let Some(key) = root.keys().next() {
                return Err(ScenarioError::new(format!(
                    "top-level key `{key}` outside any section"
                )));
            }
        }

        let meta = doc.table("scenario");
        let name = get_str(meta, "name", "scenario")?
            .unwrap_or_default()
            .to_string();
        let description = get_str(meta, "description", "scenario")?
            .unwrap_or_default()
            .to_string();
        check_keys(meta, &["name", "description"])?;

        let cluster = doc
            .table("cluster")
            .ok_or_else(|| ScenarioError::new("missing [cluster] section"))?;
        check_keys(Some(cluster), &["nodes", "topology", "authority"])?;
        let nodes = get_int(Some(cluster), "nodes", "cluster")?
            .ok_or_else(|| ScenarioError::new("cluster.nodes is required"))?;
        let nodes = usize::try_from(nodes)
            .ok()
            .filter(|n| (2..=16).contains(n))
            .ok_or_else(|| ScenarioError::new("cluster.nodes must be in 2..=16"))?;
        let topology = match get_str(Some(cluster), "topology", "cluster")?.unwrap_or("star") {
            "star" => Topology::Star,
            "bus" => Topology::Bus,
            other => {
                return Err(ScenarioError::new(format!(
                    "cluster.topology `{other}` (expected star | bus)"
                )))
            }
        };
        let authority = parse_authority(
            get_str(Some(cluster), "authority", "cluster")?.unwrap_or("small_shifting"),
        )?;

        let model = doc.table("model");
        check_keys(model, &["out_of_slot_budget", "forbid_cold_start_replay"])?;
        let out_of_slot_budget = match model.and_then(|t| t.get("out_of_slot_budget")) {
            None => FaultBudget::Unlimited,
            Some(Value::Str(s)) if s == "unlimited" => FaultBudget::Unlimited,
            Some(Value::Int(n)) if (0..=255).contains(n) => FaultBudget::AtMost(*n as u8),
            Some(_) => {
                return Err(ScenarioError::new(
                    "model.out_of_slot_budget must be \"unlimited\" or an integer in 0..=255",
                ))
            }
        };
        let forbid_cold_start_replay =
            get_bool(model, "forbid_cold_start_replay", "model")?.unwrap_or(false);

        let sim = doc.table("sim");
        check_keys(
            sim,
            &[
                "slots",
                "start_delays",
                "restart_policy",
                "max_restarts",
                "backoff_slots",
                "silence_slots",
            ],
        )?;
        let slots = match get_int(sim, "slots", "sim")? {
            None => 400,
            Some(n) if n > 0 => n as u64,
            Some(_) => return Err(ScenarioError::new("sim.slots must be positive")),
        };
        let restart_policy = parse_restart_policy(sim)?;
        let start_delays = match sim.and_then(|t| t.get("start_delays")) {
            None => None,
            Some(Value::Array(items)) => {
                let delays: Option<Vec<u32>> = items
                    .iter()
                    .map(|v| v.as_int().and_then(|n| u32::try_from(n).ok()))
                    .collect();
                let delays = delays.ok_or_else(|| {
                    ScenarioError::new("sim.start_delays must be non-negative integers")
                })?;
                if delays.len() != nodes {
                    return Err(ScenarioError::new(format!(
                        "sim.start_delays needs {nodes} entries, got {}",
                        delays.len()
                    )));
                }
                Some(delays)
            }
            Some(_) => return Err(ScenarioError::new("sim.start_delays must be an array")),
        };

        let mut coupler_faults = Vec::new();
        for table in doc.tables("fault.coupler") {
            coupler_faults.push(parse_coupler_fault(table)?);
        }

        let mut node_faults = Vec::new();
        for table in doc.tables("fault.node") {
            node_faults.push(parse_node_fault(table, nodes)?);
        }

        let mut properties = Vec::new();
        for table in doc.tables("property") {
            properties.push(parse_property(table)?);
        }

        let expect_table = doc.table("expect");
        check_keys(
            expect_table,
            &[
                "verdict",
                "liveness",
                "recovery",
                "trace_len",
                "sim_disturbed",
                "recovery_outcome",
                "oracle",
                "golden",
            ],
        )?;
        let verdict_key = |key: &str| -> Result<Option<ExpectedVerdict>, ScenarioError> {
            match get_str(expect_table, key, "expect")? {
                None => Ok(None),
                Some("holds") => Ok(Some(ExpectedVerdict::Holds)),
                Some("violated") => Ok(Some(ExpectedVerdict::Violated)),
                Some(other) => Err(ScenarioError::new(format!(
                    "expect.{key} `{other}` (expected holds | violated)"
                ))),
            }
        };
        let expect = Expectations {
            verdict: verdict_key("verdict")?,
            liveness: verdict_key("liveness")?,
            recovery: verdict_key("recovery")?,
            trace_len: get_int(expect_table, "trace_len", "expect")?
                .map(|n| {
                    usize::try_from(n)
                        .map_err(|_| ScenarioError::new("expect.trace_len must be non-negative"))
                })
                .transpose()?,
            sim_disturbed: get_bool(expect_table, "sim_disturbed", "expect")?,
            recovery_outcome: match get_str(expect_table, "recovery_outcome", "expect")? {
                None => None,
                Some("contained") => Some(RecoveryOutcome::Contained),
                Some("recovered") => Some(RecoveryOutcome::Recovered),
                Some("degraded-stable") => Some(RecoveryOutcome::DegradedStable),
                Some("permanent-loss") => Some(RecoveryOutcome::PermanentLoss),
                Some(other) => {
                    return Err(ScenarioError::new(format!(
                        "expect.recovery_outcome `{other}` (expected contained | recovered | \
                         degraded-stable | permanent-loss)"
                    )))
                }
            },
            oracle_conforms: match get_str(expect_table, "oracle", "expect")? {
                None => None,
                Some("conforms") => Some(true),
                Some("diverges") => Some(false),
                Some(other) => {
                    return Err(ScenarioError::new(format!(
                        "expect.oracle `{other}` (expected conforms | diverges)"
                    )))
                }
            },
            golden: get_str(expect_table, "golden", "expect")?.map(str::to_string),
        };

        Ok(Scenario {
            name,
            description,
            nodes,
            topology,
            authority,
            slots,
            start_delays,
            restart_policy,
            out_of_slot_budget,
            forbid_cold_start_replay,
            coupler_faults,
            node_faults,
            properties,
            expect,
            base_dir: base_dir.to_path_buf(),
        })
    }

    /// Loads and parses a scenario file.
    ///
    /// # Errors
    ///
    /// Returns I/O failures and everything [`Self::parse`] rejects.
    pub fn load(path: &Path) -> Result<Self, ScenarioError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::new(format!("{}: {e}", path.display())))?;
        let base = path.parent().unwrap_or_else(|| Path::new("."));
        let mut scenario = Self::parse(&text, base)?;
        if scenario.name.is_empty() {
            scenario.name = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
        }
        Ok(scenario)
    }

    /// The configuration the bounded checker verifies: the scenario's
    /// authority plus the `[model]` constraints.
    #[must_use]
    pub fn checker_config(&self) -> ClusterConfig {
        ClusterConfig {
            nodes: self.nodes,
            authority: self.authority,
            host_choices: HostChoices::checking(),
            out_of_slot_budget: self.out_of_slot_budget,
            forbid_cold_start_replay: self.forbid_cold_start_replay,
            symmetric_fault_reduction: true,
        }
    }

    /// The model the trace-replay oracle checks simulator steps against.
    ///
    /// Unlike [`Self::checker_config`] this drops every trace-shaping
    /// constraint: the budget is unlimited (the simulated fault plan may
    /// replay arbitrarily often), cold-start replays are allowed, and
    /// both couplers may fail (the plan may target channel 1). The oracle
    /// asks "is each observed step *possible*?", not "is it within the
    /// narrated counterexample's constraints?".
    #[must_use]
    pub fn oracle_model(&self) -> ClusterModel {
        ClusterModel::new(ClusterConfig {
            nodes: self.nodes,
            authority: self.authority,
            host_choices: HostChoices::checking(),
            out_of_slot_budget: FaultBudget::Unlimited,
            forbid_cold_start_replay: false,
            symmetric_fault_reduction: false,
        })
    }

    /// The simulator run this scenario describes.
    #[must_use]
    pub fn sim_builder(&self) -> SimBuilder {
        let mut plan = FaultPlan::none();
        for fault in &self.coupler_faults {
            plan = plan.with_coupler_fault(*fault);
        }
        for fault in &self.node_faults {
            plan = plan.with_node_fault(*fault);
        }
        let mut builder = SimBuilder::new(self.nodes)
            .topology(self.topology)
            .authority(self.authority)
            .slots(self.slots)
            .restart_policy(self.restart_policy)
            .plan(plan);
        if let Some(delays) = &self.start_delays {
            builder = builder.start_delays(delays.clone());
        }
        builder
    }

    /// Whether the simulator can execute this scenario's fault plan at
    /// all (`Ok`), or why not. An `out_of_slot` replay needs a coupler
    /// that buffers full frames; asking a lesser authority to replay is
    /// not a parse error (the checker phase still runs and reports the
    /// verdict/golden divergence) but the simulator phase must be
    /// skipped — the plan is physically meaningless there.
    ///
    /// # Errors
    ///
    /// Returns the human-readable reason the plan cannot be simulated.
    pub fn sim_applicable(&self) -> Result<(), String> {
        for fault in &self.coupler_faults {
            if fault.mode == CouplerFaultMode::OutOfSlot
                && !(self.topology.is_central() && self.authority.can_buffer_full_frames())
            {
                return Err(format!(
                    "out_of_slot replay requires a full-shifting star coupler \
                     (topology is {}, authority is {})",
                    self.topology, self.authority
                ));
            }
        }
        // Mirror the FaultPlan builder's single-faulty-coupler check so
        // an overlapping dual-channel plan skips the simulator phase
        // with a reason instead of aborting inside `sim_builder`.
        for (i, a) in self.coupler_faults.iter().enumerate() {
            for b in &self.coupler_faults[i + 1..] {
                if a.channel != b.channel
                    && a.from_slot < b.envelope_end()
                    && b.from_slot < a.envelope_end()
                {
                    return Err(
                        "coupler fault envelopes on both channels overlap — the simulator \
                         enforces the single-faulty-coupler hypothesis"
                            .to_string(),
                    );
                }
            }
        }
        Ok(())
    }

    /// Whether the simulated execution can be replayed through the formal
    /// model (`Ok`), or why not. The model speaks star topology with
    /// coupler faults only; a scenario outside that vocabulary still runs
    /// in the simulator, just without the step-admission oracle.
    ///
    /// # Errors
    ///
    /// Returns the human-readable reason the oracle does not apply.
    pub fn oracle_applicable(&self) -> Result<(), String> {
        self.sim_applicable()?;
        if self.topology != Topology::Star {
            return Err("the formal model covers only the star topology".into());
        }
        if !self.node_faults.is_empty() {
            return Err(
                "the formal model speaks coupler faults only — node faults cannot \
                 be replayed through it"
                    .into(),
            );
        }
        for (i, a) in self.coupler_faults.iter().enumerate() {
            for b in &self.coupler_faults[i + 1..] {
                if a.channel != b.channel && a.from_slot < b.to_slot && b.from_slot < a.to_slot {
                    return Err(format!(
                        "coupler faults on both channels overlap in slots {}..{} — \
                         outside the model's single-fault hypothesis",
                        a.from_slot.max(b.from_slot),
                        a.to_slot.min(b.to_slot)
                    ));
                }
            }
        }
        Ok(())
    }
}

fn parse_authority(text: &str) -> Result<CouplerAuthority, ScenarioError> {
    match text {
        "passive" => Ok(CouplerAuthority::Passive),
        "time_windows" => Ok(CouplerAuthority::TimeWindows),
        "small_shifting" => Ok(CouplerAuthority::SmallShifting),
        "full_shifting" => Ok(CouplerAuthority::FullShifting),
        other => Err(ScenarioError::new(format!(
            "authority `{other}` (expected passive | time_windows | small_shifting | full_shifting)"
        ))),
    }
}

fn parse_coupler_fault(table: &Table) -> Result<CouplerFaultEvent, ScenarioError> {
    check_keys(
        Some(table),
        &[
            "channel",
            "mode",
            "from_slot",
            "to_slot",
            "persistence",
            "period",
            "duty",
        ],
    )?;
    let where_ = format!("fault.coupler (line {})", table.line);
    let channel = get_int(Some(table), "channel", &where_)?
        .filter(|c| (0..=1).contains(c))
        .ok_or_else(|| ScenarioError::new(format!("{where_}: channel must be 0 or 1")))?
        as usize;
    let mode = match get_str(Some(table), "mode", &where_)? {
        Some("silence") => CouplerFaultMode::Silence,
        Some("bad_frame") => CouplerFaultMode::BadFrame,
        Some("out_of_slot") => CouplerFaultMode::OutOfSlot,
        other => {
            return Err(ScenarioError::new(format!(
                "{where_}: mode `{}` (expected silence | bad_frame | out_of_slot)",
                other.unwrap_or("<missing>")
            )))
        }
    };
    let from_slot = get_int(Some(table), "from_slot", &where_)?
        .filter(|s| *s >= 0)
        .ok_or_else(|| ScenarioError::new(format!("{where_}: from_slot is required")))?
        as u64;
    let to_slot = get_int(Some(table), "to_slot", &where_)?
        .filter(|s| *s >= 0)
        .ok_or_else(|| ScenarioError::new(format!("{where_}: to_slot is required")))?
        as u64;
    if from_slot >= to_slot {
        return Err(ScenarioError::new(format!(
            "{where_}: empty window {from_slot}..{to_slot}"
        )));
    }
    let persistence = parse_persistence(table, &where_)?;
    Ok(CouplerFaultEvent {
        channel,
        mode,
        from_slot,
        to_slot,
        persistence,
    })
}

fn parse_persistence(table: &Table, where_: &str) -> Result<FaultPersistence, ScenarioError> {
    let period = get_int(Some(table), "period", where_)?;
    let duty = get_int(Some(table), "duty", where_)?;
    match get_str(Some(table), "persistence", where_)? {
        None | Some("transient") => {
            if period.is_some() || duty.is_some() {
                return Err(ScenarioError::new(format!(
                    "{where_}: period/duty are only valid with persistence = \"intermittent\""
                )));
            }
            Ok(FaultPersistence::Transient)
        }
        Some("permanent") => {
            if period.is_some() || duty.is_some() {
                return Err(ScenarioError::new(format!(
                    "{where_}: period/duty are only valid with persistence = \"intermittent\""
                )));
            }
            Ok(FaultPersistence::Permanent)
        }
        Some("intermittent") => {
            let period = period
                .filter(|p| *p > 0)
                .ok_or_else(|| ScenarioError::new(format!("{where_}: period must be positive")))?
                as u64;
            let duty = duty
                .filter(|d| (1..=period as i64).contains(d))
                .ok_or_else(|| {
                    ScenarioError::new(format!("{where_}: duty must be in 1..=period"))
                })? as u64;
            Ok(FaultPersistence::Intermittent { period, duty })
        }
        Some(other) => Err(ScenarioError::new(format!(
            "{where_}: persistence `{other}` (expected transient | intermittent | permanent)"
        ))),
    }
}

fn parse_node_fault(table: &Table, nodes: usize) -> Result<NodeFault, ScenarioError> {
    check_keys(
        Some(table),
        &[
            "node",
            "kind",
            "domain",
            "magnitude",
            "claimed_slot",
            "from_slot",
            "to_slot",
            "persistence",
            "period",
            "duty",
        ],
    )?;
    let where_ = format!("fault.node (line {})", table.line);
    let node = get_int(Some(table), "node", &where_)?
        .filter(|n| (0..nodes as i64).contains(n))
        .ok_or_else(|| ScenarioError::new(format!("{where_}: node must be in 0..{nodes}")))?
        as u8;
    let domain = match get_str(Some(table), "domain", &where_)? {
        None => None,
        Some("time") => Some(SosDomain::Time),
        Some("value") => Some(SosDomain::Value),
        Some(other) => {
            return Err(ScenarioError::new(format!(
                "{where_}: domain `{other}` (expected time | value)"
            )))
        }
    };
    let magnitude = get_float(Some(table), "magnitude", &where_)?;
    let claimed_slot = get_int(Some(table), "claimed_slot", &where_)?
        .map(|s| {
            if (1..=nodes as i64).contains(&s) {
                Ok(s as u16)
            } else {
                Err(ScenarioError::new(format!(
                    "{where_}: claimed_slot must be in 1..={nodes}"
                )))
            }
        })
        .transpose()?;
    let sos_only = |used: bool, key: &str| -> Result<(), ScenarioError> {
        if used {
            Err(ScenarioError::new(format!(
                "{where_}: {key} is only valid with kind = \"sos\""
            )))
        } else {
            Ok(())
        }
    };
    let kind = match get_str(Some(table), "kind", &where_)? {
        Some("sos") => {
            let magnitude = magnitude.ok_or_else(|| {
                ScenarioError::new(format!("{where_}: sos needs a magnitude in 0..=1"))
            })?;
            if !(0.0..=1.0).contains(&magnitude) {
                return Err(ScenarioError::new(format!(
                    "{where_}: magnitude must be in 0..=1"
                )));
            }
            if claimed_slot.is_some() {
                return Err(ScenarioError::new(format!(
                    "{where_}: claimed_slot is not valid with kind = \"sos\""
                )));
            }
            NodeFaultKind::Sos {
                domain: domain.unwrap_or(SosDomain::Time),
                magnitude,
            }
        }
        Some(kind @ ("masquerade_cold_start" | "invalid_cstate")) => {
            sos_only(domain.is_some(), "domain")?;
            sos_only(magnitude.is_some(), "magnitude")?;
            let claimed_slot = claimed_slot.ok_or_else(|| {
                ScenarioError::new(format!("{where_}: {kind} needs a claimed_slot"))
            })?;
            if kind == "masquerade_cold_start" {
                NodeFaultKind::MasqueradeColdStart { claimed_slot }
            } else {
                NodeFaultKind::InvalidCState { claimed_slot }
            }
        }
        Some(kind @ ("babbling" | "mute")) => {
            sos_only(domain.is_some(), "domain")?;
            sos_only(magnitude.is_some(), "magnitude")?;
            if claimed_slot.is_some() {
                return Err(ScenarioError::new(format!(
                    "{where_}: claimed_slot is not valid with kind = \"{kind}\""
                )));
            }
            if kind == "babbling" {
                NodeFaultKind::Babbling
            } else {
                NodeFaultKind::Mute
            }
        }
        other => {
            return Err(ScenarioError::new(format!(
                "{where_}: kind `{}` (expected sos | masquerade_cold_start | \
                 invalid_cstate | babbling | mute)",
                other.unwrap_or("<missing>")
            )))
        }
    };
    let from_slot = get_int(Some(table), "from_slot", &where_)?
        .filter(|s| *s >= 0)
        .ok_or_else(|| ScenarioError::new(format!("{where_}: from_slot is required")))?
        as u64;
    let to_slot = get_int(Some(table), "to_slot", &where_)?
        .filter(|s| *s >= 0)
        .ok_or_else(|| ScenarioError::new(format!("{where_}: to_slot is required")))?
        as u64;
    if from_slot >= to_slot {
        return Err(ScenarioError::new(format!(
            "{where_}: empty window {from_slot}..{to_slot}"
        )));
    }
    let persistence = parse_persistence(table, &where_)?;
    Ok(NodeFault {
        node: NodeId::new(node),
        kind,
        from_slot,
        to_slot,
        persistence,
    })
}

fn parse_restart_policy(sim: Option<&Table>) -> Result<RestartPolicy, ScenarioError> {
    let max_restarts = get_int(sim, "max_restarts", "sim")?;
    let backoff_slots = get_int(sim, "backoff_slots", "sim")?;
    let silence_slots = get_int(sim, "silence_slots", "sim")?;
    let param_free = |policy: &str| -> Result<(), ScenarioError> {
        if max_restarts.is_some() || backoff_slots.is_some() || silence_slots.is_some() {
            Err(ScenarioError::new(format!(
                "sim.restart_policy = \"{policy}\" takes no parameters"
            )))
        } else {
            Ok(())
        }
    };
    match get_str(sim, "restart_policy", "sim")? {
        None | Some("never") => {
            param_free("never")?;
            Ok(RestartPolicy::Never)
        }
        Some("immediate") => {
            param_free("immediate")?;
            Ok(RestartPolicy::Immediate)
        }
        Some("bounded_retry") => {
            if silence_slots.is_some() {
                return Err(ScenarioError::new(
                    "sim.silence_slots is only valid with restart_policy = \"watchdog\"",
                ));
            }
            let max_restarts = max_restarts
                .filter(|n| *n > 0)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| ScenarioError::new("sim.max_restarts must be a positive integer"))?;
            let backoff_slots = backoff_slots
                .filter(|n| *n > 0)
                .ok_or_else(|| ScenarioError::new("sim.backoff_slots must be a positive integer"))?
                as u64;
            Ok(RestartPolicy::BoundedRetry {
                max_restarts,
                backoff_slots,
            })
        }
        Some("watchdog") => {
            if max_restarts.is_some() || backoff_slots.is_some() {
                return Err(ScenarioError::new(
                    "sim.max_restarts/backoff_slots are only valid with \
                     restart_policy = \"bounded_retry\"",
                ));
            }
            let silence_slots = silence_slots
                .filter(|n| *n > 0)
                .ok_or_else(|| ScenarioError::new("sim.silence_slots must be a positive integer"))?
                as u64;
            Ok(RestartPolicy::Watchdog { silence_slots })
        }
        Some(other) => Err(ScenarioError::new(format!(
            "sim.restart_policy `{other}` (expected never | immediate | bounded_retry | watchdog)"
        ))),
    }
}

fn parse_property(table: &Table) -> Result<PropertySpec, ScenarioError> {
    check_keys(
        Some(table),
        &["name", "kind", "predicate", "antecedent", "consequent"],
    )?;
    let where_ = format!("property (line {})", table.line);
    let name = get_str(Some(table), "name", &where_)?
        .ok_or_else(|| ScenarioError::new(format!("{where_}: name is required")))?
        .to_string();
    let kind = match get_str(Some(table), "kind", &where_)? {
        Some("invariant") => PropertyKind::Invariant,
        Some("eventually") => PropertyKind::Eventually,
        Some("always_eventually") => PropertyKind::AlwaysEventually,
        Some("leads_to") => PropertyKind::LeadsTo,
        other => {
            return Err(ScenarioError::new(format!(
                "{where_}: kind `{}` (expected invariant | eventually | \
                 always_eventually | leads_to)",
                other.unwrap_or("<missing>")
            )))
        }
    };
    let predicate = get_str(Some(table), "predicate", &where_)?;
    let antecedent = get_str(Some(table), "antecedent", &where_)?;
    let consequent = get_str(Some(table), "consequent", &where_)?;
    let (predicate, consequent) = if kind == PropertyKind::LeadsTo {
        if predicate.is_some() {
            return Err(ScenarioError::new(format!(
                "{where_}: leads_to takes antecedent/consequent, not predicate"
            )));
        }
        let ant = antecedent
            .ok_or_else(|| ScenarioError::new(format!("{where_}: antecedent is required")))?;
        let con = consequent
            .ok_or_else(|| ScenarioError::new(format!("{where_}: consequent is required")))?;
        (ant.to_string(), Some(con.to_string()))
    } else {
        if antecedent.is_some() || consequent.is_some() {
            return Err(ScenarioError::new(format!(
                "{where_}: antecedent/consequent are only valid for kind = \"leads_to\""
            )));
        }
        let pred = predicate
            .ok_or_else(|| ScenarioError::new(format!("{where_}: predicate is required")))?;
        (pred.to_string(), None)
    };
    Ok(PropertySpec {
        name,
        kind,
        predicate,
        consequent,
        line: table.line,
    })
}

fn check_keys(table: Option<&Table>, known: &[&str]) -> Result<(), ScenarioError> {
    if let Some(table) = table {
        for key in table.keys() {
            if !known.contains(&key) {
                let section = if table.path.is_empty() {
                    "top level".to_string()
                } else {
                    format!("[{}]", table.path)
                };
                return Err(ScenarioError::new(format!(
                    "unknown key `{key}` in {section} (known: {})",
                    known.join(", ")
                )));
            }
        }
    }
    Ok(())
}

fn get_str<'a>(
    table: Option<&'a Table>,
    key: &str,
    section: &str,
) -> Result<Option<&'a str>, ScenarioError> {
    match table.and_then(|t| t.get(key)) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.as_str())),
        Some(_) => Err(ScenarioError::new(format!(
            "{section}.{key} must be a string"
        ))),
    }
}

fn get_int(table: Option<&Table>, key: &str, section: &str) -> Result<Option<i64>, ScenarioError> {
    match table.and_then(|t| t.get(key)) {
        None => Ok(None),
        Some(Value::Int(n)) => Ok(Some(*n)),
        Some(_) => Err(ScenarioError::new(format!(
            "{section}.{key} must be an integer"
        ))),
    }
}

fn get_float(
    table: Option<&Table>,
    key: &str,
    section: &str,
) -> Result<Option<f64>, ScenarioError> {
    match table.and_then(|t| t.get(key)) {
        None => Ok(None),
        Some(Value::Float(x)) => Ok(Some(*x)),
        Some(Value::Int(n)) => Ok(Some(*n as f64)),
        Some(_) => Err(ScenarioError::new(format!(
            "{section}.{key} must be a number"
        ))),
    }
}

fn get_bool(
    table: Option<&Table>,
    key: &str,
    section: &str,
) -> Result<Option<bool>, ScenarioError> {
    match table.and_then(|t| t.get(key)) {
        None => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(ScenarioError::new(format!(
            "{section}.{key} must be a boolean"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COLDSTART: &str = r#"
[scenario]
name = "coldstart-dup"
description = "replay a buffered cold-start frame"

[cluster]
nodes = 4
topology = "star"
authority = "full_shifting"

[model]
out_of_slot_budget = 1

[sim]
slots = 400

[[fault.coupler]]
channel = 0
mode = "out_of_slot"
from_slot = 12
to_slot = 340

[expect]
verdict = "violated"
trace_len = 10
sim_disturbed = true
"#;

    #[test]
    fn parses_the_coldstart_scenario() {
        let s = Scenario::parse(COLDSTART, Path::new(".")).unwrap();
        assert_eq!(s.name, "coldstart-dup");
        assert_eq!(s.nodes, 4);
        assert_eq!(s.authority, CouplerAuthority::FullShifting);
        assert_eq!(s.out_of_slot_budget, FaultBudget::AtMost(1));
        assert_eq!(s.coupler_faults.len(), 1);
        assert_eq!(s.coupler_faults[0].mode, CouplerFaultMode::OutOfSlot);
        assert_eq!(s.expect.verdict, Some(ExpectedVerdict::Violated));
        assert_eq!(s.expect.trace_len, Some(10));
        assert_eq!(s.expect.sim_disturbed, Some(true));
        assert!(s.oracle_applicable().is_ok());
        let config = s.checker_config();
        assert_eq!(config, ClusterConfig::paper_trace_cold_start());
    }

    #[test]
    fn replay_plan_on_a_passive_star_parses_but_cannot_simulate() {
        let text = COLDSTART.replace("full_shifting", "passive");
        let s = Scenario::parse(&text, Path::new(".")).unwrap();
        let why = s.sim_applicable().unwrap_err();
        assert!(why.contains("full-shifting"), "{why}");
        assert!(s.oracle_applicable().is_err());
    }

    #[test]
    fn unknown_keys_and_sections_are_rejected() {
        let err = Scenario::parse("[cluster]\nnodes = 4\nnodez = 4\n", Path::new(".")).unwrap_err();
        assert!(err.to_string().contains("nodez"), "{err}");
        let err =
            Scenario::parse("[cluster]\nnodes = 4\n[weird]\nx = 1\n", Path::new(".")).unwrap_err();
        assert!(err.to_string().contains("weird"), "{err}");
    }

    #[test]
    fn dual_channel_overlap_defeats_the_oracle() {
        let text = format!(
            "{COLDSTART}\n[[fault.coupler]]\nchannel = 1\nmode = \"silence\"\n\
             from_slot = 100\nto_slot = 200\n"
        );
        let s = Scenario::parse(&text, Path::new(".")).unwrap();
        let why = s.oracle_applicable().unwrap_err();
        assert!(why.contains("single-fault"), "{why}");
    }

    #[test]
    fn duplicated_expect_block_is_rejected() {
        // A second [[expect]] used to be silently ignored:
        // `Document::table` returned the first match, so the author's
        // override never took effect. Both spellings are now errors.
        let text = format!("{COLDSTART}\n[[expect]]\nverdict = \"holds\"\n");
        let err = Scenario::parse(&text, Path::new(".")).unwrap_err();
        assert!(err.to_string().contains("expect"), "{err}");

        let text = "[cluster]\nnodes = 4\n\
                    [[expect]]\nverdict = \"holds\"\n\
                    [[expect]]\nverdict = \"violated\"\n";
        let err = Scenario::parse(text, Path::new(".")).unwrap_err();
        assert!(err.to_string().contains("declared 2 times"), "{err}");
    }

    #[test]
    fn parses_fault_persistence() {
        let text = "[cluster]\nnodes = 4\nauthority = \"passive\"\n\
                    [[fault.coupler]]\nchannel = 0\nmode = \"silence\"\n\
                    from_slot = 10\nto_slot = 50\npersistence = \"intermittent\"\n\
                    period = 8\nduty = 2\n";
        let s = Scenario::parse(text, Path::new(".")).unwrap();
        assert_eq!(
            s.coupler_faults[0].persistence,
            FaultPersistence::Intermittent { period: 8, duty: 2 }
        );

        let bad = text.replace("duty = 2", "duty = 9");
        let err = Scenario::parse(&bad, Path::new(".")).unwrap_err();
        assert!(err.to_string().contains("duty"), "{err}");

        let bad = text.replace("persistence = \"intermittent\"", "");
        let err = Scenario::parse(&bad, Path::new(".")).unwrap_err();
        assert!(err.to_string().contains("period/duty"), "{err}");
    }

    #[test]
    fn parses_property_sections() {
        let text = "[cluster]\nnodes = 4\n\
                    [[property]]\nname = \"startup\"\nkind = \"leads_to\"\n\
                    antecedent = \"any_listening\"\nconsequent = \"any_integrated\"\n\
                    [[property]]\nname = \"safe\"\nkind = \"invariant\"\n\
                    predicate = \"no_victim\"\n";
        let s = Scenario::parse(text, Path::new(".")).unwrap();
        assert_eq!(s.properties.len(), 2);
        assert_eq!(s.properties[0].kind, PropertyKind::LeadsTo);
        assert_eq!(s.properties[0].predicate, "any_listening");
        assert_eq!(
            s.properties[0].consequent.as_deref(),
            Some("any_integrated")
        );
        assert_eq!(s.properties[1].kind, PropertyKind::Invariant);
        assert_eq!(s.properties[1].consequent, None);

        let bad = text.replace("predicate = \"no_victim\"", "antecedent = \"x\"");
        assert!(Scenario::parse(&bad, Path::new(".")).is_err());
    }

    #[test]
    fn defaults_are_sensible() {
        let s = Scenario::parse("[cluster]\nnodes = 4\n", Path::new(".")).unwrap();
        assert_eq!(s.slots, 400);
        assert_eq!(s.topology, Topology::Star);
        assert_eq!(s.authority, CouplerAuthority::SmallShifting);
        assert_eq!(s.out_of_slot_budget, FaultBudget::Unlimited);
        assert!(s.coupler_faults.is_empty());
        assert_eq!(s.expect, Expectations::default());
    }

    #[test]
    fn oracle_model_drops_trace_constraints() {
        let s = Scenario::parse(COLDSTART, Path::new(".")).unwrap();
        let oracle = s.oracle_model();
        assert_eq!(oracle.config().out_of_slot_budget, FaultBudget::Unlimited);
        assert!(!oracle.config().symmetric_fault_reduction);
    }

    #[test]
    fn parses_restart_policies() {
        let base = "[cluster]\nnodes = 4\n[sim]\nslots = 100\n";
        let s = Scenario::parse(base, Path::new(".")).unwrap();
        assert_eq!(s.restart_policy, RestartPolicy::Never);

        let text = format!("{base}restart_policy = \"watchdog\"\nsilence_slots = 8\n");
        let s = Scenario::parse(&text, Path::new(".")).unwrap();
        assert_eq!(
            s.restart_policy,
            RestartPolicy::Watchdog { silence_slots: 8 }
        );

        let text = format!(
            "{base}restart_policy = \"bounded_retry\"\nmax_restarts = 2\nbackoff_slots = 4\n"
        );
        let s = Scenario::parse(&text, Path::new(".")).unwrap();
        assert_eq!(
            s.restart_policy,
            RestartPolicy::BoundedRetry {
                max_restarts: 2,
                backoff_slots: 4,
            }
        );

        let text = format!("{base}restart_policy = \"immediate\"\nsilence_slots = 8\n");
        let err = Scenario::parse(&text, Path::new(".")).unwrap_err();
        assert!(err.to_string().contains("takes no parameters"), "{err}");

        let text = format!("{base}restart_policy = \"watchdog\"\n");
        let err = Scenario::parse(&text, Path::new(".")).unwrap_err();
        assert!(err.to_string().contains("silence_slots"), "{err}");

        let text = format!("{base}restart_policy = \"sometimes\"\n");
        let err = Scenario::parse(&text, Path::new(".")).unwrap_err();
        assert!(err.to_string().contains("sometimes"), "{err}");
    }

    #[test]
    fn parses_node_faults_and_they_defeat_the_oracle() {
        let text = "[cluster]\nnodes = 4\nauthority = \"small_shifting\"\n\
                    [[fault.node]]\nnode = 2\nkind = \"sos\"\ndomain = \"value\"\n\
                    magnitude = 0.5\nfrom_slot = 40\nto_slot = 80\n\
                    [[fault.node]]\nnode = 1\nkind = \"babbling\"\n\
                    from_slot = 100\nto_slot = 120\npersistence = \"intermittent\"\n\
                    period = 4\nduty = 1\n";
        let s = Scenario::parse(text, Path::new(".")).unwrap();
        assert_eq!(s.node_faults.len(), 2);
        assert_eq!(s.node_faults[0].node, NodeId::new(2));
        assert_eq!(
            s.node_faults[0].kind,
            NodeFaultKind::Sos {
                domain: SosDomain::Value,
                magnitude: 0.5,
            }
        );
        assert_eq!(s.node_faults[1].kind, NodeFaultKind::Babbling);
        assert_eq!(
            s.node_faults[1].persistence,
            FaultPersistence::Intermittent { period: 4, duty: 1 }
        );
        assert!(s.sim_applicable().is_ok());
        let why = s.oracle_applicable().unwrap_err();
        assert!(why.contains("node faults"), "{why}");
    }

    #[test]
    fn node_fault_validation_rejects_bad_shapes() {
        let masquerade = "[cluster]\nnodes = 4\n[[fault.node]]\nnode = 0\n\
                          kind = \"masquerade_cold_start\"\nclaimed_slot = 3\n\
                          from_slot = 0\nto_slot = 10\n";
        let s = Scenario::parse(masquerade, Path::new(".")).unwrap();
        assert_eq!(
            s.node_faults[0].kind,
            NodeFaultKind::MasqueradeColdStart { claimed_slot: 3 }
        );

        let err = Scenario::parse(
            &masquerade.replace("claimed_slot = 3", "claimed_slot = 9"),
            Path::new("."),
        )
        .unwrap_err();
        assert!(err.to_string().contains("claimed_slot"), "{err}");

        let err = Scenario::parse(&masquerade.replace("node = 0", "node = 4"), Path::new("."))
            .unwrap_err();
        assert!(err.to_string().contains("node must be in 0..4"), "{err}");

        let err = Scenario::parse(
            &masquerade.replace("kind = \"masquerade_cold_start\"", "kind = \"mute\""),
            Path::new("."),
        )
        .unwrap_err();
        assert!(err.to_string().contains("claimed_slot"), "{err}");

        let sos = "[cluster]\nnodes = 4\n[[fault.node]]\nnode = 0\nkind = \"sos\"\n\
                   magnitude = 1.5\nfrom_slot = 0\nto_slot = 10\n";
        let err = Scenario::parse(sos, Path::new(".")).unwrap_err();
        assert!(err.to_string().contains("magnitude"), "{err}");
    }

    #[test]
    fn parses_recovery_outcome_expectation() {
        let text = "[cluster]\nnodes = 4\n[expect]\nrecovery_outcome = \"permanent-loss\"\n";
        let s = Scenario::parse(text, Path::new(".")).unwrap();
        assert_eq!(
            s.expect.recovery_outcome,
            Some(RecoveryOutcome::PermanentLoss)
        );
        let err = Scenario::parse(
            &text.replace("permanent-loss", "lost-forever"),
            Path::new("."),
        )
        .unwrap_err();
        assert!(err.to_string().contains("lost-forever"), "{err}");
    }

    #[test]
    fn overlapping_dual_channel_envelopes_skip_the_simulator() {
        let text = "[cluster]\nnodes = 4\nauthority = \"passive\"\n\
                    [[fault.coupler]]\nchannel = 0\nmode = \"silence\"\n\
                    from_slot = 10\nto_slot = 20\npersistence = \"permanent\"\n\
                    [[fault.coupler]]\nchannel = 1\nmode = \"silence\"\n\
                    from_slot = 1000\nto_slot = 2000\n";
        let s = Scenario::parse(text, Path::new(".")).unwrap();
        // The permanent fault's envelope never closes, so the simulator
        // would reject this plan: the phase must be skipped, not abort.
        let why = s.sim_applicable().unwrap_err();
        assert!(why.contains("single-faulty-coupler"), "{why}");
    }
}
