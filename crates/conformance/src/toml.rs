//! A hand-rolled parser for the TOML subset the scenario DSL uses.
//!
//! The build environment is fully offline and the vendored `serde` stub
//! does not serialize (see `third_party/README.md`), so scenarios are
//! parsed with this ~200-line recursive-descent parser instead of a
//! `toml` crate. Supported: `[table]` and `[[array-of-table]]` headers,
//! bare keys, strings, integers (with `_` separators), floats, booleans,
//! single-line arrays, and `#` comments. That is the whole DSL; anything
//! else is a parse error with a line number.

use std::fmt;

/// A parsed scalar or array value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic (double-quoted) string.
    Str(String),
    /// A signed integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A single-line array of scalars.
    Array(Vec<Value>),
}

impl Value {
    /// The integer value, if this is an integer.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

/// One `[path]` or `[[path]]` table: its dotted path, the line of its
/// header, and the key/value pairs it contains.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Dotted table path (`""` for the implicit root table).
    pub path: String,
    /// 1-based line number of the table header.
    pub line: usize,
    entries: Vec<(String, Value)>,
}

impl Table {
    /// The value of `key`, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// All keys in declaration order (used to reject unknown keys).
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }
}

/// A parsed document: tables in declaration order. Repeated `[[path]]`
/// headers produce one `Table` each.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    tables: Vec<Table>,
}

impl Document {
    /// Parses `text`.
    ///
    /// # Errors
    ///
    /// Returns the first syntax error with its 1-based line number.
    pub fn parse(text: &str) -> Result<Document, ParseError> {
        let mut tables = vec![Table {
            path: String::new(),
            line: 0,
            entries: Vec::new(),
        }];
        // Paths already declared with a `[path]` (singleton) header: a
        // later `[[path]]` would silently shadow or be shadowed by it,
        // depending on which accessor the consumer uses, so both
        // mixings are hard errors.
        let mut singleton_paths: Vec<String> = Vec::new();
        for (index, raw) in text.lines().enumerate() {
            let line_no = index + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("[[") {
                let path = rest
                    .strip_suffix("]]")
                    .ok_or_else(|| ParseError::new(line_no, "unterminated [[table]] header"))?
                    .trim();
                validate_path(path, line_no)?;
                if singleton_paths.iter().any(|p| p == path) {
                    return Err(ParseError::with_kind(
                        line_no,
                        ParseErrorKind::DuplicateTable,
                        format!("[[{path}]] conflicts with earlier [{path}] header"),
                    ));
                }
                tables.push(Table {
                    path: path.to_string(),
                    line: line_no,
                    entries: Vec::new(),
                });
            } else if let Some(rest) = line.strip_prefix('[') {
                let path = rest
                    .strip_suffix(']')
                    .ok_or_else(|| ParseError::new(line_no, "unterminated [table] header"))?
                    .trim();
                validate_path(path, line_no)?;
                if tables.iter().any(|t| t.path == path) {
                    return Err(ParseError::with_kind(
                        line_no,
                        ParseErrorKind::DuplicateTable,
                        format!("table [{path}] defined twice (use [[{path}]] for lists)"),
                    ));
                }
                singleton_paths.push(path.to_string());
                tables.push(Table {
                    path: path.to_string(),
                    line: line_no,
                    entries: Vec::new(),
                });
            } else {
                let (key, value) = line.split_once('=').ok_or_else(|| {
                    ParseError::new(line_no, format!("expected `key = value`, got `{line}`"))
                })?;
                let key = key.trim();
                validate_key(key, line_no)?;
                let value = parse_value(value.trim(), line_no)?;
                let table = tables.last_mut().expect("root table always present");
                if table.get(key).is_some() {
                    return Err(ParseError::with_kind(
                        line_no,
                        ParseErrorKind::DuplicateKey,
                        format!("duplicate key `{key}`"),
                    ));
                }
                table.entries.push((key.to_string(), value));
            }
        }
        Ok(Document { tables })
    }

    /// The unique table at `path`, if any.
    #[must_use]
    pub fn table(&self, path: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.path == path)
    }

    /// Every table at `path` (the `[[path]]` case), in order.
    pub fn tables<'a>(&'a self, path: &'a str) -> impl Iterator<Item = &'a Table> {
        self.tables.iter().filter(move |t| t.path == path)
    }

    /// All table paths that actually contain entries or were explicitly
    /// declared (used to reject unknown sections).
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.tables
            .iter()
            .filter(|t| t.line > 0 || !t.entries.is_empty())
            .map(|t| t.path.as_str())
    }
}

/// Broad classification of a [`ParseError`], so tools layered on top of
/// the parser (the lint engine in particular) can map duplication errors
/// to a dedicated lint code without string-matching the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The same key appeared twice in one table.
    DuplicateKey,
    /// A table path was declared twice, or `[path]` and `[[path]]`
    /// headers were mixed for the same path.
    DuplicateTable,
    /// Any other syntax error.
    Syntax,
}

/// A syntax error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending input (0 for end-of-input errors).
    pub line: usize,
    /// Broad error class (duplication vs. plain syntax).
    pub kind: ParseErrorKind,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError::with_kind(line, ParseErrorKind::Syntax, message)
    }

    fn with_kind(line: usize, kind: ParseErrorKind, message: impl Into<String>) -> Self {
        ParseError {
            line,
            kind,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Removes a `#` comment, ignoring `#` inside double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn validate_path(path: &str, line: usize) -> Result<(), ParseError> {
    if path.is_empty() || path.split('.').any(|part| !is_bare_key(part)) {
        return Err(ParseError::new(
            line,
            format!("invalid table path `{path}`"),
        ));
    }
    Ok(())
}

fn validate_key(key: &str, line: usize) -> Result<(), ParseError> {
    if !is_bare_key(key) {
        return Err(ParseError::new(line, format!("invalid key `{key}`")));
    }
    Ok(())
}

fn is_bare_key(key: &str) -> bool {
    !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn parse_value(text: &str, line: usize) -> Result<Value, ParseError> {
    if text.is_empty() {
        return Err(ParseError::new(line, "missing value after `=`"));
    }
    if let Some(rest) = text.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .ok_or_else(|| ParseError::new(line, "unterminated string"))?;
        if inner.contains('"') || inner.contains('\\') {
            return Err(ParseError::new(
                line,
                "escapes and embedded quotes are not supported",
            ));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    if let Some(rest) = text.strip_prefix('[') {
        let inner = rest
            .strip_suffix(']')
            .ok_or_else(|| ParseError::new(line, "unterminated array (arrays are single-line)"))?
            .trim();
        let mut items = Vec::new();
        if !inner.is_empty() {
            for item in inner.split(',') {
                let item = item.trim();
                if item.is_empty() {
                    continue; // tolerate a trailing comma
                }
                let value = parse_value(item, line)?;
                if matches!(value, Value::Array(_)) {
                    return Err(ParseError::new(line, "nested arrays are not supported"));
                }
                items.push(value);
            }
        }
        return Ok(Value::Array(items));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let digits: String = text.chars().filter(|c| *c != '_').collect();
    if let Ok(v) = digits.parse::<i64>() {
        return Ok(Value::Int(v));
    }
    if let Ok(v) = digits.parse::<f64>() {
        return Ok(Value::Float(v));
    }
    Err(ParseError::new(
        line,
        format!("cannot parse value `{text}` (string / int / float / bool / array)"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_keys_and_scalars() {
        let doc = Document::parse(
            "top = 1\n\
             [cluster]\n\
             nodes = 4            # comment\n\
             name = \"cold # start\"\n\
             ratio = 0.5\n\
             flag = true\n\
             delays = [0, 3, 6, 9]\n",
        )
        .unwrap();
        assert_eq!(doc.table("").unwrap().get("top").unwrap().as_int(), Some(1));
        let cluster = doc.table("cluster").unwrap();
        assert_eq!(cluster.get("nodes").unwrap().as_int(), Some(4));
        assert_eq!(
            cluster.get("name").unwrap().as_str(),
            Some("cold # start"),
            "comment stripping must respect strings"
        );
        assert_eq!(cluster.get("flag").unwrap().as_bool(), Some(true));
        assert_eq!(
            cluster.get("delays").unwrap(),
            &Value::Array(vec![
                Value::Int(0),
                Value::Int(3),
                Value::Int(6),
                Value::Int(9)
            ])
        );
        assert!(matches!(cluster.get("ratio"), Some(Value::Float(_))));
    }

    #[test]
    fn array_of_tables_accumulates() {
        let doc =
            Document::parse("[[fault.coupler]]\nchannel = 0\n[[fault.coupler]]\nchannel = 1\n")
                .unwrap();
        let channels: Vec<i64> = doc
            .tables("fault.coupler")
            .map(|t| t.get("channel").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(channels, [0, 1]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = Document::parse("[ok]\nkey 4\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("key = value"), "{err}");

        let err = Document::parse("x = \"unterminated\n").unwrap_err();
        assert_eq!(err.line, 1);

        let err = Document::parse("x = zebra\n").unwrap_err();
        assert!(err.message.contains("zebra"), "{err}");
    }

    #[test]
    fn duplicate_tables_and_keys_are_rejected() {
        let err = Document::parse("[a]\n[a]\n").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::DuplicateTable);
        let err = Document::parse("[a]\nk = 1\nk = 2\n").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::DuplicateKey);
        let err = Document::parse("x 1\n").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::Syntax);
    }

    #[test]
    fn mixing_singleton_and_array_headers_is_rejected() {
        // `[a]` followed by `[[a]]`: previously the second header was
        // silently accepted and `Document::table` returned whichever
        // came first.
        let err = Document::parse("[a]\nk = 1\n[[a]]\nk = 2\n").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::DuplicateTable);
        assert_eq!(err.line, 3);
        // `[[a]]` followed by `[a]` hits the existing defined-twice check.
        let err = Document::parse("[[a]]\nk = 1\n[a]\nk = 2\n").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::DuplicateTable);
    }

    #[test]
    fn underscored_integers_parse() {
        let doc = Document::parse("bits = 115_000\n").unwrap();
        assert_eq!(
            doc.table("").unwrap().get("bits").unwrap().as_int(),
            Some(115_000)
        );
    }
}
