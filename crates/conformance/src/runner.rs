//! The scenario runner: executes one scenario through both engines —
//! the bounded model checker and the slot-level simulator — and diffs
//! every outcome against the scenario's expectations.
//!
//! Checks performed, in order:
//!
//! 1. **Checker phase**: `verify_cluster` on the scenario's checker
//!    configuration; verdict and counterexample length against
//!    `[expect]`; the counterexample's own steps re-admitted through the
//!    model (the checker must not narrate an impossible trace); the
//!    rendered report against the golden fixture, if one is named; when
//!    the scenario sets `expect.liveness`, the weak-fairness liveness
//!    checker (`listening ~> integrated` per node) runs too and its
//!    verdict is diffed; `expect.recovery` does the same for the
//!    recovery checker (`frozen ~> integrated` under restart fairness).
//! 2. **Simulator phase** (skipped with a visible reason when the fault
//!    plan is not physically executable, e.g. an `out_of_slot` replay on
//!    a passive star): the traced run's disturbance outcome against
//!    `[expect]`.
//! 3. **Oracle phase** (skipped when the run is outside the model's
//!    vocabulary): every observed simulator step re-admitted through the
//!    model's transition relation via [`crate::check_trace`].
//! 4. An **agreement line** relating what the two engines concluded.

use crate::lift::lift_trace;
use crate::oracle::check_trace;
use crate::scenario::{ExpectedVerdict, Scenario, ScenarioError};
use crate::snapshot::{compare_golden, render_verification, verdict_name};
use std::fmt::Write as _;
use std::path::Path;
use tta_core::{
    verify_cluster, verify_cluster_liveness, verify_cluster_recovery, ClusterModel, Verdict,
};
use tta_sim::RecoveryOutcome;

/// The outcome of running one scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// Whether every check passed.
    pub passed: bool,
    /// The full human-readable report, one line per check.
    pub report: String,
}

/// Loads and runs the scenario at `path`.
///
/// # Errors
///
/// Returns a [`ScenarioError`] if the file cannot be read or parsed;
/// check *failures* are reported in the returned outcome, not as errors.
pub fn run_scenario_file(path: &Path) -> Result<ScenarioOutcome, ScenarioError> {
    Ok(run_scenario(&Scenario::load(path)?))
}

/// Runs an already-parsed scenario through both engines.
#[must_use]
pub fn run_scenario(scenario: &Scenario) -> ScenarioOutcome {
    let mut r = Report::new();
    let _ = writeln!(
        r.text,
        "scenario: {}{}",
        scenario.name,
        if scenario.description.is_empty() {
            String::new()
        } else {
            format!(" — {}", scenario.description)
        }
    );

    // Phase 1: the bounded checker.
    let config = scenario.checker_config();
    let verification = verify_cluster(&config);
    let _ = writeln!(r.text, "[checker] config: {config}");
    match scenario.expect.verdict {
        Some(expected) => r.check(
            verdict_matches(verification.verdict, expected),
            format!(
                "[checker] verdict: {} (expected {expected})",
                verdict_name(verification.verdict)
            ),
        ),
        None => {
            let _ = writeln!(
                r.text,
                "[checker] verdict: {} (no expectation)",
                verdict_name(verification.verdict)
            );
        }
    }
    let trace_len = verification.counterexample_len();
    if let Some(expected) = scenario.expect.trace_len {
        r.check(
            trace_len == Some(expected),
            format!(
                "[checker] counterexample length: {} (expected {expected} transitions)",
                trace_len.map_or_else(|| "none".to_string(), |n| n.to_string())
            ),
        );
    }
    if let Some(trace) = &verification.counterexample {
        let model = ClusterModel::new(config);
        match check_trace(&model, trace.states()) {
            Ok(conf) => r.check(
                true,
                format!(
                    "[checker] counterexample self-admission: {} steps re-admitted",
                    conf.steps_checked
                ),
            ),
            Err(div) => r.check(
                false,
                format!("[checker] counterexample self-admission\n{}", div.render()),
            ),
        }
    }
    if let Some(golden) = &scenario.expect.golden {
        let path = scenario.base_dir.join(golden);
        match compare_golden(&path, &render_verification(&verification)) {
            Ok(()) => r.check(true, format!("[checker] golden fixture {}", path.display())),
            Err(why) => r.check(false, format!("[checker] golden fixture: {why}")),
        }
    }

    // Phase 1b: the liveness checker, when the scenario expects a
    // liveness verdict. Unlike safety this must build the full reachable
    // graph, so it only runs on demand.
    if let Some(expected) = scenario.expect.liveness {
        let liveness = verify_cluster_liveness(&config);
        r.check(
            verdict_matches(liveness.verdict, expected),
            format!(
                "[liveness] listening ~> integrated: {} (expected {expected})",
                verdict_name(liveness.verdict)
            ),
        );
        if let Some(lasso) = &liveness.lasso {
            let _ = writeln!(
                r.text,
                "[liveness] fair lasso: node {} starved, stem {} + cycle {} slots{}",
                liveness
                    .violating_node
                    .map_or_else(|| "?".to_string(), |n| n.to_string()),
                lasso.stem_len(),
                lasso.cycle_len(),
                if lasso.is_stutter() { " (stutter)" } else { "" }
            );
        }
    }

    // Phase 1c: the recovery checker, when the scenario expects a
    // recovery verdict — `frozen ~> integrated` under restart fairness,
    // on the same fair reachable graph construction as phase 1b.
    if let Some(expected) = scenario.expect.recovery {
        let recovery = verify_cluster_recovery(&config);
        r.check(
            verdict_matches(recovery.verdict, expected),
            format!(
                "[recovery] frozen ~> integrated under restart fairness: {} (expected {expected})",
                verdict_name(recovery.verdict)
            ),
        );
        if let Some(lasso) = &recovery.lasso {
            let _ = writeln!(
                r.text,
                "[recovery] fair lasso: node {} never reintegrates, stem {} + cycle {} slots{}",
                recovery
                    .violating_node
                    .map_or_else(|| "?".to_string(), |n| n.to_string()),
                lasso.stem_len(),
                lasso.cycle_len(),
                if lasso.is_stutter() { " (stutter)" } else { "" }
            );
        }
    }

    // Phase 2: the simulator, when the plan is physically executable.
    let sim_run = match scenario.sim_applicable() {
        Err(why) => {
            let _ = writeln!(r.text, "[sim] SKIPPED: {why}");
            if scenario.expect.sim_disturbed.is_some() || scenario.expect.recovery_outcome.is_some()
            {
                r.check(
                    false,
                    "[sim] expectation on a skipped phase cannot hold".to_string(),
                );
            }
            None
        }
        Ok(()) => {
            let (report, snapshots) = scenario.sim_builder().build().run_traced();
            let disturbed = !report.healthy_frozen().is_empty() || !report.cluster_started();
            let mut frozen: Vec<_> = report.healthy_frozen().to_vec();
            frozen.sort_unstable();
            frozen.dedup();
            let _ = writeln!(
                r.text,
                "[sim] {} slots, started: {}, healthy nodes ever frozen: {}",
                report.slots_run(),
                report
                    .startup_slot()
                    .map_or_else(|| "never".to_string(), |s| format!("slot {s}")),
                if frozen.is_empty() {
                    "none".to_string()
                } else {
                    frozen
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(" ")
                }
            );
            if let Some(expected) = scenario.expect.sim_disturbed {
                r.check(
                    disturbed == expected,
                    format!("[sim] disturbed: {disturbed} (expected {expected})"),
                );
            }
            if let Some(expected) = scenario.expect.recovery_outcome {
                let outcome = RecoveryOutcome::classify(&report);
                r.check(
                    outcome == expected,
                    format!("[sim] recovery outcome: {outcome} (expected {expected})"),
                );
            }
            Some((disturbed, snapshots))
        }
    };

    // Phase 3: the trace-replay oracle.
    if let Some((_, snapshots)) = &sim_run {
        match scenario.oracle_applicable() {
            Err(why) => {
                let _ = writeln!(r.text, "[oracle] SKIPPED: {why}");
            }
            Ok(()) => {
                let states = lift_trace(snapshots);
                let expect_conforms = scenario.expect.oracle_conforms.unwrap_or(true);
                match check_trace(&scenario.oracle_model(), &states) {
                    Ok(conf) => r.check(
                        expect_conforms,
                        format!(
                            "[oracle] {} observed steps admitted by the model{}",
                            conf.steps_checked,
                            if expect_conforms {
                                ""
                            } else {
                                " — but the scenario expects a divergence; \
                                 the pinned abstraction gap has closed, update the scenario"
                            }
                        ),
                    ),
                    Err(div) => r.check(
                        !expect_conforms,
                        format!(
                            "[oracle] step admission{}\n{}",
                            if expect_conforms {
                                ""
                            } else {
                                " diverged as expected (pinned abstraction gap)"
                            },
                            div.render()
                        ),
                    ),
                }
            }
        }
    }

    // Phase 4: cross-engine agreement.
    if let Some((disturbed, _)) = sim_run {
        let checker_violated = verification.verdict == Verdict::Violated;
        let agree = checker_violated == disturbed;
        let _ = writeln!(
            r.text,
            "agreement: checker {} / simulator {} — {}",
            verdict_name(verification.verdict),
            if disturbed {
                "disturbed"
            } else {
                "undisturbed"
            },
            if agree {
                "engines agree"
            } else {
                "engines DISAGREE (fine iff the scenario expects it: the checker \
                 quantifies over all runs, the simulator executes one)"
            }
        );
    }

    let _ = writeln!(r.text, "{}", if r.passed { "PASS" } else { "FAIL" });
    ScenarioOutcome {
        passed: r.passed,
        report: r.text,
    }
}

fn verdict_matches(actual: Verdict, expected: ExpectedVerdict) -> bool {
    match expected {
        ExpectedVerdict::Holds => actual == Verdict::Holds,
        ExpectedVerdict::Violated => actual == Verdict::Violated,
    }
}

struct Report {
    text: String,
    passed: bool,
}

impl Report {
    fn new() -> Self {
        Report {
            text: String::new(),
            passed: true,
        }
    }

    fn check(&mut self, ok: bool, line: String) {
        let _ = writeln!(self.text, "{line} ... {}", if ok { "ok" } else { "FAILED" });
        if !ok {
            self.passed = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL_SHIFTING_NOISE: &str = r#"
[scenario]
name = "small-shifting-noise"

[cluster]
nodes = 3
topology = "star"
authority = "small_shifting"

[sim]
slots = 120

[[fault.coupler]]
channel = 0
mode = "bad_frame"
from_slot = 20
to_slot = 60

[expect]
verdict = "holds"
sim_disturbed = false
"#;

    #[test]
    fn a_benign_scenario_passes_all_phases() {
        let scenario = Scenario::parse(SMALL_SHIFTING_NOISE, Path::new(".")).unwrap();
        let outcome = run_scenario(&scenario);
        assert!(outcome.passed, "{}", outcome.report);
        assert!(
            outcome.report.contains("engines agree"),
            "{}",
            outcome.report
        );
        assert!(
            outcome.report.contains("observed steps admitted"),
            "{}",
            outcome.report
        );
    }

    #[test]
    fn recovery_outcome_expectation_is_diffed() {
        let text = format!("{SMALL_SHIFTING_NOISE}recovery_outcome = \"contained\"\n");
        let scenario = Scenario::parse(&text, Path::new(".")).unwrap();
        let outcome = run_scenario(&scenario);
        assert!(outcome.passed, "{}", outcome.report);
        assert!(
            outcome.report.contains("recovery outcome: contained"),
            "{}",
            outcome.report
        );

        let wrong = text.replace(
            "recovery_outcome = \"contained\"",
            "recovery_outcome = \"permanent-loss\"",
        );
        let scenario = Scenario::parse(&wrong, Path::new(".")).unwrap();
        let outcome = run_scenario(&scenario);
        assert!(!outcome.passed, "{}", outcome.report);
    }

    #[test]
    fn wrong_expectations_fail_with_reasons() {
        let text = SMALL_SHIFTING_NOISE
            .replace("verdict = \"holds\"", "verdict = \"violated\"")
            .replace("sim_disturbed = false", "sim_disturbed = true");
        let scenario = Scenario::parse(&text, Path::new(".")).unwrap();
        let outcome = run_scenario(&scenario);
        assert!(!outcome.passed);
        assert!(outcome.report.contains("FAILED"), "{}", outcome.report);
        assert!(
            outcome.report.trim_end().ends_with("FAIL"),
            "{}",
            outcome.report
        );
    }
}
