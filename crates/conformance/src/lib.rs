//! Conformance tooling between the two engines in this workspace.
//!
//! The simulator (`tta-sim`) and the model checker (`tta-core`) describe
//! the same TTP/C cluster at different granularities, and the paper's
//! claims rest on them agreeing. This crate makes that agreement a
//! checked artifact instead of a hope, three ways:
//!
//! * a **trace-replay oracle** ([`lift_trace`] + [`check_trace`]) that
//!   lifts a simulator run into the model's state vocabulary and asserts
//!   every observed step is admitted by the model's transition relation,
//!   with a minimized [`Divergence`] report on mismatch;
//! * a **TOML scenario DSL** ([`Scenario`]) describing a topology,
//!   guardian authority, fault plan and expected verdicts, plus a runner
//!   ([`run_scenario`]) executing the scenario through *both* engines
//!   and diffing every outcome;
//! * **golden-trace snapshots** ([`render_verification`] +
//!   [`compare_golden`]) pinning the paper's counterexamples as text
//!   fixtures so a model change that perturbs them is caught as drift.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod lift;
mod oracle;
mod runner;
mod scenario;
mod snapshot;
pub mod toml;

pub use lift::{lift_snapshot, lift_trace};
pub use oracle::{check_trace, Conformance, Divergence, NearMiss};
pub use runner::{run_scenario, run_scenario_file, ScenarioOutcome};
pub use scenario::{
    Expectations, ExpectedVerdict, PropertyKind, PropertySpec, Scenario, ScenarioError,
};
pub use snapshot::{compare_golden, diff_lines, render_verification, verdict_name};
