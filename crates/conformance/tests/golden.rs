//! Golden-trace snapshots of the paper's two counterexamples.
//!
//! These pin the exact shortest counterexamples the checker finds for
//! the paper's two full-shifting replay scenarios: cold-start
//! duplication and C-state duplication. This reproduction models slots
//! at a finer granularity than the paper's SMV encoding, so the
//! shortest traces are 14 and 15 transitions where the paper reports 10
//! and 9; the C-state trace is still the longer one, matching the
//! paper's note that the added constraint "results in a slightly longer
//! trace". Any model change that perturbs either trace fails here with
//! a per-line diff; regenerate deliberately with `TTA_BLESS=1` after
//! confirming the new trace is the intended one.

use std::path::PathBuf;
use tta_conformance::{check_trace, compare_golden, render_verification};
use tta_core::{verify_cluster, ClusterConfig, ClusterModel, Verdict};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

#[test]
fn coldstart_duplication_trace_matches_golden() {
    let config = ClusterConfig::paper_trace_cold_start();
    let report = verify_cluster(&config);
    assert_eq!(report.verdict, Verdict::Violated);
    assert_eq!(
        report.counterexample_len(),
        Some(14),
        "shortest cold-start duplication at this model's granularity"
    );
    if let Err(drift) = compare_golden(
        &fixture("coldstart_dup.trace"),
        &render_verification(&report),
    ) {
        panic!("{drift}");
    }
}

#[test]
fn cstate_duplication_trace_matches_golden() {
    let config = ClusterConfig::paper_trace_cstate();
    let report = verify_cluster(&config);
    assert_eq!(report.verdict, Verdict::Violated);
    assert_eq!(
        report.counterexample_len(),
        Some(15),
        "shortest C-state duplication at this model's granularity"
    );
    if let Err(drift) = compare_golden(&fixture("cstate_dup.trace"), &render_verification(&report))
    {
        panic!("{drift}");
    }
}

#[test]
fn golden_counterexamples_are_self_admitting() {
    for config in [
        ClusterConfig::paper_trace_cold_start(),
        ClusterConfig::paper_trace_cstate(),
    ] {
        let report = verify_cluster(&config);
        let trace = report
            .counterexample
            .as_ref()
            .expect("both configs violate");
        let model = ClusterModel::new(config);
        check_trace(&model, trace.states())
            .unwrap_or_else(|div| panic!("checker narrated an impossible trace:\n{div}"));
    }
}
