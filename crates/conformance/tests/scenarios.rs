//! Every checked-in scenario must pass through both engines, and a
//! deliberately broken scenario must fail with the per-slot divergence
//! report — the same checks CI runs via the `conformance_runner` binary.

use std::path::{Path, PathBuf};
use tta_conformance::{run_scenario, run_scenario_file, Scenario};

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

#[test]
fn every_checked_in_scenario_passes() {
    let mut ran = 0;
    for entry in std::fs::read_dir(scenarios_dir()).expect("scenarios/ exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "toml") {
            continue;
        }
        let outcome =
            run_scenario_file(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(outcome.passed, "{}:\n{}", path.display(), outcome.report);
        ran += 1;
    }
    assert!(ran >= 5, "expected at least five scenarios, ran {ran}");
}

#[test]
fn scenarios_cover_every_authority_level() {
    let mut seen = std::collections::BTreeSet::new();
    for entry in std::fs::read_dir(scenarios_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "toml") {
            continue;
        }
        let scenario = Scenario::load(&path).unwrap();
        seen.insert(scenario.authority);
    }
    assert_eq!(seen.len(), 4, "one scenario per authority level: {seen:?}");
}

/// The acceptance path from the issue: mutating the cold-start
/// scenario's authority to `Passive` must make the run fail with a
/// per-slot diff against the golden fixture, and the simulator phase
/// must be skipped with a visible reason instead of attempting an
/// impossible replay.
#[test]
fn passive_mutation_fires_the_divergence_report() {
    let text = std::fs::read_to_string(scenarios_dir().join("coldstart_dup.toml")).unwrap();
    let mutated = text.replace("authority = \"full_shifting\"", "authority = \"passive\"");
    assert_ne!(text, mutated, "the mutation must apply");
    let scenario = Scenario::parse(&mutated, &scenarios_dir()).unwrap();
    let outcome = run_scenario(&scenario);
    assert!(!outcome.passed);
    let report = &outcome.report;
    assert!(
        report.contains("verdict: holds (expected violated) ... FAILED"),
        "{report}"
    );
    assert!(
        report.contains("drifted"),
        "golden diff must fire: {report}"
    );
    assert!(
        report.contains("- step  0:") && report.contains("- step 14:"),
        "per-slot diff lists the vanished trace steps: {report}"
    );
    assert!(
        report.contains("[sim] SKIPPED") && report.contains("full-shifting"),
        "impossible plans skip the simulator with a reason: {report}"
    );
}

/// Golden fixtures referenced by scenarios resolve relative to the
/// scenario file and exist in the repository.
#[test]
fn referenced_fixtures_exist() {
    for entry in std::fs::read_dir(scenarios_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "toml") {
            continue;
        }
        let scenario = Scenario::load(&path).unwrap();
        if let Some(golden) = &scenario.expect.golden {
            let fixture = scenario.base_dir.join(golden);
            assert!(
                Path::new(&fixture).exists(),
                "{}: fixture {} missing",
                path.display(),
                fixture.display()
            );
        }
    }
}
