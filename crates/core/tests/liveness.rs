//! Integration tests pinning the S4 liveness results: under weak
//! startup fairness, `listening(i) ~> integrated(i)` holds for every
//! node exactly when the star coupler cannot source replayed frames.

use tta_core::{
    cluster_startup_fairness, node_integration_property, node_recovery_property,
    verify_cluster_liveness, verify_cluster_recovery, ClusterConfig, ClusterModel, Verdict,
};
use tta_guardian::CouplerAuthority;
use tta_modelcheck::TransitionSystem;

/// S4 rows 1–3: the three restrained authorities integrate every node.
#[test]
fn restrained_authorities_integrate_under_weak_fairness() {
    for authority in [
        CouplerAuthority::Passive,
        CouplerAuthority::TimeWindows,
        CouplerAuthority::SmallShifting,
    ] {
        let report = verify_cluster_liveness(&ClusterConfig::paper(authority));
        assert_eq!(report.verdict, Verdict::Holds, "{authority}");
        assert!(
            report.per_node.iter().all(|v| *v == Verdict::Holds),
            "{authority}: {:?}",
            report.per_node
        );
        assert!(report.lasso.is_none());
        assert!(report.violating_node.is_none());
        assert!(!report.stats.truncated, "{authority}");
    }
}

/// S4 row 4, pinned on the budgeted replay config (paper trace 1): a
/// full-shifting coupler's replay denies a correct node integration
/// forever, and the lasso's cycle proves it — no cycle state has the
/// starved node integrated, not even passively.
#[test]
fn full_shifting_replay_denies_integration_forever() {
    let config = ClusterConfig::paper_trace_cold_start();
    let report = verify_cluster_liveness(&config);
    assert_eq!(report.verdict, Verdict::Violated);

    let victim = report.violating_node.expect("a violation names its node");
    let lasso = report.lasso.expect("a violation carries its lasso");
    for (i, state) in lasso.cycle().iter().enumerate() {
        assert!(
            !state.nodes()[victim.as_usize()].is_integrated(),
            "cycle state {i} has starved node {victim} integrated"
        );
    }

    // The stem is a real execution from the model's initial state.
    let model = ClusterModel::new(config);
    assert_eq!(
        lasso.states().next(),
        model.initial_states().first(),
        "lasso stem must start at the initial state"
    );
}

/// Recovery (`frozen(i) ~> integrated(i)` under restart fairness) holds
/// for the restrained authorities: no healthy node can be frozen out,
/// so the only frozen states are pre-startup ones that fairness drives
/// to integration.
#[test]
fn restrained_authorities_recover_under_restart_fairness() {
    for authority in [
        CouplerAuthority::Passive,
        CouplerAuthority::TimeWindows,
        CouplerAuthority::SmallShifting,
    ] {
        let report = verify_cluster_recovery(&ClusterConfig::paper(authority));
        assert_eq!(report.verdict, Verdict::Holds, "{authority}");
        assert!(
            report.per_node.iter().all(|v| *v == Verdict::Holds),
            "{authority}: {:?}",
            report.per_node
        );
        assert!(!report.stats.truncated, "{authority}");
    }
}

/// Under full-shifting replay, recovery fails: the victim is frozen
/// (initially, or frozen out — post-integration freeze is absorbing,
/// the model's `RestartPolicy::Never`) and the replay-starvation cycle
/// then denies it active membership forever.
#[test]
fn full_shifting_freeze_out_is_a_permanent_loss_in_the_model() {
    let report = verify_cluster_recovery(&ClusterConfig::paper_trace_cold_start());
    assert_eq!(report.verdict, Verdict::Violated);
    let victim = report.violating_node.expect("a violation names its node");
    let lasso = report.lasso.expect("a violation carries its lasso");
    for (i, state) in lasso.cycle().iter().enumerate() {
        assert_ne!(
            state.nodes()[victim.as_usize()].protocol_state(),
            tta_protocol::ProtocolState::Active,
            "cycle state {i} lets victim {victim} back to active membership"
        );
    }
}

/// The fairness constraints and property labels render as documented —
/// these names appear in narrated reports and must stay stable.
#[test]
fn fairness_and_property_labels_are_stable() {
    let fairness = cluster_startup_fairness(4);
    assert_eq!(fairness.len(), 4);
    assert_eq!(fairness[2].name(), "startup progress(node 2)");
    assert_eq!(
        node_integration_property(1).to_string(),
        "node 1 listening ~> node 1 integrated"
    );
    assert_eq!(
        node_recovery_property(1).to_string(),
        "node 1 frozen ~> node 1 integrated"
    );
}
