//! Differential tests: every exploration backend must agree on every
//! paper experiment.
//!
//! The sequential explorer, the parallel explorer at several thread
//! counts, and the identity-codec path (no bit packing) are run over the
//! E1–E4 configurations of EXPERIMENTS.md. All of them implement the
//! same layer-synchronous BFS semantics, so they must agree exactly on
//! the verdict, on `states_explored` (layers are completed even when a
//! violation is found) and on the counterexample *length* (all BFS
//! counterexamples are minimal-depth; the specific violating state may
//! legitimately differ).

use tta_core::{verify_cluster_with, CheckStrategy, ClusterConfig, ClusterModel, ClusterState};
use tta_guardian::CouplerAuthority;
use tta_modelcheck::Explorer;

/// The configurations behind experiments E1–E4.
fn experiment_configs() -> Vec<(&'static str, ClusterConfig)> {
    vec![
        (
            "E1/passive",
            ClusterConfig::paper(CouplerAuthority::Passive),
        ),
        (
            "E1/time-windows",
            ClusterConfig::paper(CouplerAuthority::TimeWindows),
        ),
        (
            "E1/small-shifting",
            ClusterConfig::paper(CouplerAuthority::SmallShifting),
        ),
        (
            "E2/full-shifting",
            ClusterConfig::paper(CouplerAuthority::FullShifting),
        ),
        (
            "E3/cold-start-trace",
            ClusterConfig::paper_trace_cold_start(),
        ),
        ("E4/cstate-trace", ClusterConfig::paper_trace_cstate()),
    ]
}

#[test]
fn all_backends_agree_on_every_experiment() {
    for (name, config) in experiment_configs() {
        let sequential = verify_cluster_with(&config, CheckStrategy::Bfs);
        for threads in [1, 2, 4] {
            let parallel = verify_cluster_with(&config, CheckStrategy::ParallelBfs { threads });
            assert_eq!(
                parallel.verdict, sequential.verdict,
                "{name}: verdict, {threads} threads"
            );
            assert_eq!(
                parallel.stats.states_explored, sequential.stats.states_explored,
                "{name}: states explored, {threads} threads"
            );
            assert_eq!(
                parallel.counterexample_len(),
                sequential.counterexample_len(),
                "{name}: counterexample length, {threads} threads"
            );
        }
    }
}

#[test]
fn compact_codec_agrees_with_identity_exploration() {
    // The verify harness routes through the bit-packing codec; explore
    // the raw model (identity codec) and compare. Identical semantics,
    // different visited-set representation.
    for (name, config) in experiment_configs() {
        let compact = verify_cluster_with(&config, CheckStrategy::Bfs);
        let model = ClusterModel::new(config);
        let identity = Explorer::new().check(&model, |s: &ClusterState| s.property_holds());
        assert_eq!(compact.verdict, identity.verdict, "{name}: verdict");
        assert_eq!(
            compact.stats.states_explored, identity.stats.states_explored,
            "{name}: states explored"
        );
        assert_eq!(
            compact.counterexample_len(),
            identity
                .counterexample
                .as_ref()
                .map(tta_modelcheck::Trace::transition_count),
            "{name}: counterexample length"
        );
        // The whole point of the codec: fewer resident bytes per state.
        // Compare per-state payloads directly — Vec capacity rounding and
        // the hash-index cost are identical on both paths, so they only
        // add noise. A packed state is 72 flat bytes; an identity-interned
        // ClusterState is its inline struct plus the Vec<Controller> heap
        // payload it drags along (before per-allocation malloc overhead,
        // which the flat encoding avoids entirely).
        let compact_payload = std::mem::size_of::<tta_core::CompactState>() as u64;
        let identity_payload = std::mem::size_of::<ClusterState>() as u64
            + config.nodes as u64 * std::mem::size_of::<tta_protocol::Controller>() as u64;
        assert!(
            compact_payload < identity_payload,
            "{name}: compact {compact_payload} bytes/state vs identity {identity_payload}"
        );
        // The delta arena stores sparse xor-deltas, so per-state bytes
        // sit *below* the 72-byte full width — but never below the
        // per-state metadata floor (slot record + parent link).
        assert!(
            compact.stats.bytes_per_state() >= 12.0,
            "{name}: implausible accounting {}",
            compact.stats.bytes_per_state()
        );
    }
}

#[test]
fn delta_trace_reconstruction_is_byte_identical() {
    // Pin the delta arena's counterexample reconstruction: walking the
    // delta chains back to keyframes must yield exactly the bytes the
    // plain arena stored outright — state for state, and bit for bit
    // through the packing codec. A 2-node full-shifting cluster
    // violates the property within ~200 states, so this stays fast.
    let config = ClusterConfig {
        nodes: 2,
        ..ClusterConfig::paper(CouplerAuthority::FullShifting)
    };
    let model = ClusterModel::new(config);
    let codec = tta_core::ClusterCodec::new(&config);
    let invariant = |s: &ClusterState| s.property_holds();
    let plain = Explorer::new().check_with_codec(&model, &codec, invariant);
    let delta = Explorer::new().check_with_delta_codec(&model, &codec, invariant);
    assert_eq!(plain.verdict, tta_modelcheck::Verdict::Violated);
    assert_eq!(delta.verdict, tta_modelcheck::Verdict::Violated);
    let plain_trace = plain.counterexample.expect("violated ⇒ trace");
    let delta_trace = delta.counterexample.expect("violated ⇒ trace");
    assert_eq!(delta_trace.states(), plain_trace.states());
    use tta_modelcheck::StateCodec;
    for (a, b) in plain_trace.states().iter().zip(delta_trace.states()) {
        assert_eq!(codec.encode(a), codec.encode(b), "packed bytes diverged");
    }
}

#[test]
fn delta_storage_shrinks_the_visited_set() {
    // Same exploration, two storage schemes: the delta arena must agree
    // with the plain arena on everything observable and undercut its
    // memory accounting (this is the footprint the delta encoding was
    // built to win; the plain arena stores 72 flat bytes per state
    // before index overhead).
    let config = ClusterConfig::paper(CouplerAuthority::SmallShifting);
    let model = ClusterModel::new(config);
    let codec = tta_core::ClusterCodec::new(&config);
    let invariant = |s: &ClusterState| s.property_holds();
    let plain = Explorer::new().check_with_codec(&model, &codec, invariant);
    let delta = Explorer::new().check_with_delta_codec(&model, &codec, invariant);
    assert_eq!(delta.verdict, plain.verdict);
    assert_eq!(delta.stats.states_explored, plain.stats.states_explored);
    assert_eq!(delta.stats.depth_reached, plain.stats.depth_reached);
    assert!(
        delta.stats.visited_bytes < plain.stats.visited_bytes,
        "delta {} bytes vs plain {} bytes",
        delta.stats.visited_bytes,
        plain.stats.visited_bytes
    );
}
