//! Integration tests pinning the paper's Section 5 experimental results
//! (experiments E1–E4 of DESIGN.md).

use tta_core::{
    narrate_trace, verify_cluster, verify_cluster_with, CheckStrategy, ClusterConfig, ClusterModel,
    FaultBudget, Verdict,
};
use tta_guardian::{CouplerAuthority, CouplerFaultMode};
use tta_types::FrameKind;

/// E1: the property holds for passive, time-windows and small-shifting
/// couplers ("For the passive, time windows, and small shifting couplers
/// we verify that the property above holds").
#[test]
fn restricted_authorities_satisfy_the_property() {
    for authority in [
        CouplerAuthority::Passive,
        CouplerAuthority::TimeWindows,
        CouplerAuthority::SmallShifting,
    ] {
        let report = verify_cluster(&ClusterConfig::paper(authority));
        assert_eq!(report.verdict, Verdict::Holds, "{authority} must verify");
        assert!(report.counterexample.is_none());
        assert!(
            report.stats.states_explored > 1000,
            "nontrivial state space"
        );
    }
}

/// E2: full-frame buffering breaks the property; the unconstrained
/// shortest counterexample uses the out-of-slot fault.
#[test]
fn full_shifting_violates_the_property() {
    let config = ClusterConfig::paper(CouplerAuthority::FullShifting);
    let report = verify_cluster(&config);
    assert_eq!(report.verdict, Verdict::Violated);
    let trace = report.counterexample.expect("counterexample produced");

    // The violation is caused by replaying frames out of their slot:
    // the replay budget must have been spent.
    assert!(trace.violating_state().out_of_slot_used() >= 1);

    // And the victim is recorded by the monitor.
    assert!(trace.violating_state().frozen_victim().is_some());
}

/// E3: with at most one out-of-slot error, the counterexample duplicates
/// a cold-start frame (paper trace 1).
#[test]
fn single_replay_duplicates_a_cold_start_frame() {
    let config = ClusterConfig::paper_trace_cold_start();
    let report = verify_cluster(&config);
    assert_eq!(report.verdict, Verdict::Violated);
    let trace = report.counterexample.expect("counterexample produced");
    assert_eq!(trace.violating_state().out_of_slot_used(), 1);

    // Find the replayed frame kind through narration metadata: replay the
    // trace through the model and locate the out-of-slot step.
    let model = ClusterModel::new(config);
    let replayed = replayed_kinds(&model, &trace);
    assert_eq!(
        replayed,
        vec![FrameKind::ColdStart],
        "trace 1 replays a cold-start frame"
    );

    // The narrative mentions the clique-avoidance freeze, like the
    // paper's step 10.
    let text = narration_text(&model, &trace);
    assert!(text.contains("replays the previous cold_start frame"));
    assert!(text.contains("freezes due to a clique avoidance error"));
}

/// E4: additionally prohibiting cold-start duplication forces the
/// counterexample through a duplicated C-state frame (paper trace 2).
#[test]
fn forbidding_cold_start_duplication_forces_cstate_replay() {
    let config = ClusterConfig::paper_trace_cstate();
    let report = verify_cluster(&config);
    assert_eq!(report.verdict, Verdict::Violated);
    let trace = report.counterexample.expect("counterexample produced");

    let model = ClusterModel::new(config);
    let replayed = replayed_kinds(&model, &trace);
    assert_eq!(
        replayed,
        vec![FrameKind::CState],
        "trace 2 replays a C-state frame"
    );

    let text = narration_text(&model, &trace);
    assert!(text.contains("replays the previous c_state frame"));
    assert!(text.contains("freezes due to a clique avoidance error"));
}

/// The second trace is no shorter than the first: the paper notes the
/// added constraint "results in a slightly longer trace".
#[test]
fn constrained_traces_grow_with_constraints() {
    let unconstrained = verify_cluster(&ClusterConfig::paper(CouplerAuthority::FullShifting))
        .counterexample_len()
        .unwrap();
    let budget_one = verify_cluster(&ClusterConfig::paper_trace_cold_start())
        .counterexample_len()
        .unwrap();
    let no_cold_dup = verify_cluster(&ClusterConfig::paper_trace_cstate())
        .counterexample_len()
        .unwrap();
    assert!(budget_one >= unconstrained);
    assert!(no_cold_dup >= budget_one);
}

/// E5: trace generation is far below the paper's "less than a minute on a
/// 1.5 GHz AMD machine".
#[test]
fn traces_generate_quickly() {
    let start = std::time::Instant::now();
    let _ = verify_cluster(&ClusterConfig::paper_trace_cold_start());
    let _ = verify_cluster(&ClusterConfig::paper_trace_cstate());
    assert!(
        start.elapsed() < std::time::Duration::from_secs(60),
        "both traces within the paper's time budget"
    );
}

/// A zero-replay budget restores the property even for full shifting:
/// the *capability*, not the authority level per se, is what breaks it.
#[test]
fn full_shifting_without_replays_is_safe() {
    let config = ClusterConfig {
        out_of_slot_budget: FaultBudget::AtMost(0),
        ..ClusterConfig::paper(CouplerAuthority::FullShifting)
    };
    let report = verify_cluster(&config);
    assert_eq!(report.verdict, Verdict::Holds);
}

/// The parallel explorer reaches the same verdicts (A2 ablation sanity).
#[test]
fn parallel_exploration_agrees() {
    let safe = verify_cluster_with(
        &ClusterConfig::paper(CouplerAuthority::SmallShifting),
        CheckStrategy::ParallelBfs { threads: 2 },
    );
    assert_eq!(safe.verdict, Verdict::Holds);

    let broken = verify_cluster_with(
        &ClusterConfig::paper(CouplerAuthority::FullShifting),
        CheckStrategy::ParallelBfs { threads: 2 },
    );
    assert_eq!(broken.verdict, Verdict::Violated);
    // Layer-synchronous BFS gives minimal-depth counterexamples too.
    let sequential = verify_cluster(&ClusterConfig::paper(CouplerAuthority::FullShifting));
    assert_eq!(broken.counterexample_len(), sequential.counterexample_len());
}

/// The bounded checker (A2 ablation) finds the violation at small depth
/// and reports budget-limited results below it.
#[test]
fn bounded_checking_finds_the_violation_at_depth() {
    let config = ClusterConfig::paper(CouplerAuthority::FullShifting);
    let shallow = verify_cluster_with(&config, CheckStrategy::Bounded { depth: 4 });
    assert_eq!(shallow.verdict, Verdict::BudgetExhausted);
    let deep = verify_cluster_with(&config, CheckStrategy::Bounded { depth: 16 });
    assert_eq!(deep.verdict, Verdict::Violated);
}

/// Disabling the symmetric-fault reduction must not change any verdict
/// (soundness of the reduction).
#[test]
fn symmetric_fault_reduction_is_sound() {
    for authority in [
        CouplerAuthority::SmallShifting,
        CouplerAuthority::FullShifting,
    ] {
        let reduced = verify_cluster(&ClusterConfig::paper(authority));
        let full = verify_cluster(&ClusterConfig {
            symmetric_fault_reduction: false,
            ..ClusterConfig::paper(authority)
        });
        assert_eq!(reduced.verdict, full.verdict, "{authority}");
        if let (Some(a), Some(b)) = (reduced.counterexample_len(), full.counterexample_len()) {
            assert_eq!(a, b, "shortest traces agree for {authority}");
        }
    }
}

// ---------------------------------------------------------------------
// helpers

fn replayed_kinds(
    model: &ClusterModel,
    trace: &tta_modelcheck::Trace<tta_core::ClusterState>,
) -> Vec<FrameKind> {
    let mut kinds = Vec::new();
    for (prev, next) in trace.transitions() {
        let (_, info) = model
            .expand(prev)
            .into_iter()
            .find(|(s, _)| s == next)
            .expect("trace is a path of the model");
        for (i, fault) in info.faults.iter().enumerate() {
            if *fault == CouplerFaultMode::OutOfSlot {
                kinds.push(prev.coupler_buffers()[i].kind);
            }
        }
    }
    kinds
}

fn narration_text(
    model: &ClusterModel,
    trace: &tta_modelcheck::Trace<tta_core::ClusterState>,
) -> String {
    narrate_trace(model, trace)
        .into_iter()
        .flat_map(|s| s.lines)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Non-vacuity of the safety property: under every coupler authority the
/// cluster can actually reach a fully active state (the safety result is
/// not satisfied by a cluster that never starts).
#[test]
fn startup_witness_exists_for_every_authority() {
    for authority in CouplerAuthority::all() {
        let witness = tta_core::find_startup_witness(&ClusterConfig::paper(authority))
            .unwrap_or_else(|| panic!("{authority}: cluster must be able to start"));
        let last = witness.states().last().unwrap();
        assert!(last
            .nodes()
            .iter()
            .all(|n| n.protocol_state() == tta_protocol::ProtocolState::Active));
        // A 4-node cluster needs at least: init, listen, timeout, cold
        // start, one round, integration, promotion — well over 10 slots.
        assert!(
            witness.transition_count() >= 10,
            "{}",
            witness.transition_count()
        );
    }
}
