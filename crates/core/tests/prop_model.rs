//! Property-based tests on the cluster transition system: structural
//! invariants that must hold along *every* path, checked on random walks.

use proptest::prelude::*;
use tta_core::{ClusterCodec, ClusterConfig, ClusterModel, ClusterState, FaultBudget};
use tta_guardian::{CouplerAuthority, CouplerFaultMode};
use tta_modelcheck::hashing::fx_hash;
use tta_modelcheck::StateCodec;
use tta_protocol::HostChoices;

fn arb_authority() -> impl Strategy<Value = CouplerAuthority> {
    prop::sample::select(CouplerAuthority::all().to_vec())
}

fn arb_config() -> impl Strategy<Value = ClusterConfig> {
    (
        2usize..=4,
        arb_authority(),
        prop_oneof![
            Just(FaultBudget::Unlimited),
            (0u8..3).prop_map(FaultBudget::AtMost)
        ],
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(nodes, authority, budget, forbid, symmetric, shutdown)| ClusterConfig {
                nodes,
                authority,
                host_choices: HostChoices {
                    staggered_startup: true,
                    allow_shutdown: shutdown,
                    allow_await_test: false,
                },
                out_of_slot_budget: budget,
                forbid_cold_start_replay: forbid,
                symmetric_fault_reduction: symmetric,
            },
        )
}

/// Walks `picks.len()` random transitions; returns every visited state.
fn walk(model: &ClusterModel, picks: &[usize]) -> Vec<ClusterState> {
    let mut state = model.initial_state();
    let mut visited = vec![state.clone()];
    for pick in picks {
        let successors = model.expand(&state);
        if successors.is_empty() {
            break; // absorbing violation state
        }
        state = successors[pick % successors.len()].0.clone();
        visited.push(state.clone());
    }
    visited
}

proptest! {
    /// The single-fault hypothesis holds on every enumerated transition:
    /// at most one coupler is faulty per slot.
    #[test]
    fn at_most_one_faulty_coupler_per_slot(
        config in arb_config(),
        picks in prop::collection::vec(any::<usize>(), 1..40),
    ) {
        let model = ClusterModel::new(config);
        for state in walk(&model, &picks) {
            for (_, info) in model.expand(&state) {
                let faulty = info.faults.iter().filter(|f| f.is_faulty()).count();
                prop_assert!(faulty <= 1, "faults {:?}", info.faults);
            }
        }
    }

    /// Out-of-slot faults appear only for full-shifting couplers, only
    /// within budget, and never replay a cold-start frame when that is
    /// forbidden.
    #[test]
    fn replay_constraints_are_enforced_everywhere(
        config in arb_config(),
        picks in prop::collection::vec(any::<usize>(), 1..40),
    ) {
        let model = ClusterModel::new(config);
        for state in walk(&model, &picks) {
            for (next, info) in model.expand(&state) {
                for (i, fault) in info.faults.iter().enumerate() {
                    if *fault != CouplerFaultMode::OutOfSlot {
                        continue;
                    }
                    prop_assert!(config.authority.can_buffer_full_frames());
                    prop_assert!(config.out_of_slot_budget.allows(state.out_of_slot_used()));
                    prop_assert!(state.coupler_buffers()[i].is_replayable());
                    if config.forbid_cold_start_replay {
                        prop_assert_ne!(
                            state.coupler_buffers()[i].kind,
                            tta_types::FrameKind::ColdStart
                        );
                    }
                    // The counter saturates (at 7) under an unlimited
                    // budget to keep the state space finite.
                    prop_assert_eq!(
                        next.out_of_slot_used(),
                        (state.out_of_slot_used() + 1).min(7)
                    );
                }
            }
        }
    }

    /// The compact codec is the identity composed with bit packing on
    /// every state a random walk can reach: decode inverts encode, a
    /// re-encode reproduces the exact words (fixed point), and equal
    /// states hash equally through the encoding — the contract the
    /// interned visited set relies on.
    #[test]
    fn compact_codec_round_trips_on_random_walks(
        config in arb_config(),
        picks in prop::collection::vec(any::<usize>(), 1..40),
    ) {
        let model = ClusterModel::new(config);
        let codec = ClusterCodec::new(&config);
        for state in walk(&model, &picks) {
            let encoded = codec.encode(&state);
            let decoded = codec.decode(&encoded);
            prop_assert_eq!(&decoded, &state, "decode inverts encode");
            prop_assert_eq!(codec.encode(&decoded), encoded, "re-encode fixed point");
            prop_assert_eq!(
                fx_hash(&codec.encode(&state)),
                fx_hash(&encoded),
                "equal states hash equally through the codec"
            );
        }
    }

    /// The replay counter never decreases and only moves by the number of
    /// replays taken.
    #[test]
    fn replay_counter_is_monotone(
        config in arb_config(),
        picks in prop::collection::vec(any::<usize>(), 1..40),
    ) {
        let model = ClusterModel::new(config);
        let states = walk(&model, &picks);
        for pair in states.windows(2) {
            prop_assert!(pair[1].out_of_slot_used() >= pair[0].out_of_slot_used());
            prop_assert!(pair[1].out_of_slot_used() - pair[0].out_of_slot_used() <= 1);
        }
    }

    /// The violation monitor latches: once set it never clears, and
    /// violating states are absorbing.
    #[test]
    fn violation_monitor_latches(
        config in arb_config(),
        picks in prop::collection::vec(any::<usize>(), 1..60),
    ) {
        let model = ClusterModel::new(config);
        let states = walk(&model, &picks);
        let mut seen_violation = false;
        for state in &states {
            if seen_violation {
                prop_assert!(state.frozen_victim().is_some());
            }
            seen_violation |= state.frozen_victim().is_some();
        }
        if let Some(last) = states.last() {
            if last.frozen_victim().is_some() {
                prop_assert!(model.expand(last).is_empty());
            }
        }
    }

    /// Below full shifting, coupler buffers stay empty along every path —
    /// there is nothing a faulty coupler could replay (eq. 3 rationale).
    #[test]
    fn restricted_couplers_never_hold_frames(
        config in arb_config(),
        picks in prop::collection::vec(any::<usize>(), 1..40),
    ) {
        prop_assume!(!config.authority.can_buffer_full_frames());
        let model = ClusterModel::new(config);
        for state in walk(&model, &picks) {
            for buffer in state.coupler_buffers() {
                prop_assert_eq!(buffer, tta_guardian::BufferedFrame::empty());
            }
        }
    }

    /// With the symmetric-fault reduction, coupler 1 never faults.
    #[test]
    fn symmetric_reduction_pins_coupler_one(
        config in arb_config(),
        picks in prop::collection::vec(any::<usize>(), 1..30),
    ) {
        prop_assume!(config.symmetric_fault_reduction);
        let model = ClusterModel::new(config);
        for state in walk(&model, &picks) {
            for (_, info) in model.expand(&state) {
                prop_assert_eq!(info.faults[1], CouplerFaultMode::None);
            }
        }
    }

    /// Without host shutdowns and without replayable faults, the property
    /// monitor stays clear on every random walk (the E1 result, sampled).
    #[test]
    fn no_violation_without_replays(
        nodes in 2usize..=4,
        authority in prop::sample::select(vec![
            CouplerAuthority::Passive,
            CouplerAuthority::TimeWindows,
            CouplerAuthority::SmallShifting,
        ]),
        picks in prop::collection::vec(any::<usize>(), 1..80),
    ) {
        let config = ClusterConfig {
            nodes,
            ..ClusterConfig::paper(authority)
        };
        let model = ClusterModel::new(config);
        for state in walk(&model, &picks) {
            prop_assert!(state.property_holds(), "violated at {state}");
        }
    }

    /// The transition relation is total on non-violating states, and every
    /// successor is well-formed (node count preserved, victims only ever
    /// appear with a cause).
    #[test]
    fn successors_are_well_formed(
        config in arb_config(),
        picks in prop::collection::vec(any::<usize>(), 1..40),
    ) {
        let model = ClusterModel::new(config);
        for state in walk(&model, &picks) {
            let successors = model.expand(&state);
            if state.frozen_victim().is_none() {
                prop_assert!(!successors.is_empty(), "deadlock at {state}");
            }
            for (next, _) in successors {
                prop_assert_eq!(next.nodes().len(), config.nodes);
                if let Some(victim) = next.frozen_victim() {
                    // The victim really is frozen in the successor unless
                    // it was already latched earlier.
                    if state.frozen_victim().is_none() {
                        prop_assert_eq!(
                            next.node(victim).protocol_state(),
                            tta_protocol::ProtocolState::Freeze
                        );
                        prop_assert!(state.node(victim).is_integrated());
                    }
                }
            }
        }
    }
}
