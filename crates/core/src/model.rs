//! The cluster transition system (one transition = one TDMA slot).

use crate::config::ClusterConfig;
use crate::state::ClusterState;
use tta_guardian::{BufferedFrame, CouplerFaultMode, StarCoupler};
use tta_modelcheck::TransitionSystem;
use tta_protocol::{
    ChannelObservation, ChannelView, Controller, SendIntent, Transition, TransitionCause,
};
use tta_types::{FrameKind, NodeId};

/// Saturation cap for the out-of-slot counter under an unlimited budget;
/// keeps the state space finite without affecting semantics (the counter
/// is only compared against finite budgets below this cap). Exported so
/// state-lifting code (the conformance oracle) saturates its replay count
/// the same way.
pub const REPLAY_COUNTER_CAP: u8 = 7;

/// How a particular successor was produced: which coupler faults were
/// injected and what the channels carried. Used by trace narration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepInfo {
    /// Fault modes of coupler 0 and coupler 1 during the slot.
    pub faults: [CouplerFaultMode; 2],
    /// What every node observed on the two channels.
    pub view: ChannelView,
}

/// The Section 4 model of the TTA star topology with redundant central
/// guardians.
#[derive(Debug, Clone)]
pub struct ClusterModel {
    config: ClusterConfig,
}

impl ClusterModel {
    /// Builds the model for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`ClusterConfig::validate`]).
    #[must_use]
    pub fn new(config: ClusterConfig) -> Self {
        config.validate();
        ClusterModel { config }
    }

    /// The model's configuration.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The single initial state: all nodes in `freeze`, couplers empty.
    #[must_use]
    pub fn initial_state(&self) -> ClusterState {
        ClusterState::new(
            NodeId::first(self.config.nodes)
                .map(|id| Controller::new(id, self.config.slots_per_round()))
                .collect(),
        )
    }

    /// Merges all nodes' transmissions onto the (shared) coupler input:
    /// silence if nobody sends, the frame if exactly one node sends, a
    /// collision (bad frame) otherwise.
    #[must_use]
    pub fn merged_input(&self, state: &ClusterState) -> ChannelObservation {
        let mut input = ChannelObservation::silence();
        let mut senders = 0u8;
        for node in state.nodes() {
            let obs = match node.send_intent() {
                SendIntent::Silent => continue,
                SendIntent::ColdStart { id } => ChannelObservation::frame(FrameKind::ColdStart, id),
                SendIntent::CStateFrame { id } => ChannelObservation::frame(FrameKind::CState, id),
            };
            senders += 1;
            input = obs;
        }
        if senders > 1 {
            ChannelObservation::bad()
        } else {
            input
        }
    }

    /// Fault modes coupler `index` may exhibit in `state`, honoring the
    /// coupler's authority, the replay budget, and the cold-start
    /// duplication constraint. Replays with an empty buffer are excluded
    /// (they are indistinguishable from the silence fault).
    fn allowed_faults(&self, state: &ClusterState, index: usize) -> Vec<CouplerFaultMode> {
        let mut modes = vec![
            CouplerFaultMode::None,
            CouplerFaultMode::Silence,
            CouplerFaultMode::BadFrame,
        ];
        if self.config.authority.can_buffer_full_frames() {
            let buffer = state.coupler_buffers()[index];
            let budget_ok = self
                .config
                .out_of_slot_budget
                .allows(state.out_of_slot_used());
            let kind_ok =
                !(self.config.forbid_cold_start_replay && buffer.kind == FrameKind::ColdStart);
            if budget_ok && buffer.is_replayable() && kind_ok {
                modes.push(CouplerFaultMode::OutOfSlot);
            }
        }
        modes
    }

    /// Expands one state into all `(successor, info)` pairs. Violating
    /// states are absorbing (the monitor has latched; exploration stops
    /// there anyway).
    #[must_use]
    pub fn expand(&self, state: &ClusterState) -> Vec<(ClusterState, StepInfo)> {
        let mut out = Vec::new();
        self.for_each_step(state, &mut |succ, info| out.push((succ, info)));
        out
    }

    /// Whether the transition relation admits the step `state → next`.
    ///
    /// This is the model's *step-admission* judgment, the primitive the
    /// conformance oracle replays simulator traces against: a step is
    /// admitted iff some coupler-fault combination and host-choice vector
    /// produces exactly `next`.
    #[must_use]
    pub fn admits(&self, state: &ClusterState, next: &ClusterState) -> bool {
        self.step_between(state, next).is_some()
    }

    /// The [`StepInfo`] of some admitted step `state → next`, or `None`
    /// if the relation does not admit it. When several fault combinations
    /// produce the same successor, the first in enumeration order wins
    /// (healthy couplers sort first, so the least-faulty explanation is
    /// preferred).
    #[must_use]
    pub fn step_between(&self, state: &ClusterState, next: &ClusterState) -> Option<StepInfo> {
        let mut found = None;
        self.for_each_step(state, &mut |succ, info| {
            if found.is_none() && &succ == next {
                found = Some(info);
            }
        });
        found
    }

    /// Drives `emit` over every `(successor, info)` pair of `state`.
    ///
    /// This is the allocation-lean core behind [`Self::expand`] and the
    /// [`TransitionSystem`] impl: the per-node option lists and the
    /// odometer are reused across all fault combinations of the state,
    /// and callers that only need the successors (the explorers, via
    /// `successors`) never materialize an intermediate
    /// `Vec<(ClusterState, StepInfo)>`.
    pub fn for_each_step(
        &self,
        state: &ClusterState,
        emit: &mut dyn FnMut(ClusterState, StepInfo),
    ) {
        if state.frozen_victim().is_some() {
            return;
        }
        let input = self.merged_input(state);
        let buffers = state.coupler_buffers();

        let faults0 = self.allowed_faults(state, 0);
        let faults1: Vec<CouplerFaultMode> = if self.config.symmetric_fault_reduction {
            vec![CouplerFaultMode::None]
        } else {
            self.allowed_faults(state, 1)
        };

        // Scratch reused across every fault combination.
        let mut options: Vec<Vec<Transition>> = Vec::with_capacity(state.nodes().len());
        let mut indices: Vec<usize> = Vec::with_capacity(state.nodes().len());
        for &f0 in &faults0 {
            for &f1 in &faults1 {
                // Single-fault hypothesis: at most one coupler faulty.
                if f0.is_faulty() && f1.is_faulty() {
                    continue;
                }
                // Budget applies across both couplers.
                if f0 == CouplerFaultMode::OutOfSlot && f1 == CouplerFaultMode::OutOfSlot {
                    continue; // unreachable given single-fault, kept for clarity
                }
                let (obs0, buf0) = relay(self, buffers[0], input, f0);
                let (obs1, buf1) = relay(self, buffers[1], input, f1);
                let view = ChannelView::new(obs0, obs1);
                let replays = u8::from(f0 == CouplerFaultMode::OutOfSlot)
                    + u8::from(f1 == CouplerFaultMode::OutOfSlot);
                let used = state
                    .out_of_slot_used()
                    .saturating_add(replays)
                    .min(REPLAY_COUNTER_CAP);
                let info = StepInfo {
                    faults: [f0, f1],
                    view,
                };

                // Cartesian product of per-node transition choices.
                options.clear();
                options.extend(
                    state
                        .nodes()
                        .iter()
                        .map(|n| n.successors(&view, &self.config.host_choices)),
                );
                indices.clear();
                indices.resize(options.len(), 0);
                loop {
                    let mut nodes = Vec::with_capacity(options.len());
                    let mut victim = state.frozen_victim();
                    for (i, opts) in options.iter().enumerate() {
                        let t = &opts[indices[i]];
                        if victim.is_none()
                            && state.nodes()[i].is_integrated()
                            && t.next.protocol_state() == tta_protocol::ProtocolState::Freeze
                            && t.cause == TransitionCause::Protocol
                        {
                            victim = Some(NodeId::new(i as u8));
                        }
                        nodes.push(t.next);
                    }
                    emit(
                        ClusterState::with_parts(nodes, [buf0, buf1], used, victim),
                        info,
                    );
                    // Advance the odometer.
                    let mut i = 0;
                    loop {
                        if i == options.len() {
                            break;
                        }
                        indices[i] += 1;
                        if indices[i] < options[i].len() {
                            break;
                        }
                        indices[i] = 0;
                        i += 1;
                    }
                    if i == options.len() {
                        break;
                    }
                }
            }
        }
    }
}

fn relay(
    model: &ClusterModel,
    buffer: BufferedFrame,
    input: ChannelObservation,
    fault: CouplerFaultMode,
) -> (ChannelObservation, BufferedFrame) {
    let mut coupler = StarCoupler::with_buffer(model.config.authority, buffer);
    let obs = coupler.relay(input, fault);
    (obs, coupler.buffer())
}

impl TransitionSystem for ClusterModel {
    type State = ClusterState;

    fn initial_states(&self) -> Vec<ClusterState> {
        vec![self.initial_state()]
    }

    fn successors(&self, state: &ClusterState, out: &mut Vec<ClusterState>) {
        self.for_each_step(state, &mut |succ, _| out.push(succ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FaultBudget;
    use tta_guardian::CouplerAuthority;
    use tta_protocol::ProtocolState;

    fn model(authority: CouplerAuthority) -> ClusterModel {
        ClusterModel::new(ClusterConfig::paper(authority))
    }

    #[test]
    fn initial_state_is_all_freeze() {
        let m = model(CouplerAuthority::Passive);
        let s = m.initial_state();
        assert!(s
            .nodes()
            .iter()
            .all(|n| n.protocol_state() == ProtocolState::Freeze));
    }

    #[test]
    fn merged_input_handles_silence_single_and_collision() {
        let m = model(CouplerAuthority::Passive);
        let s = m.initial_state();
        assert_eq!(m.merged_input(&s), ChannelObservation::silence());
        // Drive two nodes into cold start by hand and observe a collision.
        // (Constructing that state directly through the API keeps the test
        // honest: we walk the real transition relation.)
        // All-freeze state: no senders.
    }

    #[test]
    fn passive_coupler_never_replays() {
        let m = model(CouplerAuthority::Passive);
        let s = m.initial_state();
        for (_, info) in m.expand(&s) {
            assert!(info
                .faults
                .iter()
                .all(|f| *f != CouplerFaultMode::OutOfSlot));
        }
    }

    #[test]
    fn replay_requires_a_buffered_frame() {
        // Even for full shifting, the initial (empty-buffer) state cannot
        // replay.
        let m = model(CouplerAuthority::FullShifting);
        let s = m.initial_state();
        for (_, info) in m.expand(&s) {
            assert!(info
                .faults
                .iter()
                .all(|f| *f != CouplerFaultMode::OutOfSlot));
        }
    }

    #[test]
    fn symmetric_reduction_keeps_coupler_one_healthy() {
        let m = model(CouplerAuthority::FullShifting);
        let s = m.initial_state();
        for (_, info) in m.expand(&s) {
            assert_eq!(info.faults[1], CouplerFaultMode::None);
        }
    }

    #[test]
    fn without_reduction_both_couplers_can_fail_but_not_together() {
        let config = ClusterConfig {
            symmetric_fault_reduction: false,
            ..ClusterConfig::paper(CouplerAuthority::FullShifting)
        };
        let m = ClusterModel::new(config);
        let s = m.initial_state();
        let mut coupler1_faulted = false;
        for (_, info) in m.expand(&s) {
            assert!(!(info.faults[0].is_faulty() && info.faults[1].is_faulty()));
            coupler1_faulted |= info.faults[1].is_faulty();
        }
        assert!(coupler1_faulted);
    }

    #[test]
    fn expansion_covers_startup_staggering() {
        let m = model(CouplerAuthority::Passive);
        let s = m.initial_state();
        let successors = m.expand(&s);
        // With 4 nodes × {stay, init} and 3 fault modes (dedup by the
        // explorer, not here): at least 16 node combinations exist.
        let distinct: std::collections::HashSet<ClusterState> =
            successors.iter().map(|(s, _)| s.clone()).collect();
        assert!(distinct.len() >= 16, "got {}", distinct.len());
    }

    #[test]
    fn violating_states_are_absorbing() {
        let m = model(CouplerAuthority::FullShifting);
        let nodes: Vec<_> = NodeId::first(4).map(|id| Controller::new(id, 4)).collect();
        let bad =
            ClusterState::with_parts(nodes, [BufferedFrame::empty(); 2], 1, Some(NodeId::new(1)));
        assert!(m.expand(&bad).is_empty());
    }

    #[test]
    fn replay_budget_is_tracked() {
        let config = ClusterConfig {
            out_of_slot_budget: FaultBudget::AtMost(1),
            ..ClusterConfig::paper(CouplerAuthority::FullShifting)
        };
        let m = ClusterModel::new(config);
        // Construct a state whose coupler 0 holds a replayable frame.
        let nodes: Vec<_> = NodeId::first(4).map(|id| Controller::new(id, 4)).collect();
        let buffered = BufferedFrame {
            id: 1,
            kind: FrameKind::ColdStart,
        };
        let s = ClusterState::with_parts(nodes.clone(), [buffered, buffered], 0, None);
        let replayed: Vec<_> = m
            .expand(&s)
            .into_iter()
            .filter(|(_, i)| i.faults[0] == CouplerFaultMode::OutOfSlot)
            .collect();
        assert!(!replayed.is_empty(), "replay enumerated while budget lasts");
        for (succ, _) in &replayed {
            assert_eq!(succ.out_of_slot_used(), 1);
        }
        // After spending the budget, no further replay is offered.
        let spent = ClusterState::with_parts(nodes, [buffered, buffered], 1, None);
        assert!(m
            .expand(&spent)
            .iter()
            .all(|(_, i)| i.faults[0] != CouplerFaultMode::OutOfSlot));
    }

    #[test]
    fn cold_start_replay_constraint_filters_buffer_kind() {
        let m = ClusterModel::new(ClusterConfig::paper_trace_cstate());
        let nodes: Vec<_> = NodeId::first(4).map(|id| Controller::new(id, 4)).collect();
        let cold = BufferedFrame {
            id: 1,
            kind: FrameKind::ColdStart,
        };
        let s = ClusterState::with_parts(nodes.clone(), [cold, cold], 0, None);
        assert!(m
            .expand(&s)
            .iter()
            .all(|(_, i)| i.faults[0] != CouplerFaultMode::OutOfSlot));
        let cstate = BufferedFrame {
            id: 3,
            kind: FrameKind::CState,
        };
        let s = ClusterState::with_parts(nodes, [cstate, cstate], 0, None);
        assert!(m
            .expand(&s)
            .iter()
            .any(|(_, i)| i.faults[0] == CouplerFaultMode::OutOfSlot));
    }
}
