//! Whole-state-space introspection.
//!
//! Beyond a verdict, it is useful to know what the reachable space of the
//! Section 4 model actually *contains*: how node states distribute, how
//! much of the cluster is ever simultaneously up, how many replays the
//! fault budget ever admits, and how many distinct violating states exist
//! (the checker stops at the first; the analyzer counts them all).

use crate::config::ClusterConfig;
use crate::model::ClusterModel;
use crate::state::ClusterState;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use tta_modelcheck::hashing::FxHashSet;

/// Aggregate facts about the reachable state space.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReachableSummary {
    /// Distinct reachable global states (within the budget).
    pub states: u64,
    /// Whether the exploration budget truncated the space.
    pub truncated: bool,
    /// How often each protocol state occurs across all (state, node)
    /// pairs, keyed by the state's display name.
    pub node_state_histogram: BTreeMap<String, u64>,
    /// The largest number of simultaneously integrated nodes in any
    /// reachable state (4 in a healthy 4-node model — non-vacuity).
    pub max_simultaneous_integrated: usize,
    /// The largest replay count the fault budget ever admits.
    pub max_replays_observed: u8,
    /// Number of distinct states with the violation monitor latched.
    pub violating_states: u64,
}

impl fmt::Display for ReachableSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} reachable states{}, up to {} nodes integrated at once, up to {} replays, {} violating",
            self.states,
            if self.truncated { " (truncated)" } else { "" },
            self.max_simultaneous_integrated,
            self.max_replays_observed,
            self.violating_states
        )?;
        for (state, count) in &self.node_state_histogram {
            writeln!(f, "  {state:<12} {count}")?;
        }
        Ok(())
    }
}

/// Explores the full reachable space of `config` (up to `max_states`
/// states) and summarizes it.
#[must_use]
pub fn analyze_reachable(config: &ClusterConfig, max_states: u64) -> ReachableSummary {
    let model = ClusterModel::new(*config);
    let mut seen: FxHashSet<ClusterState> = FxHashSet::default();
    let mut frontier: VecDeque<ClusterState> = VecDeque::new();
    let mut summary = ReachableSummary {
        states: 0,
        truncated: false,
        node_state_histogram: BTreeMap::new(),
        max_simultaneous_integrated: 0,
        max_replays_observed: 0,
        violating_states: 0,
    };

    let initial = model.initial_state();
    seen.insert(initial.clone());
    frontier.push_back(initial);

    while let Some(state) = frontier.pop_front() {
        summary.states += 1;
        let mut integrated = 0;
        for node in state.nodes() {
            let name = node.protocol_state().to_string();
            *summary.node_state_histogram.entry(name).or_insert(0) += 1;
            if node.is_integrated() {
                integrated += 1;
            }
        }
        summary.max_simultaneous_integrated = summary.max_simultaneous_integrated.max(integrated);
        summary.max_replays_observed = summary.max_replays_observed.max(state.out_of_slot_used());
        if state.frozen_victim().is_some() {
            summary.violating_states += 1;
        }

        for (next, _) in model.expand(&state) {
            if seen.len() as u64 >= max_states {
                summary.truncated = true;
                continue;
            }
            if seen.insert(next.clone()) {
                frontier.push_back(next);
            }
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FaultBudget;
    use tta_guardian::CouplerAuthority;

    #[test]
    fn passive_space_has_no_violations_and_full_integration() {
        let summary = analyze_reachable(
            &ClusterConfig {
                nodes: 3,
                ..ClusterConfig::paper(CouplerAuthority::Passive)
            },
            1 << 22,
        );
        assert!(!summary.truncated);
        assert_eq!(summary.violating_states, 0);
        assert_eq!(summary.max_simultaneous_integrated, 3, "non-vacuity");
        assert_eq!(summary.max_replays_observed, 0);
        assert!(summary.node_state_histogram.contains_key("active"));
        assert!(summary.node_state_histogram.contains_key("cold_start"));
    }

    #[test]
    fn full_shifting_space_contains_violations() {
        let summary = analyze_reachable(
            &ClusterConfig {
                nodes: 3,
                out_of_slot_budget: FaultBudget::AtMost(1),
                ..ClusterConfig::paper(CouplerAuthority::FullShifting)
            },
            1 << 22,
        );
        assert!(summary.violating_states > 0);
        assert_eq!(
            summary.max_replays_observed, 1,
            "budget respected everywhere"
        );
    }

    #[test]
    fn truncation_is_reported() {
        let summary = analyze_reachable(&ClusterConfig::paper(CouplerAuthority::Passive), 50);
        assert!(summary.truncated);
        assert!(summary.states <= 50);
    }

    #[test]
    fn display_lists_histogram() {
        let summary = analyze_reachable(
            &ClusterConfig {
                nodes: 2,
                ..ClusterConfig::paper(CouplerAuthority::Passive)
            },
            1 << 20,
        );
        let s = summary.to_string();
        assert!(s.contains("reachable states"));
        assert!(s.contains("listen"));
    }
}
