//! The packed global state of the cluster model.

use serde::{Deserialize, Serialize};
use std::fmt;
use tta_guardian::BufferedFrame;
use tta_protocol::Controller;
use tta_types::NodeId;

/// One global state of the Section 4 model: every node's controller
/// state, both couplers' frame buffers, the replay budget already spent,
/// and the property monitor.
///
/// States are hashed billions of times during exploration; all components
/// are small `Copy`-friendly values and semantically-unused fields are
/// canonicalized by `tta-protocol`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClusterState {
    nodes: Vec<Controller>,
    coupler_buffers: [BufferedFrame; 2],
    out_of_slot_used: u8,
    frozen_victim: Option<NodeId>,
}

impl ClusterState {
    /// A state with every given controller, empty coupler buffers, no
    /// replays spent, and a clear monitor.
    #[must_use]
    pub fn new(nodes: Vec<Controller>) -> Self {
        ClusterState {
            nodes,
            coupler_buffers: [BufferedFrame::empty(); 2],
            out_of_slot_used: 0,
            frozen_victim: None,
        }
    }

    /// Assembles a state from all four components. Public so external
    /// oracles (the conformance crate) can lift simulator observations
    /// into the model's vocabulary; the model itself only ever produces
    /// states through the transition relation.
    #[must_use]
    pub fn with_parts(
        nodes: Vec<Controller>,
        coupler_buffers: [BufferedFrame; 2],
        out_of_slot_used: u8,
        frozen_victim: Option<NodeId>,
    ) -> Self {
        ClusterState {
            nodes,
            coupler_buffers,
            out_of_slot_used,
            frozen_victim,
        }
    }

    /// Per-node controller states, indexed by node.
    #[must_use]
    pub fn nodes(&self) -> &[Controller] {
        &self.nodes
    }

    /// The controller of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the cluster.
    #[must_use]
    pub fn node(&self, node: NodeId) -> &Controller {
        &self.nodes[node.as_usize()]
    }

    /// The two couplers' frame buffers (always empty below full-shifting
    /// authority).
    #[must_use]
    pub fn coupler_buffers(&self) -> [BufferedFrame; 2] {
        self.coupler_buffers
    }

    /// Out-of-slot errors committed so far along this execution.
    #[must_use]
    pub fn out_of_slot_used(&self) -> u8 {
        self.out_of_slot_used
    }

    /// The property monitor: the first integrated node that was forced by
    /// the protocol into `freeze`, if any. The checked invariant is that
    /// this stays `None`.
    #[must_use]
    pub fn frozen_victim(&self) -> Option<NodeId> {
        self.frozen_victim
    }

    /// Whether the paper's property holds in this state.
    #[must_use]
    pub fn property_holds(&self) -> bool {
        self.frozen_victim.is_none()
    }
}

impl fmt::Display for ClusterState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, node) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{node}")?;
        }
        write!(
            f,
            " | buffers [{}, {}], replays {}",
            self.coupler_buffers[0], self.coupler_buffers[1], self.out_of_slot_used
        )?;
        if let Some(victim) = self.frozen_victim {
            write!(f, " | VIOLATION: {victim} froze while integrated")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> ClusterState {
        ClusterState::new(NodeId::first(4).map(|id| Controller::new(id, 4)).collect())
    }

    #[test]
    fn fresh_state_satisfies_property() {
        let s = fresh();
        assert!(s.property_holds());
        assert_eq!(s.out_of_slot_used(), 0);
        assert_eq!(s.coupler_buffers(), [BufferedFrame::empty(); 2]);
        assert_eq!(s.nodes().len(), 4);
    }

    #[test]
    fn victim_breaks_property() {
        let s = ClusterState::with_parts(
            fresh().nodes().to_vec(),
            [BufferedFrame::empty(); 2],
            1,
            Some(NodeId::new(1)),
        );
        assert!(!s.property_holds());
        assert!(s.to_string().contains("VIOLATION"));
        assert!(s.to_string().contains('B'));
    }

    #[test]
    fn node_accessor_indexes_by_id() {
        let s = fresh();
        assert_eq!(s.node(NodeId::new(2)).node_id(), NodeId::new(2));
    }

    #[test]
    fn equal_states_hash_equal() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(fresh());
        set.insert(fresh());
        assert_eq!(set.len(), 1);
    }
}
