//! Bit-packed encoding of [`ClusterState`] for the model checker's
//! visited set.
//!
//! A [`ClusterState`] carries a `Vec<Controller>` — one heap allocation
//! per clone — while its information content is tiny: everything a
//! reachable controller can be fits in 26 bits, and the shared coupler /
//! monitor state in another 24. [`ClusterCodec`] packs the whole global
//! state into a fixed `[u64; 9]` ([`CompactState`]), so the visited set
//! stores 72 flat bytes per state with **zero** heap allocations on the
//! encode path (the path that runs once per generated transition).
//!
//! The per-node static fields (`node_id`, `slots_per_round`) are *not*
//! encoded — they are constants of the [`ClusterConfig`] the codec is
//! built from, and node `i` always occupies lane `i`.
//!
//! Layout, two controllers per word (`lane = node / 2`, shift
//! `26 * (node % 2)`):
//!
//! ```text
//! bits  0..4   protocol state (9 variants)
//! bits  4..9   slot - 1        (slots_per_round ≤ 16)
//! bits  9..13  agreed counter  (saturates at 15)
//! bits 13..17  failed counter  (saturates at 15)
//! bit  17      big-bang armed
//! bits 18..24  listen timeout  (≤ 2 · slots_per_round ≤ 32)
//! bits 24..26  cold-start rounds (< 3)
//! ```
//!
//! Word 8 holds the shared state: both coupler buffers (5-bit id +
//! 3-bit kind each), the saturating out-of-slot counter (3 bits) and
//! the property monitor (5 bits, `0` = no victim).

use crate::config::ClusterConfig;
use crate::state::ClusterState;
use tta_guardian::BufferedFrame;
use tta_modelcheck::StateCodec;
use tta_protocol::{CliqueCounters, Controller, ProtocolState};
use tta_types::{FrameKind, NodeId};

/// Words in a [`CompactState`]: 8 controller words (two 26-bit lanes
/// each, 16 nodes max — the bound [`ClusterConfig::validate`] enforces)
/// plus one shared word.
const WORDS: usize = 9;

/// Bits per packed controller.
const CTRL_BITS: u32 = 26;

/// Index of the shared (buffers / counter / monitor) word.
const SHARED_WORD: usize = 8;

/// A bit-packed [`ClusterState`]: fixed-size, `Copy`, no heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompactState([u64; WORDS]);

/// Exposes the packed words to the delta-encoding visited set
/// ([`tta_modelcheck::DeltaArena`]): a cluster step touches one or two
/// of the nine words, so xor-deltas against the BFS parent store a
/// fraction of the 72-byte full width.
impl tta_modelcheck::WordEncoded for CompactState {
    const WORDS: usize = WORDS;

    #[inline]
    fn write_words(&self, out: &mut [u64]) {
        out.copy_from_slice(&self.0);
    }

    #[inline]
    fn from_words(words: &[u64]) -> Self {
        let mut packed = [0u64; WORDS];
        packed.copy_from_slice(words);
        CompactState(packed)
    }
}

/// The [`StateCodec`] between [`ClusterState`] and [`CompactState`].
///
/// Holds the [`ClusterConfig`] so decoding can restore the static
/// per-node fields the encoding omits.
#[derive(Debug, Clone, Copy)]
pub struct ClusterCodec {
    nodes: u8,
    slots_per_round: u16,
}

impl ClusterCodec {
    /// Builds the codec for a cluster configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`ClusterConfig::validate`]).
    #[must_use]
    pub fn new(config: &ClusterConfig) -> Self {
        config.validate();
        ClusterCodec {
            nodes: config.nodes as u8,
            slots_per_round: config.slots_per_round(),
        }
    }

    fn pack_controller(c: &Controller) -> u64 {
        let slot = c.slot().map_or(1, tta_types::SlotIndex::get);
        let counters = c.counters();
        u64::from(state_code(c.protocol_state()))
            | u64::from(slot - 1) << 4
            | u64::from(counters.agreed()) << 9
            | u64::from(counters.failed()) << 13
            | u64::from(c.big_bang_armed()) << 17
            | u64::from(c.listen_timeout()) << 18
            | u64::from(c.cold_start_rounds()) << 24
    }

    fn unpack_controller(&self, node: u8, bits: u64) -> Controller {
        Controller::from_parts(
            NodeId::new(node),
            self.slots_per_round,
            state_from_code((bits & 0xF) as u8),
            (bits >> 4 & 0x1F) as u16 + 1,
            CliqueCounters::from_counts((bits >> 9 & 0xF) as u8, (bits >> 13 & 0xF) as u8),
            bits >> 17 & 1 != 0,
            (bits >> 18 & 0x3F) as u16,
            (bits >> 24 & 0x3) as u8,
        )
    }

    fn pack_buffer(buffer: BufferedFrame) -> u64 {
        debug_assert!(buffer.id < 32, "frame ids are slot numbers (≤ 16)");
        u64::from(buffer.id) | u64::from(kind_code(buffer.kind)) << 5
    }

    fn unpack_buffer(bits: u64) -> BufferedFrame {
        BufferedFrame {
            id: (bits & 0x1F) as u16,
            kind: kind_from_code((bits >> 5 & 0x7) as u8),
        }
    }
}

impl StateCodec for ClusterCodec {
    type State = ClusterState;
    type Encoded = CompactState;

    fn encode(&self, state: &ClusterState) -> CompactState {
        debug_assert_eq!(
            state.nodes().len(),
            usize::from(self.nodes),
            "state does not belong to this codec's cluster"
        );
        let mut words = [0u64; WORDS];
        for (i, controller) in state.nodes().iter().enumerate() {
            words[i / 2] |= Self::pack_controller(controller) << (CTRL_BITS * (i as u32 % 2));
        }
        let buffers = state.coupler_buffers();
        words[SHARED_WORD] = Self::pack_buffer(buffers[0])
            | Self::pack_buffer(buffers[1]) << 8
            | u64::from(state.out_of_slot_used()) << 16
            | state
                .frozen_victim()
                .map_or(0, |v| u64::from(v.index()) + 1)
                << 19;
        CompactState(words)
    }

    fn decode(&self, encoded: &CompactState) -> ClusterState {
        let words = encoded.0;
        let nodes = (0..self.nodes)
            .map(|i| {
                let lane = words[usize::from(i) / 2] >> (CTRL_BITS * (u32::from(i) % 2));
                self.unpack_controller(i, lane & ((1 << CTRL_BITS) - 1))
            })
            .collect();
        let shared = words[SHARED_WORD];
        let victim = shared >> 19 & 0x1F;
        ClusterState::with_parts(
            nodes,
            [
                Self::unpack_buffer(shared & 0xFF),
                Self::unpack_buffer(shared >> 8 & 0xFF),
            ],
            (shared >> 16 & 0x7) as u8,
            (victim != 0).then(|| NodeId::new(victim as u8 - 1)),
        )
    }
}

fn state_code(state: ProtocolState) -> u8 {
    match state {
        ProtocolState::Freeze => 0,
        ProtocolState::Init => 1,
        ProtocolState::Listen => 2,
        ProtocolState::ColdStart => 3,
        ProtocolState::Active => 4,
        ProtocolState::Passive => 5,
        ProtocolState::Await => 6,
        ProtocolState::Test => 7,
        ProtocolState::Download => 8,
    }
}

fn state_from_code(code: u8) -> ProtocolState {
    match code {
        0 => ProtocolState::Freeze,
        1 => ProtocolState::Init,
        2 => ProtocolState::Listen,
        3 => ProtocolState::ColdStart,
        4 => ProtocolState::Active,
        5 => ProtocolState::Passive,
        6 => ProtocolState::Await,
        7 => ProtocolState::Test,
        8 => ProtocolState::Download,
        _ => unreachable!("invalid protocol-state code {code}"),
    }
}

fn kind_code(kind: FrameKind) -> u8 {
    match kind {
        FrameKind::None => 0,
        FrameKind::ColdStart => 1,
        FrameKind::CState => 2,
        FrameKind::Bad => 3,
        FrameKind::Other => 4,
    }
}

fn kind_from_code(code: u8) -> FrameKind {
    match code {
        0 => FrameKind::None,
        1 => FrameKind::ColdStart,
        2 => FrameKind::CState,
        3 => FrameKind::Bad,
        4 => FrameKind::Other,
        _ => unreachable!("invalid frame-kind code {code}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ClusterModel;
    use tta_guardian::CouplerAuthority;

    fn codec() -> ClusterCodec {
        ClusterCodec::new(&ClusterConfig::paper(CouplerAuthority::FullShifting))
    }

    #[test]
    fn initial_state_round_trips() {
        let model = ClusterModel::new(ClusterConfig::paper(CouplerAuthority::FullShifting));
        let state = model.initial_state();
        let codec = codec();
        let encoded = codec.encode(&state);
        assert_eq!(codec.decode(&encoded), state);
        assert_eq!(codec.encode(&codec.decode(&encoded)), encoded);
    }

    #[test]
    fn states_with_buffers_and_victim_round_trip() {
        let nodes: Vec<_> = NodeId::first(4).map(|id| Controller::new(id, 4)).collect();
        let state = ClusterState::with_parts(
            nodes,
            [
                BufferedFrame {
                    id: 3,
                    kind: FrameKind::CState,
                },
                BufferedFrame {
                    id: 1,
                    kind: FrameKind::ColdStart,
                },
            ],
            5,
            Some(NodeId::new(2)),
        );
        let codec = codec();
        assert_eq!(codec.decode(&codec.encode(&state)), state);
    }

    #[test]
    fn distinct_reachable_states_encode_distinctly() {
        // Walk two BFS layers of the real model and check that encoding
        // is injective on everything seen.
        let model = ClusterModel::new(ClusterConfig::paper(CouplerAuthority::FullShifting));
        let codec = codec();
        let mut states = vec![model.initial_state()];
        let mut frontier = states.clone();
        for _ in 0..2 {
            let mut next = Vec::new();
            for s in &frontier {
                for (succ, _) in model.expand(s) {
                    if !states.contains(&succ) {
                        states.push(succ.clone());
                        next.push(succ);
                    }
                }
            }
            frontier = next;
        }
        assert!(states.len() > 16, "walk reached a non-trivial set");
        let encodings: std::collections::HashSet<CompactState> =
            states.iter().map(|s| codec.encode(s)).collect();
        assert_eq!(encodings.len(), states.len(), "encoding is injective");
        for s in &states {
            assert_eq!(&codec.decode(&codec.encode(s)), s, "round trip");
        }
    }

    #[test]
    fn encoded_size_is_72_flat_bytes() {
        assert_eq!(std::mem::size_of::<CompactState>(), 72);
        assert_eq!(codec().encoded_size_hint(), 72);
    }

    #[test]
    fn sixteen_node_clusters_fit() {
        let config = ClusterConfig {
            nodes: 16,
            ..ClusterConfig::paper(CouplerAuthority::FullShifting)
        };
        let model = ClusterModel::new(config);
        let codec = ClusterCodec::new(&config);
        let state = model.initial_state();
        assert_eq!(codec.decode(&codec.encode(&state)), state);
    }

    #[test]
    fn protocol_state_codes_are_total_and_inverse() {
        for code in 0..9u8 {
            assert_eq!(state_code(state_from_code(code)), code);
        }
        for code in 0..5u8 {
            assert_eq!(kind_code(kind_from_code(code)), code);
        }
    }
}
