//! Renders counterexample traces as the paper's numbered step narratives.
//!
//! The paper presents its counterexamples as short natural-language
//! stories ("A faulty star coupler replays the previous cold start frame.
//! Node B integrates on it…"). This module reconstructs, for each
//! transition of a [`Trace`], which coupler fault produced it and what
//! every node did, and renders one narrated step per slot.

use crate::model::{ClusterModel, StepInfo};
use crate::state::ClusterState;
use tta_guardian::CouplerFaultMode;
use tta_liveness::Lasso;
use tta_modelcheck::Trace;
use tta_protocol::{ProtocolEvent, ProtocolState};
use tta_types::NodeId;

/// One narrated transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NarratedStep {
    /// 1-based step number (matching the paper's numbering style).
    pub index: usize,
    /// Human-readable event lines; empty for quiet slots (timeout
    /// countdowns and the like).
    pub lines: Vec<String>,
}

impl NarratedStep {
    /// Whether nothing noteworthy happened this slot.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.lines.is_empty()
    }
}

/// Narrates every transition of `trace` under `model`.
///
/// # Panics
///
/// Panics if the trace is not a path of `model` (every consecutive pair
/// must be connected by the transition relation).
#[must_use]
pub fn narrate_trace(model: &ClusterModel, trace: &Trace<ClusterState>) -> Vec<NarratedStep> {
    let mut steps = Vec::with_capacity(trace.transition_count());
    for (index, (prev, next)) in trace.transitions().enumerate() {
        let info = find_step_info(model, prev, next);
        steps.push(NarratedStep {
            index: index + 1,
            lines: narrate_transition(prev, next, &info),
        });
    }
    steps
}

/// Narrates and compresses: consecutive quiet slots are merged into a
/// single "n uneventful slots" line, mirroring the paper's condensed
/// storytelling.
#[must_use]
pub fn narrate_compressed(model: &ClusterModel, trace: &Trace<ClusterState>) -> Vec<String> {
    compress_steps(&narrate_trace(model, trace), &mut 1)
}

/// Shared compression core: numbered lines for noteworthy steps, quiet
/// runs merged. `number` carries the next step number across calls so a
/// lasso's stem and cycle share one numbering.
fn compress_steps(steps: &[NarratedStep], number: &mut usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut quiet_run = 0usize;
    for step in steps {
        if step.is_quiet() {
            quiet_run += 1;
            continue;
        }
        if quiet_run > 0 {
            out.push(format!(
                "({quiet_run} quiet slot(s): timeout countdown / empty slots)"
            ));
            quiet_run = 0;
        }
        let mut line = format!("{number})");
        *number += 1;
        for l in &step.lines {
            line.push(' ');
            line.push_str(l);
        }
        out.push(line);
    }
    if quiet_run > 0 {
        out.push(format!("({quiet_run} quiet slot(s))"));
    }
    out
}

/// Narrates a liveness [`Lasso`] in the same storytelling register as
/// [`narrate_compressed`]: the stem's steps first, then a marked cycle
/// section the cluster repeats forever. For a stutter lasso (the cycle
/// is a deadlocked state presented as an infinite repetition) the
/// synthetic closing self-loop is described, not narrated as a model
/// transition.
///
/// # Panics
///
/// Panics if the lasso's real transitions are not steps of `model`.
#[must_use]
pub fn narrate_lasso(model: &ClusterModel, lasso: &Lasso<ClusterState>) -> Vec<String> {
    let mut out = vec![format!(
        "lasso: stem of {} transition(s), then a cycle of {} repeating forever{}",
        lasso.stem_len(),
        lasso.cycle_len(),
        if lasso.is_stutter() { " (stutter)" } else { "" }
    )];

    // Stem and in-cycle transitions form one real path; narrate it once
    // and split the numbered story at the cycle entry.
    let path: Vec<ClusterState> = lasso.states().cloned().collect();
    let steps = if path.len() > 1 {
        narrate_trace(model, &Trace::new(path))
    } else {
        Vec::new()
    };
    let mut number = 1usize;
    out.extend(compress_steps(&steps[..lasso.stem_len()], &mut number));
    out.push("── cycle (repeats forever) ──".to_string());
    out.extend(compress_steps(&steps[lasso.stem_len()..], &mut number));
    if lasso.is_stutter() {
        out.push(
            "(deadlock: no transition is enabled; the state above repeats forever)".to_string(),
        );
    } else {
        let cycle = lasso.cycle();
        let closing = Trace::new(vec![cycle[cycle.len() - 1].clone(), cycle[0].clone()]);
        out.extend(compress_steps(&narrate_trace(model, &closing), &mut number));
        out.push("(the cycle closes: back to its first state)".to_string());
    }
    out
}

fn find_step_info(model: &ClusterModel, prev: &ClusterState, next: &ClusterState) -> StepInfo {
    model
        .expand(prev)
        .into_iter()
        .find(|(s, _)| s == next)
        .map(|(_, info)| info)
        .expect("trace states must be connected by the transition relation")
}

fn narrate_transition(prev: &ClusterState, next: &ClusterState, info: &StepInfo) -> Vec<String> {
    let mut lines = Vec::new();

    for (i, fault) in info.faults.iter().enumerate() {
        match fault {
            CouplerFaultMode::None => {}
            CouplerFaultMode::Silence => {
                lines.push(format!(
                    "The faulty star coupler on channel {i} drops the slot's traffic."
                ));
            }
            CouplerFaultMode::BadFrame => {
                lines.push(format!(
                    "The faulty star coupler on channel {i} puts noise on the bus."
                ));
            }
            CouplerFaultMode::OutOfSlot => {
                let buffered = prev.coupler_buffers()[i];
                lines.push(format!(
                    "A faulty star coupler replays the previous {} frame (id {}) on channel {i}.",
                    buffered.kind, buffered.id
                ));
            }
        }
    }

    for (i, (before, after)) in prev.nodes().iter().zip(next.nodes()).enumerate() {
        let node = NodeId::new(i as u8);
        for event in before.events(&info.view, after) {
            lines.push(describe_event(node, event));
        }
        // State changes not covered by protocol events (host decisions).
        match (before.protocol_state(), after.protocol_state()) {
            (ProtocolState::Freeze, ProtocolState::Init) => {
                lines.push(format!("Node {node} transitions into the init state."));
            }
            (ProtocolState::Active, ProtocolState::Freeze)
                if !before
                    .events(&info.view, after)
                    .contains(&ProtocolEvent::FrozeOnCliqueError) =>
            {
                lines.push(format!("The host shuts node {node} down."));
            }
            _ => {}
        }
    }

    if let (None, Some(victim)) = (prev.frozen_victim(), next.frozen_victim()) {
        lines.push(format!(
            "PROPERTY VIOLATED: node {victim} was integrated and has been forced to freeze."
        ));
    }
    lines
}

fn describe_event(node: NodeId, event: ProtocolEvent) -> String {
    match event {
        ProtocolEvent::StartedListening => {
            format!("Node {node} finishes its initialization and transitions into the listen state.")
        }
        ProtocolEvent::ListenTimeoutExpired => {
            format!("The listen timeout of node {node} expires; it enters cold start.")
        }
        ProtocolEvent::ArmedBigBang => format!(
            "Node {node} sees a first cold-start frame and ignores it (big-bang requirement)."
        ),
        ProtocolEvent::IntegratedOnColdStart { id } => format!(
            "Node {node} integrates on the cold-start frame (id {id}) and transitions into the passive state."
        ),
        ProtocolEvent::IntegratedOnCState { id } => format!(
            "Node {node} integrates on the C-state frame (id {id}) and transitions into the passive state."
        ),
        ProtocolEvent::SentColdStart => format!("Node {node} sends a cold-start frame."),
        ProtocolEvent::SentCState => format!("Node {node} sends a C-state frame."),
        ProtocolEvent::CliqueTestPassed => {
            format!("Node {node} passes the clique test and becomes active.")
        }
        ProtocolEvent::FrozeOnCliqueError => {
            format!("Node {node} freezes due to a clique avoidance error.")
        }
        ProtocolEvent::ColdStartAbandoned => {
            format!("Node {node} abandons its cold start and returns to listen.")
        }
        ProtocolEvent::HostIntervention => format!("The host demotes node {node}."),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::verify::verify_cluster;
    use tta_guardian::CouplerAuthority;
    use tta_modelcheck::Verdict;

    fn counterexample() -> (ClusterModel, Trace<ClusterState>) {
        let config = ClusterConfig {
            nodes: 3,
            ..ClusterConfig::paper(CouplerAuthority::FullShifting)
        };
        let report = verify_cluster(&config);
        assert_eq!(report.verdict, Verdict::Violated);
        (ClusterModel::new(config), report.counterexample.unwrap())
    }

    #[test]
    fn narration_covers_every_transition() {
        let (model, trace) = counterexample();
        let steps = narrate_trace(&model, &trace);
        assert_eq!(steps.len(), trace.transition_count());
        assert_eq!(steps[0].index, 1);
    }

    #[test]
    fn narration_mentions_the_replay_and_the_violation() {
        let (model, trace) = counterexample();
        let text: String = narrate_trace(&model, &trace)
            .into_iter()
            .flat_map(|s| s.lines)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("replays the previous"), "narration: {text}");
        assert!(text.contains("PROPERTY VIOLATED"), "narration: {text}");
        assert!(
            text.contains("freezes due to a clique avoidance error"),
            "narration: {text}"
        );
    }

    #[test]
    fn compressed_narration_is_shorter_and_numbered() {
        let (model, trace) = counterexample();
        let full = narrate_trace(&model, &trace);
        let compressed = narrate_compressed(&model, &trace);
        assert!(compressed.len() <= full.len() + 1);
        assert!(compressed.iter().any(|l| l.contains("replays")));
    }
}
