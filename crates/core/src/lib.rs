//! # tta-core
//!
//! The paper's primary contribution, executable: the Section 4 formal
//! model of a TTA cluster with star topology and redundant central bus
//! guardians, expressed as a [`tta_modelcheck::TransitionSystem`] and
//! checked against the Section 5 safety property.
//!
//! One transition of the model is one TDMA slot. In each slot:
//!
//! 1. every node's [`tta_protocol::Controller`] decides what it transmits
//!    (a pure function of its current state),
//! 2. the transmissions are merged onto the two redundant channels
//!    (simultaneous senders collide into a bad frame),
//! 3. each channel's star coupler relays, drops, corrupts or — if it has
//!    full-shifting authority and is faulty — *replays* traffic
//!    ([`tta_guardian::StarCoupler`] semantics), constrained by the
//!    single-fault hypothesis and the configured fault budget,
//! 4. every node observes the resulting [`tta_protocol::ChannelView`] and
//!    takes every protocol- or host-transition the paper's relation
//!    allows.
//!
//! The checked property is the paper's: *no single coupler fault may cause
//! an integrated node (active or passive) to freeze*. A monitor records
//! the first protocol-forced freeze of an integrated node; the invariant
//! is that the monitor stays clear.
//!
//! # Example: reproduce the paper's headline result
//!
//! ```
//! use tta_core::{ClusterConfig, verify_cluster, Verdict};
//! use tta_guardian::CouplerAuthority;
//!
//! // Guardians without full-frame buffering satisfy the property...
//! let safe = verify_cluster(&ClusterConfig::paper(CouplerAuthority::SmallShifting));
//! assert_eq!(safe.verdict, Verdict::Holds);
//!
//! // ...full-frame buffering breaks it (shortest counterexample found).
//! let broken = verify_cluster(&ClusterConfig::paper(CouplerAuthority::FullShifting));
//! assert_eq!(broken.verdict, Verdict::Violated);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod analyze;
mod compact;
mod config;
mod model;
mod narrate;
mod state;
mod verify;

pub use analyze::{analyze_reachable, ReachableSummary};
pub use compact::{ClusterCodec, CompactState};
pub use config::{ClusterConfig, FaultBudget};
pub use model::{ClusterModel, StepInfo, REPLAY_COUNTER_CAP};
pub use narrate::{narrate_compressed, narrate_lasso, narrate_trace, NarratedStep};
pub use state::ClusterState;
pub use tta_liveness::{FairAction, Lasso, LivenessStats, Property};
pub use tta_modelcheck::Verdict;
pub use verify::{
    cluster_startup_fairness, find_startup_witness, node_integration_property,
    node_recovery_property, verify_cluster, verify_cluster_liveness,
    verify_cluster_liveness_threaded, verify_cluster_liveness_with, verify_cluster_recovery,
    verify_cluster_recovery_with, verify_cluster_with, CheckStrategy, LivenessReport,
    VerificationReport,
};
