//! One-call verification of the paper's property.

use crate::compact::ClusterCodec;
use crate::config::ClusterConfig;
use crate::model::ClusterModel;
use crate::state::ClusterState;
use tta_modelcheck::{
    parallel::ParallelExplorer, BoundedChecker, BoundedVerdict, ExploreStats, Explorer, Trace,
    Verdict,
};

/// Which exploration engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckStrategy {
    /// Sequential breadth-first search (shortest counterexamples; the
    /// default).
    Bfs,
    /// Frontier-parallel BFS with the given worker count (0 = auto).
    ParallelBfs {
        /// Worker threads (0 = available parallelism).
        threads: usize,
    },
    /// Depth-bounded search: "holds" verdicts are valid only up to the
    /// bound.
    Bounded {
        /// Maximum path length in transitions.
        depth: u64,
    },
}

/// Result of verifying a cluster configuration.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// Configuration that was checked.
    pub config: ClusterConfig,
    /// Overall verdict for the paper's property.
    pub verdict: Verdict,
    /// Shortest (for BFS strategies) path to a violation, if one exists.
    pub counterexample: Option<Trace<ClusterState>>,
    /// Exploration statistics.
    pub stats: ExploreStats,
}

impl VerificationReport {
    /// Length of the counterexample in transitions, if any.
    #[must_use]
    pub fn counterexample_len(&self) -> Option<usize> {
        self.counterexample.as_ref().map(Trace::transition_count)
    }
}

/// Verifies the paper's property — *no single coupler fault freezes an
/// integrated node* — over the full reachable state space with sequential
/// BFS.
#[must_use]
pub fn verify_cluster(config: &ClusterConfig) -> VerificationReport {
    verify_cluster_with(config, CheckStrategy::Bfs)
}

/// Verifies with an explicit strategy.
#[must_use]
pub fn verify_cluster_with(config: &ClusterConfig, strategy: CheckStrategy) -> VerificationReport {
    let model = ClusterModel::new(*config);
    // Both BFS engines intern visited states through the bit-packing
    // codec: 72 flat bytes per state, no heap allocation per visit.
    let codec = ClusterCodec::new(config);
    let property = |s: &ClusterState| s.property_holds();
    match strategy {
        CheckStrategy::Bfs => {
            let outcome = Explorer::new().check_with_codec(&model, &codec, property);
            VerificationReport {
                config: *config,
                verdict: outcome.verdict,
                counterexample: outcome.counterexample,
                stats: outcome.stats,
            }
        }
        CheckStrategy::ParallelBfs { threads } => {
            let explorer = if threads == 0 {
                ParallelExplorer::new()
            } else {
                ParallelExplorer::new().threads(threads)
            };
            let outcome = explorer.check_with_codec(&model, &codec, property);
            VerificationReport {
                config: *config,
                verdict: outcome.verdict,
                counterexample: outcome.counterexample,
                stats: outcome.stats,
            }
        }
        CheckStrategy::Bounded { depth } => {
            let outcome = BoundedChecker::new(depth).check(&model, property);
            VerificationReport {
                config: *config,
                verdict: match outcome.verdict {
                    BoundedVerdict::Violated => Verdict::Violated,
                    // A bounded "holds" is not a proof: report it as a
                    // budget-limited result.
                    BoundedVerdict::HoldsUpToBound => Verdict::BudgetExhausted,
                },
                counterexample: outcome.counterexample,
                stats: outcome.stats,
            }
        }
    }
}

/// Finds a shortest execution that brings **every** node to the `active`
/// state — a liveness *witness* complementing the safety property.
///
/// The paper's property is pure safety ("no integrated node freezes"); a
/// model in which the cluster never came up would satisfy it vacuously.
/// This query proves non-vacuity: under every coupler authority the
/// cluster can fully start. Returns the witness trace, or `None` if no
/// reachable state has all nodes active (which would indicate a modeling
/// bug).
#[must_use]
pub fn find_startup_witness(config: &ClusterConfig) -> Option<tta_modelcheck::Trace<ClusterState>> {
    let model = ClusterModel::new(*config);
    Explorer::new().find(&model, |s: &ClusterState| {
        s.nodes()
            .iter()
            .all(|n| n.protocol_state() == tta_protocol::ProtocolState::Active)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_guardian::CouplerAuthority;

    // The headline verification results (paper Section 5.2) are exercised
    // in the crate's integration tests; here we test the harness itself on
    // the smallest cluster to stay fast.
    fn small(authority: CouplerAuthority) -> ClusterConfig {
        ClusterConfig {
            nodes: 2,
            ..ClusterConfig::paper(authority)
        }
    }

    #[test]
    fn small_passive_cluster_holds() {
        let report = verify_cluster(&small(CouplerAuthority::Passive));
        assert_eq!(report.verdict, Verdict::Holds);
        assert!(report.counterexample.is_none());
        assert!(report.stats.states_explored > 0);
    }

    #[test]
    fn strategies_agree_on_small_models() {
        let config = small(CouplerAuthority::Passive);
        let bfs = verify_cluster_with(&config, CheckStrategy::Bfs);
        let par = verify_cluster_with(&config, CheckStrategy::ParallelBfs { threads: 2 });
        assert_eq!(bfs.verdict, par.verdict);
        assert_eq!(bfs.stats.states_explored, par.stats.states_explored);
    }

    #[test]
    fn bounded_strategy_reports_budget_semantics() {
        let config = small(CouplerAuthority::Passive);
        let bounded = verify_cluster_with(&config, CheckStrategy::Bounded { depth: 3 });
        assert_eq!(bounded.verdict, Verdict::BudgetExhausted);
    }
}
