//! One-call verification of the paper's property.

use crate::compact::ClusterCodec;
use crate::config::ClusterConfig;
use crate::model::ClusterModel;
use crate::state::ClusterState;
use tta_liveness::{FairAction, FairGraph, Lasso, LivenessStats, Property};
use tta_modelcheck::{
    parallel::ParallelExplorer, BoundedChecker, BoundedVerdict, ExploreStats, Explorer, Trace,
    Verdict, DEFAULT_MAX_STATES,
};
use tta_protocol::ProtocolState;
use tta_types::NodeId;

/// Which exploration engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckStrategy {
    /// Sequential breadth-first search (shortest counterexamples; the
    /// default).
    Bfs,
    /// Frontier-parallel BFS with the given worker count (0 = auto).
    ParallelBfs {
        /// Worker threads (0 = available parallelism).
        threads: usize,
    },
    /// Depth-bounded search: "holds" verdicts are valid only up to the
    /// bound.
    Bounded {
        /// Maximum path length in transitions.
        depth: u64,
    },
}

/// Result of verifying a cluster configuration.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// Configuration that was checked.
    pub config: ClusterConfig,
    /// Overall verdict for the paper's property.
    pub verdict: Verdict,
    /// Shortest (for BFS strategies) path to a violation, if one exists.
    pub counterexample: Option<Trace<ClusterState>>,
    /// Exploration statistics.
    pub stats: ExploreStats,
}

impl VerificationReport {
    /// Length of the counterexample in transitions, if any.
    #[must_use]
    pub fn counterexample_len(&self) -> Option<usize> {
        self.counterexample.as_ref().map(Trace::transition_count)
    }
}

/// Verifies the paper's property — *no single coupler fault freezes an
/// integrated node* — over the full reachable state space with sequential
/// BFS.
#[must_use]
pub fn verify_cluster(config: &ClusterConfig) -> VerificationReport {
    verify_cluster_with(config, CheckStrategy::Bfs)
}

/// Verifies with an explicit strategy.
#[must_use]
pub fn verify_cluster_with(config: &ClusterConfig, strategy: CheckStrategy) -> VerificationReport {
    let model = ClusterModel::new(*config);
    // Both BFS engines intern visited states through the bit-packing
    // codec, delta-encoded against BFS parents: a step touches one or
    // two of the nine packed words, so the visited set stores sparse
    // xor-deltas (plus periodic keyframes) instead of 72 flat bytes per
    // state — still zero heap allocation per visit.
    let codec = ClusterCodec::new(config);
    let property = |s: &ClusterState| s.property_holds();
    match strategy {
        CheckStrategy::Bfs => {
            let outcome = Explorer::new().check_with_delta_codec(&model, &codec, property);
            VerificationReport {
                config: *config,
                verdict: outcome.verdict,
                counterexample: outcome.counterexample,
                stats: outcome.stats,
            }
        }
        CheckStrategy::ParallelBfs { threads } => {
            let explorer = if threads == 0 {
                ParallelExplorer::new()
            } else {
                ParallelExplorer::new().threads(threads)
            };
            let outcome = explorer.check_with_delta_codec(&model, &codec, property);
            VerificationReport {
                config: *config,
                verdict: outcome.verdict,
                counterexample: outcome.counterexample,
                stats: outcome.stats,
            }
        }
        CheckStrategy::Bounded { depth } => {
            let outcome = BoundedChecker::new(depth).check(&model, property);
            VerificationReport {
                config: *config,
                verdict: match outcome.verdict {
                    BoundedVerdict::Violated => Verdict::Violated,
                    // A bounded "holds" is not a proof: report it as a
                    // budget-limited result.
                    BoundedVerdict::HoldsUpToBound => Verdict::BudgetExhausted,
                },
                counterexample: outcome.counterexample,
                stats: outcome.stats,
            }
        }
    }
}

/// Finds a shortest execution that brings **every** node to the `active`
/// state — a liveness *witness* complementing the safety property.
///
/// The paper's property is pure safety ("no integrated node freezes"); a
/// model in which the cluster never came up would satisfy it vacuously.
/// This query proves non-vacuity: under every coupler authority the
/// cluster can fully start. Returns the witness trace, or `None` if no
/// reachable state has all nodes active (which would indicate a modeling
/// bug).
#[must_use]
pub fn find_startup_witness(config: &ClusterConfig) -> Option<tta_modelcheck::Trace<ClusterState>> {
    let model = ClusterModel::new(*config);
    Explorer::new().find(&model, |s: &ClusterState| {
        s.nodes()
            .iter()
            .all(|n| n.protocol_state() == tta_protocol::ProtocolState::Active)
    })
}

/// Result of verifying the cluster's *liveness* property — every
/// correct node's startup leads to integration — under weak fairness.
#[derive(Debug, Clone)]
pub struct LivenessReport {
    /// Configuration that was checked.
    pub config: ClusterConfig,
    /// Overall verdict: `Violated` if any node's leads-to fails,
    /// `BudgetExhausted` if the graph was truncated with no violation
    /// found, `Holds` otherwise.
    pub verdict: Verdict,
    /// Per-node verdicts for `listening(i) ~> integrated(i)`, in node
    /// order.
    pub per_node: Vec<Verdict>,
    /// The first node whose property is violated, if any.
    pub violating_node: Option<NodeId>,
    /// The violating execution for that node: a finite stem plus a
    /// cycle the cluster repeats forever.
    pub lasso: Option<Lasso<ClusterState>>,
    /// Graph and analysis statistics (check time and SCC counts summed
    /// over the per-node properties; the graph is built once).
    pub stats: LivenessStats,
}

/// The weak-fairness constraints the cluster liveness check runs under:
/// one *startup progress* action per node, taken when the node's host
/// powers it up (`freeze → init`) or its initialization completes
/// (`init → listen`).
///
/// These are the only stuttering choices the checking host model has,
/// so weak fairness on them says exactly "a node allowed to start
/// eventually does" — without it, "node 2 never leaves freeze" would be
/// a (vacuous) counterexample to every startup-liveness claim. All
/// later transitions (listen, cold start, clique tests) are
/// protocol-forced and need no fairness.
#[must_use]
pub fn cluster_startup_fairness(nodes: usize) -> Vec<FairAction<ClusterState>> {
    (0..nodes)
        .map(|i| {
            FairAction::new(
                format!("startup progress(node {i})"),
                move |before: &ClusterState, after: &ClusterState| {
                    matches!(
                        (
                            before.nodes()[i].protocol_state(),
                            after.nodes()[i].protocol_state(),
                        ),
                        (ProtocolState::Freeze, ProtocolState::Init)
                            | (ProtocolState::Init, ProtocolState::Listen)
                    )
                },
            )
        })
        .collect()
}

/// The per-node integration-liveness property:
/// `listening(node) ~> integrated(node)` — whenever the node is in the
/// listen state, it eventually *attains active membership*.
///
/// "Integrated" is deliberately `active`, not `active ∨ passive`: in
/// this model `passive` is a transient staging state (an integrated
/// passive node is promoted at its next own slot or frozen by the
/// clique test, within one round), and the paper's freeze-out victim
/// *does* pass through passive for a few slots before the clique error
/// freezes it. Counting that transient visit as integration would
/// discharge the leads-to obligation and mask exactly the denial of
/// lasting integration the paper describes.
#[must_use]
pub fn node_integration_property(node: usize) -> Property<ClusterState> {
    Property::leads_to(
        format!("node {node} listening"),
        move |s: &ClusterState| s.nodes()[node].protocol_state() == ProtocolState::Listen,
        format!("node {node} integrated"),
        move |s: &ClusterState| s.nodes()[node].protocol_state() == ProtocolState::Active,
    )
}

/// The per-node recovery property:
/// `frozen(node) ~> integrated(node)` — whenever the node is frozen,
/// it eventually attains active membership again.
///
/// Checked under the same weak fairness as the startup check
/// ([`cluster_startup_fairness`]): its `freeze → init` actions are
/// exactly *restart fairness* — a frozen host that is allowed to power
/// its controller back up eventually does. Every node starts frozen, so
/// this subsumes the integration property; it additionally demands that
/// any *later* freeze leads back to membership. In this model a node
/// frozen after integration (a freeze-out victim) has no restart
/// transition at all — post-integration freeze is absorbing, matching
/// the simulator's `RestartPolicy::Never` — so a reachable freeze-out
/// is a fair stutter cycle that violates recovery, and a full-shifting
/// coupler's replay starvation violates it already from the initial
/// frozen state.
#[must_use]
pub fn node_recovery_property(node: usize) -> Property<ClusterState> {
    Property::leads_to(
        format!("node {node} frozen"),
        move |s: &ClusterState| s.nodes()[node].protocol_state() == ProtocolState::Freeze,
        format!("node {node} integrated"),
        move |s: &ClusterState| s.nodes()[node].protocol_state() == ProtocolState::Active,
    )
}

/// Verifies integration liveness — *every correct node's listening
/// leads to integration* — for all nodes of the configured cluster,
/// under the weak startup fairness of [`cluster_startup_fairness`].
///
/// The reachable graph is built once (interned through the same
/// bit-packing codec as the safety checker) and shared by the per-node
/// leads-to checks. Unlike the safety check, the graph must cover the
/// *full* reachable space — cycles can hide anywhere — so expect this
/// to visit at least as many states as a `Holds` safety run.
#[must_use]
pub fn verify_cluster_liveness(config: &ClusterConfig) -> LivenessReport {
    verify_cluster_liveness_with(config, DEFAULT_MAX_STATES)
}

/// [`verify_cluster_liveness`] with an explicit state budget. A
/// violation found on a truncated graph is still sound; a clean pass is
/// downgraded to `BudgetExhausted`.
#[must_use]
pub fn verify_cluster_liveness_with(config: &ClusterConfig, max_states: u64) -> LivenessReport {
    verify_each_node_with(config, max_states, 1, node_integration_property)
}

/// [`verify_cluster_liveness_with`] building the fair graph with
/// `threads` worker threads ([`FairGraph::build_with_threads`]); the
/// graph — and therefore every verdict and lasso — is bit-identical to
/// the sequential build at any thread count.
#[must_use]
pub fn verify_cluster_liveness_threaded(
    config: &ClusterConfig,
    max_states: u64,
    threads: usize,
) -> LivenessReport {
    verify_each_node_with(config, max_states, threads, node_integration_property)
}

/// Verifies recovery liveness — *every node's freeze leads back to
/// integration* ([`node_recovery_property`]) — for all nodes of the
/// configured cluster, under restart fairness
/// ([`cluster_startup_fairness`]).
#[must_use]
pub fn verify_cluster_recovery(config: &ClusterConfig) -> LivenessReport {
    verify_cluster_recovery_with(config, DEFAULT_MAX_STATES)
}

/// [`verify_cluster_recovery`] with an explicit state budget. A
/// violation found on a truncated graph is still sound; a clean pass is
/// downgraded to `BudgetExhausted`.
#[must_use]
pub fn verify_cluster_recovery_with(config: &ClusterConfig, max_states: u64) -> LivenessReport {
    verify_each_node_with(config, max_states, 1, node_recovery_property)
}

/// Shared engine for the per-node leads-to checks: builds the fair
/// reachable graph once and checks `property_for(node)` for each node.
fn verify_each_node_with(
    config: &ClusterConfig,
    max_states: u64,
    threads: usize,
    property_for: impl Fn(usize) -> Property<ClusterState>,
) -> LivenessReport {
    let model = ClusterModel::new(*config);
    let codec = ClusterCodec::new(config);
    let fairness = cluster_startup_fairness(config.nodes);
    let graph = FairGraph::build_with_threads(&model, &codec, &fairness, max_states, threads);

    let mut per_node = Vec::with_capacity(config.nodes);
    let mut violating_node = None;
    let mut lasso = None;
    let mut stats: Option<LivenessStats> = None;
    for node in 0..config.nodes {
        let outcome = graph.check(&property_for(node));
        if outcome.verdict == Verdict::Violated && violating_node.is_none() {
            violating_node = Some(NodeId::new(node as u8));
            lasso = outcome.lasso;
        }
        per_node.push(outcome.verdict);
        stats = Some(match stats {
            None => outcome.stats,
            Some(mut acc) => {
                acc.check_time += outcome.stats.check_time;
                acc.sccs_examined += outcome.stats.sccs_examined;
                acc
            }
        });
    }

    let verdict = if per_node.contains(&Verdict::Violated) {
        Verdict::Violated
    } else if per_node.contains(&Verdict::BudgetExhausted) {
        Verdict::BudgetExhausted
    } else {
        Verdict::Holds
    };
    LivenessReport {
        config: *config,
        verdict,
        per_node,
        violating_node,
        lasso,
        stats: stats.expect("a cluster has at least one node"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_guardian::CouplerAuthority;

    // The headline verification results (paper Section 5.2) are exercised
    // in the crate's integration tests; here we test the harness itself on
    // the smallest cluster to stay fast.
    fn small(authority: CouplerAuthority) -> ClusterConfig {
        ClusterConfig {
            nodes: 2,
            ..ClusterConfig::paper(authority)
        }
    }

    #[test]
    fn small_passive_cluster_holds() {
        let report = verify_cluster(&small(CouplerAuthority::Passive));
        assert_eq!(report.verdict, Verdict::Holds);
        assert!(report.counterexample.is_none());
        assert!(report.stats.states_explored > 0);
    }

    #[test]
    fn strategies_agree_on_small_models() {
        let config = small(CouplerAuthority::Passive);
        let bfs = verify_cluster_with(&config, CheckStrategy::Bfs);
        let par = verify_cluster_with(&config, CheckStrategy::ParallelBfs { threads: 2 });
        assert_eq!(bfs.verdict, par.verdict);
        assert_eq!(bfs.stats.states_explored, par.stats.states_explored);
    }

    #[test]
    fn bounded_strategy_reports_budget_semantics() {
        let config = small(CouplerAuthority::Passive);
        let bounded = verify_cluster_with(&config, CheckStrategy::Bounded { depth: 3 });
        assert_eq!(bounded.verdict, Verdict::BudgetExhausted);
    }
}
