//! Cluster model configuration.

use serde::{Deserialize, Serialize};
use std::fmt;
use tta_guardian::CouplerAuthority;
use tta_protocol::HostChoices;

/// How many out-of-slot (replay) errors the faulty coupler may commit
/// along one execution — the constraint the paper adds to shape its
/// counterexample traces.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum FaultBudget {
    /// Unlimited replays (the paper's first run: the shortest trace then
    /// contains four out-of-slot errors).
    #[default]
    Unlimited,
    /// At most this many replays (the paper uses 1 for both narrated
    /// traces).
    AtMost(u8),
}

impl FaultBudget {
    /// Whether another replay is allowed after `used` so far.
    #[must_use]
    pub fn allows(self, used: u8) -> bool {
        match self {
            FaultBudget::Unlimited => true,
            FaultBudget::AtMost(n) => used < n,
        }
    }
}

impl fmt::Display for FaultBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultBudget::Unlimited => write!(f, "unlimited"),
            FaultBudget::AtMost(n) => write!(f, "≤{n}"),
        }
    }
}

/// Configuration of the Section 4 cluster model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of nodes (the paper models four, the Byzantine minimum).
    pub nodes: usize,
    /// Authority level of both star couplers.
    pub authority: CouplerAuthority,
    /// Which host nondeterminism the relation includes.
    pub host_choices: HostChoices,
    /// Replay budget for the faulty coupler.
    pub out_of_slot_budget: FaultBudget,
    /// Prohibit replaying *cold-start* frames (the constraint that turns
    /// the paper's first trace into its second).
    pub forbid_cold_start_replay: bool,
    /// Exploit channel symmetry: only coupler 0 may fail. Sound for this
    /// model (channels are interchangeable and the property is symmetric
    /// under swapping them); halves the branching. Disable to model both.
    pub symmetric_fault_reduction: bool,
}

impl ClusterConfig {
    /// The paper's configuration for a given coupler authority: four
    /// nodes, staggered startup, no host failures, unlimited passive
    /// faults, unlimited replays.
    #[must_use]
    pub fn paper(authority: CouplerAuthority) -> Self {
        ClusterConfig {
            nodes: 4,
            authority,
            host_choices: HostChoices::checking(),
            out_of_slot_budget: FaultBudget::Unlimited,
            forbid_cold_start_replay: false,
            symmetric_fault_reduction: true,
        }
    }

    /// The configuration behind the paper's first narrated trace:
    /// full shifting, at most one out-of-slot error.
    #[must_use]
    pub fn paper_trace_cold_start() -> Self {
        ClusterConfig {
            out_of_slot_budget: FaultBudget::AtMost(1),
            ..Self::paper(CouplerAuthority::FullShifting)
        }
    }

    /// The configuration behind the paper's second narrated trace:
    /// additionally prohibits duplicating cold-start frames, forcing the
    /// counterexample through a replayed C-state frame.
    #[must_use]
    pub fn paper_trace_cstate() -> Self {
        ClusterConfig {
            forbid_cold_start_replay: true,
            ..Self::paper_trace_cold_start()
        }
    }

    /// Slots per TDMA round (identity schedule: one slot per node).
    #[must_use]
    pub fn slots_per_round(&self) -> u16 {
        self.nodes as u16
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 or more than 16 nodes are configured (the
    /// packed model state supports 16; the paper uses 4).
    pub fn validate(&self) {
        assert!(
            (2..=16).contains(&self.nodes),
            "cluster model supports 2..=16 nodes, got {}",
            self.nodes
        );
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::paper(CouplerAuthority::FullShifting)
    }
}

impl fmt::Display for ClusterConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} couplers, replay budget {}{}",
            self.nodes,
            self.authority,
            self.out_of_slot_budget,
            if self.forbid_cold_start_replay {
                ", no cold-start duplication"
            } else {
                ""
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_gates_replays() {
        assert!(FaultBudget::Unlimited.allows(200));
        assert!(FaultBudget::AtMost(1).allows(0));
        assert!(!FaultBudget::AtMost(1).allows(1));
        assert!(!FaultBudget::AtMost(0).allows(0));
    }

    #[test]
    fn paper_config_is_four_nodes() {
        let c = ClusterConfig::paper(CouplerAuthority::Passive);
        assert_eq!(c.nodes, 4);
        assert_eq!(c.slots_per_round(), 4);
        c.validate();
    }

    #[test]
    fn trace_configs_layer_constraints() {
        let t1 = ClusterConfig::paper_trace_cold_start();
        assert_eq!(t1.out_of_slot_budget, FaultBudget::AtMost(1));
        assert!(!t1.forbid_cold_start_replay);
        let t2 = ClusterConfig::paper_trace_cstate();
        assert_eq!(t2.out_of_slot_budget, FaultBudget::AtMost(1));
        assert!(t2.forbid_cold_start_replay);
    }

    #[test]
    #[should_panic(expected = "2..=16")]
    fn tiny_clusters_are_rejected() {
        ClusterConfig {
            nodes: 1,
            ..ClusterConfig::default()
        }
        .validate();
    }

    #[test]
    fn display_summarizes() {
        let s = ClusterConfig::paper_trace_cstate().to_string();
        assert!(s.contains("full shifting") && s.contains("≤1") && s.contains("cold-start"));
    }
}
