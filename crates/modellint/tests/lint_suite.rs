//! Integration tests for the lint engine against the shipped scenario
//! corpus: the seeded vacuous fixture must fire a witness-backed ML01
//! whose JSON rendering is pinned as a golden file, the five shipped
//! scenarios must lint clean under `--deny warnings`, and the rendered
//! output must be byte-identical for every `--threads` value.
//!
//! Regenerate the golden JSON deliberately with `TTA_BLESS=1` after
//! confirming the new diagnostics are the intended ones.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;
use tta_conformance::compare_golden;
use tta_modellint::{lint, AnalysisOptions, Gate, LintOptions};

/// The repository root, canonicalized so scenario paths (and therefore
/// diagnostic targets) are absolute and can be rewritten to the stable
/// `$REPO` token before golden comparison.
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

fn deny_warnings() -> Gate {
    Gate {
        deny_warnings: true,
        ..Gate::default()
    }
}

/// Full JSON rendering of a lint run — diagnostics, summary, and
/// per-target evidence — with the absolute repo root replaced by
/// `$REPO` so the output is machine-independent.
fn render_run(paths: &[PathBuf], opts: &LintOptions, gate: &Gate) -> String {
    let run = lint(paths, opts);
    let mut out = run.report.render_json(gate);
    for evidence in &run.evidence {
        out.push_str(&evidence.render_json());
        out.push('\n');
    }
    out.replace(&repo_root().display().to_string(), "$REPO")
}

#[test]
fn vacuous_fixture_matches_golden_json() {
    let fixture = repo_root().join("scenarios/lint_fixtures/vacuous.toml");
    let gate = deny_warnings();
    let rendered = render_run(&[fixture], &LintOptions::default(), &gate);
    let golden =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/vacuous_diagnostics.json");
    if let Err(drift) = compare_golden(&golden, &rendered) {
        panic!("{drift}");
    }
}

#[test]
fn vacuous_fixture_is_denied_with_a_witness_backed_ml01() {
    let fixture = repo_root().join("scenarios/lint_fixtures/vacuous.toml");
    let gate = deny_warnings();
    let run = lint(&[fixture], &LintOptions::default());
    let denied: Vec<_> = run.report.denied(&gate).collect();
    assert!(
        denied.iter().any(|d| d.code.id == "ML01"),
        "the seeded vacuous fixture must be denied via ML01, got: {denied:?}"
    );
    let ml01 = denied.iter().find(|d| d.code.id == "ML01").unwrap();
    assert!(
        ml01.message.contains("0 of"),
        "ML01 must carry an exhaustive witness count, got: {}",
        ml01.message
    );
    // The witness search covered the whole reachable space, so this is
    // a proof of vacuity, not a budget artifact.
    let evidence = &run.evidence[0];
    assert!(!evidence.truncated, "fixture space must explore fully");
}

#[test]
fn shipped_scenarios_lint_clean_under_deny_warnings() {
    // A reduced state budget keeps this test quick in debug builds;
    // truncation only ever *downgrades* findings (never invents
    // warnings), so a clean verdict here is meaningful and the full
    // release-mode run in CI confirms the untruncated result.
    let opts = LintOptions {
        analysis: AnalysisOptions {
            max_states: 1 << 15,
        },
        ..LintOptions::default()
    };
    let gate = deny_warnings();
    let run = lint(&[repo_root().join("scenarios")], &opts);
    let denied: Vec<_> = run.report.denied(&gate).collect();
    assert!(
        denied.is_empty(),
        "shipped scenarios must lint clean, got: {denied:?}"
    );
    assert_eq!(
        run.evidence.len(),
        8,
        "eight shipped scenarios analyzed (five hand-written + three fuzzer-pinned)"
    );
}

/// Baseline single-threaded rendering for the determinism proptest,
/// computed once.
fn determinism_baseline() -> &'static (Vec<PathBuf>, LintOptions, Gate, String) {
    static BASELINE: OnceLock<(Vec<PathBuf>, LintOptions, Gate, String)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        // Nine targets (eight shipped scenarios + the vacuous fixture)
        // so the worker pool has scheduling freedom to get wrong.
        let paths = vec![
            repo_root().join("scenarios"),
            repo_root().join("scenarios/lint_fixtures/vacuous.toml"),
        ];
        let opts = LintOptions {
            analysis: AnalysisOptions {
                max_states: 1 << 10,
            },
            threads: 1,
            ..LintOptions::default()
        };
        let gate = deny_warnings();
        let rendered = render_run(&paths, &opts, &gate);
        (paths, opts, gate, rendered)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The engine reassembles per-target results in target order, so
    /// the rendered report must be byte-identical for every thread
    /// count — the property `--threads` documents.
    #[test]
    fn lint_output_is_deterministic_across_threads(threads in 1usize..=6) {
        let (paths, base_opts, gate, expected) = determinism_baseline();
        let opts = LintOptions {
            threads,
            ..base_opts.clone()
        };
        let rendered = render_run(paths, &opts, gate);
        prop_assert_eq!(&rendered, expected, "threads={} diverged", threads);
    }
}
