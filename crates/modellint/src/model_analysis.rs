//! Analyses that need the reachable space: vacuity detection (ML01–03,
//! ML34), fairness usage (ML04) and model coverage (ML10/ML11).
//!
//! The reachable graph is built **once** per lint target through the
//! same interning stack the checkers use ([`FairGraph`] over
//! [`ClusterCodec`]), then every question is answered by passes over
//! the kept states:
//!
//! * **Vacuity** is antecedent-enabledness counting: a leads-to
//!   `p ~> q` holds vacuously iff no reachable state satisfies `p`.
//!   The search is exhaustive over the kept space, so on an
//!   untruncated graph a zero count is a proof of vacuity and a
//!   non-zero count yields a concrete witness (the BFS stem to the
//!   first satisfying state). On a truncated graph a zero count is
//!   only an absence of evidence, and every zero-count finding is
//!   downgraded to a note.
//! * **Fairness usage** reuses the per-edge action labels the graph
//!   already carries ([`FairGraph::action_usage`]): a constraint
//!   labeling zero edges constrains no cycle.
//! * **Coverage** re-expands every kept state through
//!   [`ClusterModel::for_each_step`] and tallies which coupler fault
//!   modes actually occur, per authority level — the evidence behind a
//!   restrained-authority "Holds" row.

use crate::catalog;
use crate::diag::{Diagnostic, Severity};
use crate::predicates;
use tta_conformance::{Expectations, PropertyKind, PropertySpec};
use tta_core::{cluster_startup_fairness, ClusterCodec, ClusterConfig, ClusterModel, FaultBudget};
use tta_guardian::CouplerFaultMode;
use tta_liveness::FairGraph;

/// Tunables for the reachable-space analyses.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOptions {
    /// State budget for the graph build. The restrained-authority
    /// spaces (~40k states at 4 nodes) fit comfortably; a full-shifting
    /// space may truncate, which soundly downgrades zero-count findings
    /// to notes.
    pub max_states: u64,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            max_states: 1 << 20,
        }
    }
}

/// Per-target evidence the analyses gather along the way: the numbers
/// behind the non-vacuity claims in EXPERIMENTS.md S6. Deterministic
/// (state counts and BFS depths, never timings).
#[derive(Debug, Clone)]
pub struct TargetEvidence {
    /// The lint target this evidence belongs to.
    pub target: String,
    /// Kept reachable states.
    pub states: usize,
    /// Stored edges (stutter loops included).
    pub edges: usize,
    /// Whether the state budget truncated the space.
    pub truncated: bool,
    /// `(antecedent name, satisfying-state count, BFS depth of first
    /// witness)` for every antecedent that was vacuity-checked. Depth
    /// is `None` when the count is zero.
    pub antecedents: Vec<(String, u64, Option<usize>)>,
    /// Steps taken per coupler fault mode over the explored expansion,
    /// in [`CouplerFaultMode::all`] order (both channels tallied).
    pub fault_steps: [u64; 4],
}

impl TargetEvidence {
    /// Renders the evidence as one deterministic JSON line.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"evidence\":{{\"target\":\"{}\",\"states\":{},\"edges\":{},\"truncated\":{}",
            self.target, self.states, self.edges, self.truncated
        );
        out.push_str(",\"antecedents\":[");
        for (i, (name, count, depth)) in self.antecedents.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"name\":\"{name}\",\"satisfied\":{count}"));
            match depth {
                Some(d) => out.push_str(&format!(",\"first_witness_depth\":{d}}}")),
                None => out.push_str(",\"first_witness_depth\":null}"),
            }
        }
        out.push_str("],\"fault_steps\":{");
        for (i, (mode, count)) in CouplerFaultMode::all()
            .iter()
            .zip(self.fault_steps)
            .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{count}", mode_key(*mode)));
        }
        out.push_str("}}}");
        out
    }
}

fn mode_key(mode: CouplerFaultMode) -> &'static str {
    match mode {
        CouplerFaultMode::None => "none",
        CouplerFaultMode::Silence => "silence",
        CouplerFaultMode::BadFrame => "bad_frame",
        CouplerFaultMode::OutOfSlot => "out_of_slot",
    }
}

fn mode_index(mode: CouplerFaultMode) -> usize {
    CouplerFaultMode::all()
        .iter()
        .position(|m| *m == mode)
        .expect("mode in all()")
}

/// One predicate's tally over the kept states.
struct Tally {
    name: String,
    predicate: predicates::Predicate,
    count: u64,
    first: Option<u32>,
}

impl Tally {
    fn new(name: impl Into<String>, predicate: predicates::Predicate) -> Self {
        Tally {
            name: name.into(),
            predicate,
            count: 0,
            first: None,
        }
    }
}

/// Runs every reachable-space analysis for one cluster configuration.
///
/// `properties` are the scenario's declared `[[property]]` sections;
/// `expect` carries the liveness/recovery expectations whose underlying
/// predicates are checked for reachability (ML34). Both may be empty —
/// the built-in safety-guard vacuity check and the coverage lints run
/// regardless.
#[must_use]
pub fn analyze_config(
    target: &str,
    config: &ClusterConfig,
    properties: &[PropertySpec],
    expect: Option<&Expectations>,
    opts: &AnalysisOptions,
) -> (Vec<Diagnostic>, TargetEvidence) {
    let mut diags = Vec::new();
    let nodes = config.nodes;
    let model = ClusterModel::new(*config);
    let codec = ClusterCodec::new(config);
    let fairness = cluster_startup_fairness(nodes);
    let graph = FairGraph::build(&model, &codec, &fairness, opts.max_states);
    let states = graph.state_count();
    let truncated = graph.is_truncated();

    // Severity for "satisfied by zero states" findings: a proof on the
    // full space, only an absence of evidence on a truncated one.
    let zero_sev = |default: Severity| if truncated { Severity::Note } else { default };
    let space_note = || {
        if truncated {
            format!(
                "search truncated at the {states}-state budget — the predicate may \
                 be satisfiable beyond it"
            )
        } else {
            format!(
                "search exhausted the full reachable space ({states} states, {} edges)",
                graph.edge_count()
            )
        }
    };

    // ── assemble every predicate tally needed, then one pass ───────
    // Built-in: the paper's safety property only bites once a node is
    // integrated; `any_integrated` is its effective guard.
    let mut tallies: Vec<Tally> = Vec::new();
    let guard = Tally::new(
        "any_integrated",
        predicates::resolve("any_integrated", nodes).expect("catalog name"),
    );
    tallies.push(guard);
    // ML34: the antecedents underlying expect.liveness / expect.recovery
    // (per-node `listening` / `frozen`, see tta-core::verify).
    let check_liveness = expect.is_some_and(|e| e.liveness.is_some());
    let check_recovery = expect.is_some_and(|e| e.recovery.is_some());
    let liveness_base = tallies.len();
    if check_liveness {
        for i in 0..nodes {
            tallies.push(Tally::new(
                format!("node {i} listening"),
                predicates::resolve(&format!("node{i}_listening"), nodes).expect("catalog name"),
            ));
        }
    }
    let recovery_base = tallies.len();
    if check_recovery {
        for i in 0..nodes {
            tallies.push(Tally::new(
                format!("node {i} frozen"),
                predicates::resolve(&format!("node{i}_frozen"), nodes).expect("catalog name"),
            ));
        }
    }
    // Declared [[property]] predicates. Unknown names are ML22 errors;
    // known ones get a (spec index, role) → tally index mapping.
    #[derive(Clone, Copy)]
    struct SpecTallies {
        main: Option<usize>,
        consequent: Option<usize>,
    }
    let mut spec_tallies: Vec<SpecTallies> = Vec::new();
    for spec in properties {
        let mut entry = SpecTallies {
            main: None,
            consequent: None,
        };
        match predicates::resolve(&spec.predicate, nodes) {
            Some(p) => {
                entry.main = Some(tallies.len());
                tallies.push(Tally::new(spec.predicate.clone(), p));
            }
            None => diags.push(
                Diagnostic::new(
                    catalog::ML22,
                    target,
                    format!(
                        "property `{}` names unknown predicate `{}`",
                        spec.name, spec.predicate
                    ),
                )
                .line(spec.line)
                .help(known_names_help()),
            ),
        }
        if let Some(consequent) = &spec.consequent {
            match predicates::resolve(consequent, nodes) {
                Some(p) => {
                    entry.consequent = Some(tallies.len());
                    tallies.push(Tally::new(consequent.clone(), p));
                }
                None => diags.push(
                    Diagnostic::new(
                        catalog::ML22,
                        target,
                        format!(
                            "property `{}` names unknown predicate `{consequent}`",
                            spec.name
                        ),
                    )
                    .line(spec.line)
                    .help(known_names_help()),
                ),
            }
        }
        spec_tallies.push(entry);
    }

    // ── pass A: predicate counting + guard bookkeeping ─────────────
    let budget_cap = match config.out_of_slot_budget {
        FaultBudget::AtMost(n) => Some(n),
        FaultBudget::Unlimited => None,
    };
    let mut max_replays_used = 0u8;
    let mut victim_states = 0u64;
    for id in 0..states as u32 {
        let state = graph.state(id);
        for tally in &mut tallies {
            if (tally.predicate)(&state) {
                tally.count += 1;
                if tally.first.is_none() {
                    tally.first = Some(id);
                }
            }
        }
        max_replays_used = max_replays_used.max(state.out_of_slot_used());
        if state.frozen_victim().is_some() {
            victim_states += 1;
        }
    }
    let depth_of = |tally: &Tally| tally.first.map(|id| graph.bfs_depth(id));

    // Built-in safety-guard vacuity.
    {
        let guard = &tallies[0];
        if guard.count == 0 {
            diags.push(
                Diagnostic::new(
                    catalog::ML01,
                    target,
                    "the safety property's guard `any_integrated` is satisfied by zero \
                     reachable states — no node ever integrates, so `no integrated node \
                     freezes` holds vacuously",
                )
                .severity(zero_sev(Severity::Warning))
                .note(space_note()),
            );
        }
    }

    // ML34 over expect.liveness / expect.recovery antecedents.
    let mut expect_vacuity = |base: usize, key: &str, shape: &str| {
        let dead: Vec<String> = (0..nodes)
            .filter(|i| tallies[base + i].count == 0)
            .map(|i| format!("node {i}"))
            .collect();
        if !dead.is_empty() {
            diags.push(
                Diagnostic::new(
                    catalog::ML34,
                    target,
                    format!(
                        "expect.{key} is declared, but its antecedent `{shape}` is \
                         satisfied by zero reachable states for {}",
                        dead.join(", ")
                    ),
                )
                .severity(zero_sev(Severity::Warning))
                .note(space_note()),
            );
        }
    };
    if check_liveness {
        expect_vacuity(liveness_base, "liveness", "listening");
    }
    if check_recovery {
        expect_vacuity(recovery_base, "recovery", "frozen");
    }

    // ML01/ML02/ML03 over declared properties.
    for (spec, entry) in properties.iter().zip(&spec_tallies) {
        let Some(main_idx) = entry.main else { continue };
        let main = &tallies[main_idx];
        match spec.kind {
            PropertyKind::LeadsTo => {
                if main.count == 0 {
                    diags.push(
                        Diagnostic::new(
                            catalog::ML01,
                            target,
                            format!(
                                "property `{}` is vacuous: antecedent `{}` is satisfied \
                                 by 0 of {states} reachable states",
                                spec.name, main.name
                            ),
                        )
                        .severity(zero_sev(Severity::Warning))
                        .line(spec.line)
                        .note(space_note())
                        .help(
                            "a leads-to with an unreachable antecedent holds no matter \
                             what the consequent says — weaken the antecedent or fix \
                             the configuration that was meant to enable it",
                        ),
                    );
                } else if main.count as usize == states {
                    diags.push(
                        Diagnostic::new(
                            catalog::ML03,
                            target,
                            format!(
                                "property `{}`: antecedent `{}` is satisfied by every \
                                 reachable state — the leads-to degenerates to `GF({})`",
                                spec.name,
                                main.name,
                                entry
                                    .consequent
                                    .map_or("consequent", |i| tallies[i].name.as_str())
                            ),
                        )
                        .line(spec.line),
                    );
                }
                if let Some(con_idx) = entry.consequent {
                    let con = &tallies[con_idx];
                    if con.count == 0 && main.count > 0 {
                        diags.push(
                            Diagnostic::new(
                                catalog::ML02,
                                target,
                                format!(
                                    "property `{}`: consequent `{}` is satisfied by zero \
                                     reachable states — the leads-to cannot be discharged",
                                    spec.name, con.name
                                ),
                            )
                            .severity(zero_sev(Severity::Warning))
                            .line(spec.line)
                            .note(space_note()),
                        );
                    } else if con.count as usize == states {
                        diags.push(
                            Diagnostic::new(
                                catalog::ML03,
                                target,
                                format!(
                                    "property `{}`: consequent `{}` is satisfied by every \
                                     reachable state — the obligation is discharged \
                                     immediately wherever it arises",
                                    spec.name, con.name
                                ),
                            )
                            .line(spec.line),
                        );
                    }
                }
            }
            PropertyKind::Invariant => {
                if main.count == 0 {
                    diags.push(
                        Diagnostic::new(
                            catalog::ML02,
                            target,
                            format!(
                                "property `{}`: invariant predicate `{}` is satisfied by \
                                 zero reachable states — it is violated everywhere \
                                 (likely inverted)",
                                spec.name, main.name
                            ),
                        )
                        .severity(zero_sev(Severity::Warning))
                        .line(spec.line)
                        .note(space_note()),
                    );
                }
            }
            PropertyKind::Eventually | PropertyKind::AlwaysEventually => {
                if main.count == 0 {
                    diags.push(
                        Diagnostic::new(
                            catalog::ML02,
                            target,
                            format!(
                                "property `{}`: goal `{}` is satisfied by zero reachable \
                                 states — the property is trivially violated",
                                spec.name, main.name
                            ),
                        )
                        .severity(zero_sev(Severity::Warning))
                        .line(spec.line)
                        .note(space_note()),
                    );
                } else if main.count as usize == states {
                    diags.push(
                        Diagnostic::new(
                            catalog::ML03,
                            target,
                            format!(
                                "property `{}`: goal `{}` is satisfied by every reachable \
                                 state (including all initial states) — it holds trivially",
                                spec.name, main.name
                            ),
                        )
                        .line(spec.line),
                    );
                }
            }
        }
    }

    // ── ML04: fairness constraints labeling zero edges ─────────────
    for usage in graph.action_usage() {
        if usage.labeled_edges == 0 {
            diags.push(
                Diagnostic::new(
                    catalog::ML04,
                    target,
                    format!(
                        "fairness constraint `{}` labels zero edges of the reachable \
                         graph — it constrains no cycle",
                        usage.name
                    ),
                )
                .severity(zero_sev(Severity::Warning))
                .note(format!(
                    "enabled in {} states, taken on 0 stored edges",
                    usage.enabled_states
                )),
            );
        }
    }

    // ── coverage pass: which fault modes actually occur ────────────
    let mut fault_steps = [0u64; 4];
    for id in 0..states as u32 {
        let state = graph.state(id);
        model.for_each_step(&state, &mut |_, info| {
            fault_steps[mode_index(info.faults[0])] += 1;
            fault_steps[mode_index(info.faults[1])] += 1;
        });
    }
    // Modes the authority admits on channel 0 (the faulty-channel slot
    // under symmetric reduction). Silence/BadFrame are always in the
    // model's vocabulary; OutOfSlot needs full-frame buffering and a
    // non-zero replay budget.
    let mut admitted = vec![CouplerFaultMode::Silence, CouplerFaultMode::BadFrame];
    if config.authority.can_buffer_full_frames() && config.out_of_slot_budget.allows(0) {
        admitted.push(CouplerFaultMode::OutOfSlot);
    }
    for mode in admitted {
        if fault_steps[mode_index(mode)] == 0 {
            diags.push(
                Diagnostic::new(
                    catalog::ML10,
                    target,
                    format!(
                        "fault mode `{}` is admitted by authority `{}` but never taken \
                         anywhere in the explored space",
                        mode_key(mode),
                        config.authority
                    ),
                )
                .severity(zero_sev(Severity::Warning))
                .note(space_note()),
            );
        }
    }

    // ── ML11: guards that never fire (informational) ───────────────
    if let Some(cap) = budget_cap {
        if cap > 0 && max_replays_used < cap {
            diags.push(
                Diagnostic::new(
                    catalog::ML11,
                    target,
                    format!(
                        "replay budget cap {cap} is never reached in the explored space \
                         (maximum replays used: {max_replays_used})"
                    ),
                )
                .note(space_note()),
            );
        }
    }
    if config.forbid_cold_start_replay && fault_steps[mode_index(CouplerFaultMode::OutOfSlot)] == 0
    {
        diags.push(
            Diagnostic::new(
                catalog::ML11,
                target,
                "forbid_cold_start_replay is set but no out-of-slot replay occurs \
                 anywhere in the explored space — the filter never fires",
            )
            .note(space_note()),
        );
    }
    if victim_states == 0 {
        diags.push(
            Diagnostic::new(
                catalog::ML11,
                target,
                format!(
                    "the victim latch never fires: zero of {states} explored states \
                     freeze an integrated node",
                ),
            )
            .note(format!(
                "the safety guard `any_integrated` is satisfied in {} states, so this \
                 is a non-vacuous pass, not an unexercised property",
                tallies[0].count
            )),
        );
    }

    // ── evidence for S6 ────────────────────────────────────────────
    let mut antecedents: Vec<(String, u64, Option<usize>)> = Vec::new();
    for (i, tally) in tallies.iter().enumerate() {
        // Guard, expect antecedents and declared leads-to antecedents;
        // skip consequent/goal tallies to keep the evidence focused.
        let is_antecedent = i == 0
            || (check_liveness && (liveness_base..liveness_base + nodes).contains(&i))
            || (check_recovery && (recovery_base..recovery_base + nodes).contains(&i))
            || spec_tallies
                .iter()
                .zip(properties)
                .any(|(t, s)| t.main == Some(i) && s.kind == PropertyKind::LeadsTo);
        if is_antecedent {
            antecedents.push((tally.name.clone(), tally.count, depth_of(tally)));
        }
    }
    let evidence = TargetEvidence {
        target: target.to_string(),
        states,
        edges: graph.edge_count(),
        truncated,
        antecedents,
        fault_steps,
    };
    (diags, evidence)
}

fn known_names_help() -> String {
    let names: Vec<&str> = predicates::NAMES.iter().map(|(n, _)| *n).collect();
    format!(
        "known predicates: {}, plus node<i>_<listening|cold_start|integrated|active|frozen>",
        names.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_guardian::CouplerAuthority;

    fn passive_config(nodes: usize) -> ClusterConfig {
        ClusterConfig {
            nodes,
            ..ClusterConfig::paper(CouplerAuthority::Passive)
        }
    }

    fn spec(kind: PropertyKind, predicate: &str, consequent: Option<&str>) -> PropertySpec {
        PropertySpec {
            name: "t".into(),
            kind,
            predicate: predicate.into(),
            consequent: consequent.map(str::to_string),
            line: 1,
        }
    }

    #[test]
    fn vacuous_leads_to_is_flagged_with_full_space_witness() {
        // `replay_used` is unreachable under a passive coupler: no
        // full-frame buffering, no replays, ever.
        let specs = [spec(
            PropertyKind::LeadsTo,
            "replay_used",
            Some("no_victim"),
        )];
        let (diags, evidence) = analyze_config(
            "t",
            &passive_config(3),
            &specs,
            None,
            &AnalysisOptions::default(),
        );
        assert!(!evidence.truncated);
        let ml01: Vec<_> = diags.iter().filter(|d| d.code.id == "ML01").collect();
        assert_eq!(ml01.len(), 1, "{diags:?}");
        assert_eq!(ml01[0].severity, Severity::Warning);
        assert!(ml01[0].notes[0].contains("exhausted the full reachable space"));
        let ant = evidence
            .antecedents
            .iter()
            .find(|(n, _, _)| n == "replay_used")
            .unwrap();
        assert_eq!(ant.1, 0);
        assert_eq!(ant.2, None);
    }

    #[test]
    fn non_vacuous_leads_to_is_clean_and_witnessed() {
        let specs = [spec(
            PropertyKind::LeadsTo,
            "any_listening",
            Some("any_integrated"),
        )];
        let (diags, evidence) = analyze_config(
            "t",
            &passive_config(3),
            &specs,
            None,
            &AnalysisOptions::default(),
        );
        assert!(
            !diags.iter().any(|d| d.code.id == "ML01"),
            "no vacuity: {diags:?}"
        );
        let ant = evidence
            .antecedents
            .iter()
            .find(|(n, _, _)| n == "any_listening")
            .unwrap();
        assert!(ant.1 > 0);
        assert!(ant.2.is_some(), "witness depth recorded");
    }

    #[test]
    fn unknown_predicate_is_an_error() {
        let specs = [spec(PropertyKind::Invariant, "zebra", None)];
        let (diags, _) = analyze_config(
            "t",
            &passive_config(2),
            &specs,
            None,
            &AnalysisOptions::default(),
        );
        assert!(diags
            .iter()
            .any(|d| d.code.id == "ML22" && d.severity == Severity::Error));
    }

    #[test]
    fn tautological_goal_is_a_note() {
        let specs = [spec(PropertyKind::Eventually, "no_victim", None)];
        let (diags, _) = analyze_config(
            "t",
            &passive_config(2),
            &specs,
            None,
            &AnalysisOptions::default(),
        );
        let ml03: Vec<_> = diags.iter().filter(|d| d.code.id == "ML03").collect();
        assert_eq!(ml03.len(), 1, "{diags:?}");
        assert_eq!(ml03[0].severity, Severity::Note);
    }

    #[test]
    fn truncation_downgrades_zero_counts_to_notes() {
        let specs = [spec(
            PropertyKind::LeadsTo,
            "replay_used",
            Some("no_victim"),
        )];
        let (diags, evidence) = analyze_config(
            "t",
            &passive_config(3),
            &specs,
            None,
            &AnalysisOptions { max_states: 50 },
        );
        assert!(evidence.truncated);
        let ml01 = diags.iter().find(|d| d.code.id == "ML01").unwrap();
        assert_eq!(ml01.severity, Severity::Note);
        assert!(ml01.notes[0].contains("truncated"), "{:?}", ml01.notes);
    }

    #[test]
    fn coverage_counts_silence_and_bad_frame_under_passive() {
        let (diags, evidence) = analyze_config(
            "t",
            &passive_config(2),
            &[],
            None,
            &AnalysisOptions::default(),
        );
        // Passive couplers relay silence and bad frames; out-of-slot is
        // not in the vocabulary, so no ML10 may fire for it.
        assert!(evidence.fault_steps[1] > 0, "silence taken");
        assert!(evidence.fault_steps[2] > 0, "bad_frame taken");
        assert_eq!(evidence.fault_steps[3], 0, "no replays under passive");
        assert!(!diags.iter().any(|d| d.code.id == "ML10"), "{diags:?}");
        // The victim latch never fires under passive — evidence note.
        assert!(diags.iter().any(|d| d.code.id == "ML11"));
    }
}
