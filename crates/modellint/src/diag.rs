//! Diagnostics: severities, rendered and JSON output, deny/allow gates.
//!
//! The shapes deliberately mirror `rustc`: a diagnostic has a stable
//! code, a severity, a primary message anchored to a file (and line,
//! when the source construct has one), and attached `note:`/`help:`
//! lines. Rendering is deterministic — no timings, no hash-ordered
//! maps — so the JSON form can be pinned as a golden fixture.

use crate::catalog::LintCode;
use std::fmt;

/// Diagnostic severity, ordered from least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: coverage evidence, degenerate-but-harmless
    /// parameters. Never denied by `--deny warnings`.
    Note,
    /// Probably a mistake: a vacuous property, a shadowed event.
    Warning,
    /// Definitely broken: a file that does not parse.
    Error,
}

impl Severity {
    /// Lowercase name used in rendered and JSON output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, anchored to a lint target.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The stable lint code this finding instantiates.
    pub code: &'static LintCode,
    /// Severity after any catalog default (gates may deny on top, they
    /// do not rewrite the severity).
    pub severity: Severity,
    /// The lint target, e.g. a scenario path or `builtin:s4`.
    pub target: String,
    /// 1-based line within the target, when the construct has one.
    pub line: Option<usize>,
    /// Primary message.
    pub message: String,
    /// Attached `= note:` lines (witness evidence goes here).
    pub notes: Vec<String>,
    /// Attached `= help:` line.
    pub help: Option<String>,
}

impl Diagnostic {
    /// A new diagnostic at the code's default severity.
    #[must_use]
    pub fn new(
        code: &'static LintCode,
        target: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity,
            target: target.into(),
            line: None,
            message: message.into(),
            notes: Vec::new(),
            help: None,
        }
    }

    /// Overrides the default severity.
    #[must_use]
    pub fn severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Anchors the diagnostic to a 1-based line.
    #[must_use]
    pub fn line(mut self, line: usize) -> Self {
        self.line = Some(line);
        self
    }

    /// Attaches a `= note:` line.
    #[must_use]
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Attaches the `= help:` line.
    #[must_use]
    pub fn help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Renders the diagnostic in the rustc style:
    ///
    /// ```text
    /// warning[ML01-vacuous-property]: antecedent `replay_used` ...
    ///   --> scenarios/lint_fixtures/vacuous.toml:18
    ///   = note: search exhausted the full reachable space ...
    /// ```
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}[{}]: {}\n",
            self.severity,
            self.code.full_name(),
            self.message
        );
        match self.line {
            Some(line) => out.push_str(&format!("  --> {}:{line}\n", self.target)),
            None => out.push_str(&format!("  --> {}\n", self.target)),
        }
        for note in &self.notes {
            out.push_str(&format!("  = note: {note}\n"));
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("  = help: {help}\n"));
        }
        out
    }

    /// Renders the diagnostic as one deterministic JSON object (one
    /// line, keys in fixed order). The vendored serde stub does not
    /// serialize, so this is hand-rolled like `tta-bench`'s campaign
    /// JSON.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"code\":{}", json_string(self.code.id)));
        out.push_str(&format!(",\"slug\":{}", json_string(self.code.slug)));
        out.push_str(&format!(
            ",\"severity\":{}",
            json_string(self.severity.name())
        ));
        out.push_str(&format!(",\"target\":{}", json_string(&self.target)));
        match self.line {
            Some(line) => out.push_str(&format!(",\"line\":{line}")),
            None => out.push_str(",\"line\":null"),
        }
        out.push_str(&format!(",\"message\":{}", json_string(&self.message)));
        out.push_str(",\"notes\":[");
        for (i, note) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(note));
        }
        out.push(']');
        match &self.help {
            Some(help) => out.push_str(&format!(",\"help\":{}", json_string(help))),
            None => out.push_str(",\"help\":null"),
        }
        out.push('}');
        out
    }
}

/// Escapes `text` as a JSON string literal.
fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Which diagnostics fail the run: `--deny` / `--allow` gates.
///
/// `allow` wins over `deny` for specific codes; `deny_warnings` denies
/// every non-allowed diagnostic at warning severity or above. Errors
/// are always denied — a file that does not parse cannot be waved
/// through.
#[derive(Debug, Clone, Default)]
pub struct Gate {
    /// Deny every warning-or-worse diagnostic (`--deny warnings`).
    pub deny_warnings: bool,
    /// Codes denied regardless of severity (`--deny ML31`).
    pub deny_codes: Vec<String>,
    /// Codes never denied (`--allow ML32`). Wins over `deny`.
    pub allow_codes: Vec<String>,
}

impl Gate {
    /// Whether `diag` fails the run under this gate.
    #[must_use]
    pub fn denies(&self, diag: &Diagnostic) -> bool {
        let code = diag.code.id;
        if self
            .allow_codes
            .iter()
            .any(|c| c.eq_ignore_ascii_case(code) && diag.severity != Severity::Error)
        {
            return false;
        }
        if diag.severity == Severity::Error {
            return true;
        }
        if self.deny_codes.iter().any(|c| c.eq_ignore_ascii_case(code)) {
            return true;
        }
        self.deny_warnings && diag.severity >= Severity::Warning
    }
}

/// The result of a full lint run: every diagnostic, in deterministic
/// target-then-discovery order.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Diagnostics failing under `gate`.
    pub fn denied<'a>(&'a self, gate: &'a Gate) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics.iter().filter(move |d| gate.denies(d))
    }

    /// Number of diagnostics at exactly `severity`.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Renders every diagnostic plus a one-line summary.
    #[must_use]
    pub fn render(&self, gate: &Gate) -> String {
        let mut out = String::new();
        for diag in &self.diagnostics {
            out.push_str(&diag.render());
            out.push('\n');
        }
        let denied = self.denied(gate).count();
        out.push_str(&format!(
            "lint summary: {} error(s), {} warning(s), {} note(s); {} denied\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note),
            denied
        ));
        out
    }

    /// Renders the whole report as line-oriented JSON: one object per
    /// diagnostic, then a summary object.
    #[must_use]
    pub fn render_json(&self, gate: &Gate) -> String {
        let mut out = String::new();
        for diag in &self.diagnostics {
            out.push_str(&diag.render_json());
            out.push('\n');
        }
        out.push_str(&format!(
            "{{\"summary\":{{\"errors\":{},\"warnings\":{},\"notes\":{},\"denied\":{}}}}}\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note),
            self.denied(gate).count()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn render_includes_code_target_and_notes() {
        let diag = Diagnostic::new(catalog::ML01, "x.toml", "antecedent `p` never enabled")
            .line(7)
            .note("0 of 100 reachable states");
        let text = diag.render();
        assert!(
            text.starts_with("warning[ML01-vacuous-property]:"),
            "{text}"
        );
        assert!(text.contains("--> x.toml:7"), "{text}");
        assert!(text.contains("= note: 0 of 100"), "{text}");
    }

    #[test]
    fn json_escapes_and_orders_keys() {
        let diag = Diagnostic::new(catalog::ML20, "a\"b.toml", "dup \"key\"");
        let json = diag.render_json();
        assert!(json.starts_with("{\"code\":\"ML20\""), "{json}");
        assert!(json.contains("\"target\":\"a\\\"b.toml\""), "{json}");
        assert!(json.contains("\"line\":null"), "{json}");
    }

    #[test]
    fn gate_semantics() {
        let warn = Diagnostic::new(catalog::ML01, "x", "w");
        let note = Diagnostic::new(catalog::ML11, "x", "n");
        let err = Diagnostic::new(catalog::ML21, "x", "e");
        assert_eq!(note.severity, Severity::Note);

        let gate = Gate::default();
        assert!(!gate.denies(&warn));
        assert!(gate.denies(&err), "errors are always denied");

        let gate = Gate {
            deny_warnings: true,
            ..Gate::default()
        };
        assert!(gate.denies(&warn));
        assert!(!gate.denies(&note), "notes survive --deny warnings");

        let gate = Gate {
            deny_codes: vec!["ml11".into()],
            ..Gate::default()
        };
        assert!(gate.denies(&note), "--deny CODE denies notes too");

        let gate = Gate {
            deny_warnings: true,
            allow_codes: vec!["ML01".into()],
            ..Gate::default()
        };
        assert!(!gate.denies(&warn), "--allow wins over --deny warnings");
    }
}
