//! Static scenario and fault-plan lints (no state-space needed):
//! horizon checks (ML30), shadowing under the simulator's
//! first-match-wins dispatch (ML31), degenerate intermittent parameters
//! (ML32) and expectations that can never be checked (ML33).
//!
//! Shadowing is decided by *replaying the dispatch rule*, not by
//! interval algebra: `FaultPlan::coupler_fault_at` walks the event list
//! in declaration order and returns the first active match, so an event
//! is shadowed iff there is no slot in the horizon at which it is that
//! first match. Replaying slot-by-slot keeps the lint exactly as
//! precise as the simulator, intermittent duty cycles and all.

use crate::catalog;
use crate::diag::Diagnostic;
use tta_conformance::Scenario;
use tta_sim::FaultPersistence;

/// A fault event flattened to what the plan lints need: its window, its
/// persistence, and the dispatch *lane* it competes in. Coupler events
/// on one channel and node events on one node each form a lane with
/// first-match-wins dispatch; lanes never shadow each other.
struct LintEvent {
    label: String,
    lane: (u8, u64),
    from_slot: u64,
    to_slot: u64,
    persistence: FaultPersistence,
}

impl LintEvent {
    fn active_at(&self, t: u64) -> bool {
        self.persistence.active_at(self.from_slot, self.to_slot, t)
    }

    fn lane_name(&self) -> String {
        match self.lane {
            (0, channel) => format!("channel {channel}"),
            (_, node) => format!("node {node}"),
        }
    }
}

fn flatten_events(scenario: &Scenario) -> Vec<LintEvent> {
    let coupler = scenario
        .coupler_faults
        .iter()
        .enumerate()
        .map(|(i, e)| LintEvent {
            label: format!("fault.coupler #{}", i + 1),
            lane: (0, e.channel as u64),
            from_slot: e.from_slot,
            to_slot: e.to_slot,
            persistence: e.persistence,
        });
    let node = scenario
        .node_faults
        .iter()
        .enumerate()
        .map(|(i, e)| LintEvent {
            label: format!("fault.node #{}", i + 1),
            lane: (1, u64::from(e.node.index())),
            from_slot: e.from_slot,
            to_slot: e.to_slot,
            persistence: e.persistence,
        });
    coupler.chain(node).collect()
}

/// Runs every plan-level lint for a parsed scenario.
#[must_use]
pub fn lint_plan(target: &str, scenario: &Scenario) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let horizon = scenario.slots;
    let events = flatten_events(scenario);

    for event in &events {
        let where_ = &event.label;

        // ── ML30: windows beyond the horizon ───────────────────────
        if event.from_slot >= horizon {
            diags.push(
                Diagnostic::new(
                    catalog::ML30,
                    target,
                    format!(
                        "{where_}: window starts at slot {} but the simulation ends \
                         at slot {horizon} — the fault never fires",
                        event.from_slot
                    ),
                )
                .help("shrink from_slot or raise sim.slots"),
            );
        } else if event.persistence != FaultPersistence::Permanent && event.to_slot > horizon {
            diags.push(
                Diagnostic::new(
                    catalog::ML30,
                    target,
                    format!(
                        "{where_}: window {}..{} extends past the {horizon}-slot \
                         horizon — slots {horizon}..{} never fire",
                        event.from_slot, event.to_slot, event.to_slot
                    ),
                )
                .severity(crate::diag::Severity::Note),
            );
        }

        // ── ML32: degenerate intermittent parameters ───────────────
        if let FaultPersistence::Intermittent { period, duty } = event.persistence {
            if duty == period {
                diags.push(Diagnostic::new(
                    catalog::ML32,
                    target,
                    format!(
                        "{where_}: duty {duty} equals period {period} — the fault \
                             is active every slot of its window, equivalent to \
                             persistence = \"transient\""
                    ),
                ));
            } else if event.from_slot < horizon
                && period >= event.to_slot.saturating_sub(event.from_slot)
            {
                diags.push(Diagnostic::new(
                    catalog::ML32,
                    target,
                    format!(
                        "{where_}: period {period} is at least the window length \
                             {} — the fault never recurs, only the initial burst of \
                             {duty} slot(s) fires",
                        event.to_slot - event.from_slot
                    ),
                ));
            }
        }
    }

    // ── ML31: events shadowed by first-match-wins dispatch ─────────
    for (index, event) in events.iter().enumerate() {
        if event.from_slot >= horizon {
            continue; // already ML30 — never active at all
        }
        let wins = (0..horizon).any(|t| first_active(&events, event.lane, t) == Some(index));
        if !wins {
            let earlier: Vec<&str> = events[..index]
                .iter()
                .filter(|e| e.lane == event.lane)
                .map(|e| e.label.as_str())
                .collect();
            diags.push(
                Diagnostic::new(
                    catalog::ML31,
                    target,
                    format!(
                        "{}: never the first active match on {} at any slot in \
                         0..{horizon} — first-match-wins dispatch means it never \
                         takes effect",
                        event.label,
                        event.lane_name()
                    ),
                )
                .note(format!(
                    "every active slot is claimed by earlier event(s) {}",
                    earlier.join(", ")
                ))
                .help("reorder the events or disjoin their windows"),
            );
        }
    }

    // ── ML33: expectations that can never be checked ───────────────
    let expect = &scenario.expect;
    if expect.sim_disturbed.is_some() {
        if let Err(why) = scenario.sim_applicable() {
            diags.push(
                Diagnostic::new(
                    catalog::ML33,
                    target,
                    "expect.sim_disturbed is declared but the simulator phase is \
                     skipped for this scenario — the expectation is never checked",
                )
                .note(why),
            );
        }
    }
    if expect.recovery_outcome.is_some() {
        if let Err(why) = scenario.sim_applicable() {
            diags.push(
                Diagnostic::new(
                    catalog::ML33,
                    target,
                    "expect.recovery_outcome is declared but the simulator phase is \
                     skipped for this scenario — the expectation is never checked",
                )
                .note(why),
            );
        }
    }
    if expect.oracle_conforms.is_some() {
        if let Err(why) = scenario.oracle_applicable() {
            diags.push(
                Diagnostic::new(
                    catalog::ML33,
                    target,
                    "expect.oracle is declared but the trace-replay oracle is \
                     skipped for this scenario — the expectation is never checked",
                )
                .note(why),
            );
        }
    }
    if expect.verdict == Some(tta_conformance::ExpectedVerdict::Holds) {
        if expect.trace_len.is_some() {
            diags.push(Diagnostic::new(
                catalog::ML33,
                target,
                "expect.trace_len is declared but expect.verdict is `holds` — a \
                 holding property has no counterexample to measure",
            ));
        }
        if expect.golden.is_some() {
            diags.push(Diagnostic::new(
                catalog::ML33,
                target,
                "expect.golden is declared but expect.verdict is `holds` — a \
                 holding property renders no counterexample to pin",
            ));
        }
    }

    diags
}

/// Index of the first event active in `lane` at slot `t`, mirroring the
/// dispatch order of `FaultPlan::coupler_fault_at` /
/// `FaultPlan::node_fault_at`.
fn first_active(events: &[LintEvent], lane: (u8, u64), t: u64) -> Option<usize> {
    events.iter().position(|e| e.lane == lane && e.active_at(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn scenario(faults: &str, extra: &str) -> Scenario {
        let text = format!(
            "[cluster]\nnodes = 4\nauthority = \"passive\"\n[sim]\nslots = 100\n{faults}{extra}"
        );
        Scenario::parse(&text, Path::new(".")).unwrap()
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.id).collect()
    }

    #[test]
    fn window_beyond_horizon_is_flagged() {
        let s = scenario(
            "[[fault.coupler]]\nchannel = 0\nmode = \"silence\"\nfrom_slot = 150\nto_slot = 160\n",
            "",
        );
        let diags = lint_plan("t", &s);
        assert!(codes(&diags).contains(&"ML30"), "{diags:?}");
        // A never-active event must not also be reported as shadowed.
        assert!(!codes(&diags).contains(&"ML31"), "{diags:?}");
    }

    #[test]
    fn partially_clipped_window_is_a_note() {
        let s = scenario(
            "[[fault.coupler]]\nchannel = 0\nmode = \"silence\"\nfrom_slot = 50\nto_slot = 160\n",
            "",
        );
        let diags = lint_plan("t", &s);
        let ml30 = diags.iter().find(|d| d.code.id == "ML30").unwrap();
        assert_eq!(ml30.severity, crate::diag::Severity::Note);
    }

    #[test]
    fn fully_covered_event_is_shadowed() {
        let s = scenario(
            "[[fault.coupler]]\nchannel = 0\nmode = \"silence\"\nfrom_slot = 10\nto_slot = 90\n\
             [[fault.coupler]]\nchannel = 0\nmode = \"bad_frame\"\nfrom_slot = 20\nto_slot = 40\n",
            "",
        );
        let diags = lint_plan("t", &s);
        assert!(codes(&diags).contains(&"ML31"), "{diags:?}");
    }

    #[test]
    fn intermittent_gaps_unshadow_a_covered_event() {
        // The earlier event is intermittent with gaps; the later
        // transient event wins dispatch in the off-slots, so it is NOT
        // shadowed even though the windows nest.
        let s = scenario(
            "[[fault.coupler]]\nchannel = 0\nmode = \"silence\"\nfrom_slot = 10\nto_slot = 90\n\
             persistence = \"intermittent\"\nperiod = 10\nduty = 5\n\
             [[fault.coupler]]\nchannel = 0\nmode = \"bad_frame\"\nfrom_slot = 20\nto_slot = 40\n",
            "",
        );
        let diags = lint_plan("t", &s);
        assert!(!codes(&diags).contains(&"ML31"), "{diags:?}");
    }

    #[test]
    fn other_channel_does_not_shadow() {
        let s = scenario(
            "[[fault.coupler]]\nchannel = 0\nmode = \"silence\"\nfrom_slot = 10\nto_slot = 90\n\
             [[fault.coupler]]\nchannel = 1\nmode = \"silence\"\nfrom_slot = 20\nto_slot = 40\n",
            "",
        );
        // (Dual-channel overlap defeats the oracle, but dispatch is
        // per-channel: no shadowing here.)
        let diags = lint_plan("t", &s);
        assert!(!codes(&diags).contains(&"ML31"), "{diags:?}");
    }

    #[test]
    fn degenerate_intermittent_parameters_are_noted() {
        let s = scenario(
            "[[fault.coupler]]\nchannel = 0\nmode = \"silence\"\nfrom_slot = 10\nto_slot = 20\n\
             persistence = \"intermittent\"\nperiod = 50\nduty = 3\n",
            "",
        );
        let diags = lint_plan("t", &s);
        let ml32 = diags.iter().find(|d| d.code.id == "ML32").unwrap();
        assert!(ml32.message.contains("never recurs"), "{}", ml32.message);

        let s = scenario(
            "[[fault.coupler]]\nchannel = 0\nmode = \"silence\"\nfrom_slot = 10\nto_slot = 20\n\
             persistence = \"intermittent\"\nperiod = 4\nduty = 4\n",
            "",
        );
        let diags = lint_plan("t", &s);
        let ml32 = diags.iter().find(|d| d.code.id == "ML32").unwrap();
        assert!(ml32.message.contains("transient"), "{}", ml32.message);
    }

    #[test]
    fn unheckable_expectations_are_flagged() {
        // An out_of_slot plan on a passive coupler skips the simulator
        // phase; expecting sim_disturbed can then never be checked.
        let s = scenario(
            "[[fault.coupler]]\nchannel = 0\nmode = \"out_of_slot\"\nfrom_slot = 10\nto_slot = 20\n",
            "[expect]\nsim_disturbed = true\n",
        );
        let diags = lint_plan("t", &s);
        assert!(codes(&diags).contains(&"ML33"), "{diags:?}");

        let s = scenario("", "[expect]\nverdict = \"holds\"\ntrace_len = 5\n");
        let diags = lint_plan("t", &s);
        assert!(codes(&diags).contains(&"ML33"), "{diags:?}");
    }

    #[test]
    fn node_fault_windows_get_the_same_lints() {
        // Beyond-horizon node fault → ML30.
        let s = scenario(
            "[[fault.node]]\nnode = 1\nkind = \"mute\"\nfrom_slot = 150\nto_slot = 160\n",
            "",
        );
        let diags = lint_plan("t", &s);
        assert!(codes(&diags).contains(&"ML30"), "{diags:?}");

        // A node fault fully covered by an earlier one on the same node
        // is shadowed (ML31); the same window on another node is not.
        let s = scenario(
            "[[fault.node]]\nnode = 1\nkind = \"mute\"\nfrom_slot = 10\nto_slot = 90\n\
             [[fault.node]]\nnode = 1\nkind = \"babbling\"\nfrom_slot = 20\nto_slot = 40\n",
            "",
        );
        let diags = lint_plan("t", &s);
        let ml31 = diags.iter().find(|d| d.code.id == "ML31").unwrap();
        assert!(ml31.message.contains("node 1"), "{}", ml31.message);

        let s = scenario(
            "[[fault.node]]\nnode = 1\nkind = \"mute\"\nfrom_slot = 10\nto_slot = 90\n\
             [[fault.node]]\nnode = 2\nkind = \"babbling\"\nfrom_slot = 20\nto_slot = 40\n",
            "",
        );
        assert!(!codes(&lint_plan("t", &s)).contains(&"ML31"));

        // A coupler fault never shadows a node fault.
        let s = scenario(
            "[[fault.coupler]]\nchannel = 0\nmode = \"silence\"\nfrom_slot = 10\nto_slot = 90\n\
             [[fault.node]]\nnode = 0\nkind = \"mute\"\nfrom_slot = 20\nto_slot = 40\n",
            "",
        );
        assert!(!codes(&lint_plan("t", &s)).contains(&"ML31"));
    }

    #[test]
    fn recovery_outcome_on_a_skipped_sim_phase_is_flagged() {
        let s = scenario(
            "[[fault.coupler]]\nchannel = 0\nmode = \"out_of_slot\"\nfrom_slot = 10\nto_slot = 20\n",
            "[expect]\nrecovery_outcome = \"contained\"\n",
        );
        let diags = lint_plan("t", &s);
        assert!(codes(&diags).contains(&"ML33"), "{diags:?}");
    }

    #[test]
    fn clean_plan_produces_no_diagnostics() {
        let s = scenario(
            "[[fault.coupler]]\nchannel = 0\nmode = \"silence\"\nfrom_slot = 10\nto_slot = 50\n",
            "[expect]\nverdict = \"holds\"\nsim_disturbed = false\n",
        );
        assert!(lint_plan("t", &s).is_empty());
    }
}
