//! The lint engine: expands targets, runs the analysis families, and
//! assembles a deterministic [`LintReport`].
//!
//! Targets run in parallel (one worker per thread, atomic work index),
//! but every diagnostic is produced single-threadedly *within* its
//! target and the final report concatenates per-target results in
//! target order — so the output is byte-identical for every `--threads`
//! value. A proptest in `tests/` pins that claim.

use crate::diag::{Diagnostic, LintReport};
use crate::model_analysis::{analyze_config, AnalysisOptions, TargetEvidence};
use crate::plan_lints::lint_plan;
use crate::{catalog, diag::Severity};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tta_conformance::toml::{Document, ParseErrorKind};
use tta_conformance::{Expectations, ExpectedVerdict, Scenario};
use tta_core::ClusterConfig;
use tta_guardian::CouplerAuthority;

/// Options for a full lint run.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Reachable-space analysis tunables.
    pub analysis: AnalysisOptions,
    /// Worker threads (0 = one per target, capped at the host's
    /// available parallelism).
    pub threads: usize,
    /// Also lint the built-in S4 property set: the per-node
    /// integration-liveness and recovery properties across all four
    /// authority levels of the paper's 4-node cluster.
    pub include_s4: bool,
}

/// The outcome of a lint run: diagnostics plus per-target evidence.
#[derive(Debug, Clone, Default)]
pub struct LintRun {
    /// All diagnostics, in target order.
    pub report: LintReport,
    /// Reachable-space evidence per analyzed target, in target order.
    pub evidence: Vec<TargetEvidence>,
}

/// What linting one target yields: its diagnostics plus, when the
/// reachable-space analysis ran, the evidence it gathered.
type TargetOutcome = (Vec<Diagnostic>, Option<TargetEvidence>);

enum Target {
    Scenario(PathBuf),
    S4(CouplerAuthority),
}

impl Target {
    fn name(&self) -> String {
        match self {
            Target::Scenario(path) => path.display().to_string(),
            Target::S4(authority) => format!("builtin:s4/{authority}"),
        }
    }
}

/// Expands `paths` (files or directories; directories contribute their
/// `*.toml` entries sorted by name) and runs every lint family over
/// each target, plus the built-in S4 set when requested.
#[must_use]
pub fn lint(paths: &[PathBuf], opts: &LintOptions) -> LintRun {
    let mut targets: Vec<Target> = Vec::new();
    let mut diags_front: Vec<Diagnostic> = Vec::new();
    for path in paths {
        if path.is_dir() {
            let mut entries: Vec<PathBuf> = match std::fs::read_dir(path) {
                Ok(dir) => dir
                    .filter_map(Result::ok)
                    .map(|e| e.path())
                    .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == "toml"))
                    .collect(),
                Err(e) => {
                    diags_front.push(Diagnostic::new(
                        catalog::ML21,
                        path.display().to_string(),
                        format!("cannot read directory: {e}"),
                    ));
                    continue;
                }
            };
            entries.sort();
            targets.extend(entries.into_iter().map(Target::Scenario));
        } else if path.is_file() {
            targets.push(Target::Scenario(path.clone()));
        } else {
            diags_front.push(Diagnostic::new(
                catalog::ML21,
                path.display().to_string(),
                "no such file or directory",
            ));
        }
    }
    if opts.include_s4 {
        targets.extend(CouplerAuthority::all().into_iter().map(Target::S4));
    }

    let results = run_targets(&targets, opts);

    let mut run = LintRun::default();
    run.report.diagnostics = diags_front;
    for (diags, evidence) in results {
        run.report.diagnostics.extend(diags);
        if let Some(evidence) = evidence {
            run.evidence.push(evidence);
        }
    }
    run
}

/// Runs the targets on a small worker pool and returns per-target
/// results **in target order** regardless of completion order.
fn run_targets(targets: &[Target], opts: &LintOptions) -> Vec<TargetOutcome> {
    let threads = effective_threads(opts.threads, targets.len());
    // Relaxed claim counter: only fetch_add uniqueness matters; results
    // are published through the Mutex-guarded slot vector.
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<TargetOutcome>>> =
        Mutex::new((0..targets.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(target) = targets.get(index) else {
                    return;
                };
                let outcome = run_target(target, opts);
                results.lock().expect("no poisoned worker")[index] = Some(outcome);
            });
        }
    });
    results
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|slot| slot.expect("every target processed"))
        .collect()
}

fn effective_threads(requested: usize, targets: usize) -> usize {
    // detlint: allow(DL03) reason=pool sizing only; per-target results are reassembled in target order
    let available = std::thread::available_parallelism().map_or(1, usize::from);
    let threads = if requested == 0 {
        targets.min(available)
    } else {
        requested
    };
    threads.clamp(1, targets.max(1))
}

fn run_target(target: &Target, opts: &LintOptions) -> TargetOutcome {
    match target {
        Target::Scenario(path) => lint_scenario_file(path, &opts.analysis),
        Target::S4(authority) => {
            let name = target.name();
            let config = ClusterConfig::paper(*authority);
            let expect = Expectations {
                liveness: Some(ExpectedVerdict::Holds),
                recovery: Some(ExpectedVerdict::Holds),
                ..Expectations::default()
            };
            let (diags, evidence) =
                analyze_config(&name, &config, &[], Some(&expect), &opts.analysis);
            (diags, Some(evidence))
        }
    }
}

/// Lints one scenario file: syntax (ML20/ML21), plan lints, and the
/// reachable-space analyses over the scenario's checker configuration.
#[must_use]
pub fn lint_scenario_file(path: &Path, analysis: &AnalysisOptions) -> TargetOutcome {
    let target = path.display().to_string();
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            return (
                vec![Diagnostic::new(
                    catalog::ML21,
                    target,
                    format!("cannot read: {e}"),
                )],
                None,
            )
        }
    };
    // The raw TOML layer first, so duplication gets its dedicated code.
    if let Err(e) = Document::parse(&text) {
        let code = match e.kind {
            ParseErrorKind::DuplicateKey | ParseErrorKind::DuplicateTable => catalog::ML20,
            ParseErrorKind::Syntax => catalog::ML21,
        };
        let mut diag = Diagnostic::new(code, target, e.message.clone());
        if e.line > 0 {
            diag = diag.line(e.line);
        }
        return (vec![diag], None);
    }
    let scenario = match Scenario::load(path) {
        Ok(s) => s,
        Err(e) => {
            return (
                vec![Diagnostic::new(catalog::ML21, target, e.to_string())],
                None,
            );
        }
    };

    let (diags, evidence) = lint_scenario(&target, &scenario, analysis);
    (diags, Some(evidence))
}

/// Lints an already-parsed scenario in memory: plan lints plus the
/// reachable-space analyses over its checker configuration. The
/// path-free analog of [`lint_scenario_file`], for callers (the
/// fuzzer's emission self-check among them) that synthesize scenarios
/// without writing them to disk first.
#[must_use]
pub fn lint_scenario(
    target: &str,
    scenario: &Scenario,
    analysis: &AnalysisOptions,
) -> (Vec<Diagnostic>, TargetEvidence) {
    let mut diags = lint_plan(target, scenario);
    // A declared-twice section never reaches here (hard parse error),
    // so every surviving scenario has one checker configuration.
    let (model_diags, evidence) = analyze_config(
        target,
        &scenario.checker_config(),
        &scenario.properties,
        Some(&scenario.expect),
        analysis,
    );
    diags.extend(model_diags);
    (diags, evidence)
}

/// Evidence-only probe of one checker configuration: builds the
/// reachable space and returns witness counts, BFS depths, and
/// per-mode fault-step tallies with no expectation- or
/// property-derived diagnostics. The fuzzer uses this as its
/// per-authority coverage baseline.
#[must_use]
pub fn config_coverage(
    target: &str,
    config: &ClusterConfig,
    analysis: &AnalysisOptions,
) -> TargetEvidence {
    analyze_config(target, config, &[], None, analysis).1
}

/// `true` when the report holds any error-severity diagnostic.
#[must_use]
pub fn has_errors(report: &LintReport) -> bool {
    report
        .diagnostics
        .iter()
        .any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_path_is_an_error_diagnostic() {
        let run = lint(
            &[PathBuf::from("/nonexistent/zebra.toml")],
            &LintOptions::default(),
        );
        assert_eq!(run.report.diagnostics.len(), 1);
        assert_eq!(run.report.diagnostics[0].code.id, "ML21");
        assert!(has_errors(&run.report));
    }

    #[test]
    fn config_coverage_probes_without_diagnostics() {
        let evidence = config_coverage(
            "probe:passive",
            &ClusterConfig::paper(CouplerAuthority::Passive),
            &AnalysisOptions::default(),
        );
        assert_eq!(evidence.target, "probe:passive");
        assert!(evidence.states > 0);
        assert!(!evidence.truncated);
        // The passive space still exercises fault-free steps, and any
        // built-in antecedent that was tallied carries a witness depth
        // exactly when its count is non-zero.
        assert!(evidence.fault_steps[0] > 0);
        for (_, count, depth) in &evidence.antecedents {
            assert_eq!(depth.is_some(), *count > 0);
        }
    }

    #[test]
    fn effective_threads_is_clamped() {
        assert_eq!(effective_threads(8, 2), 2);
        assert_eq!(effective_threads(1, 5), 1);
        assert_eq!(effective_threads(0, 0), 1);
        assert!(effective_threads(0, 3) >= 1);
    }
}
