//! # tta-modellint
//!
//! Static analysis for the model stack: a diagnostics engine with
//! stable lint codes over three analysis families.
//!
//! The repo's verification results rest on properties *holding* — but a
//! property that holds can hold **vacuously** (its antecedent never
//! enabled), and a fault plan can silently never fire. That is exactly
//! the failure mode Konnov et al. warn about for model-checked
//! fault-tolerant distributed algorithms: the check passes, and checks
//! nothing. This crate makes triviality a checked artifact:
//!
//! 1. **Property analysis** (`ML0x`) — vacuity detection by
//!    antecedent-enabledness search over the reachable space (built
//!    once through [`tta_liveness::FairGraph`] with the checker's
//!    interning codec), unsatisfiable/tautological predicate
//!    detection, and fairness constraints whose action set labels zero
//!    edges ([`tta_liveness::FairGraph::action_usage`]).
//! 2. **Model coverage** (`ML1x`) — dead-transition and
//!    never-fired-guard reporting for the cluster model's
//!    `for_each_step` branches over the explored space, per authority
//!    level, so a restrained-authority "Holds" comes with evidence the
//!    interesting transitions were exercised.
//! 3. **Scenario & fault-plan lints** (`ML2x`/`ML3x`) — duplicate
//!    keys/tables, windows beyond the horizon, events shadowed by the
//!    simulator's first-match-wins dispatch, degenerate intermittent
//!    parameters, and expectations the declared authority can never
//!    let the runner check.
//!
//! Diagnostics render rustc-style or as line-oriented JSON, carry
//! stable codes (`ML01-vacuous-property`), and honor `--deny`/`--allow`
//! gates; the `tta_lint` binary in `tta-bench` exits nonzero when any
//! denied diagnostic remains. Output is deterministic across worker
//! thread counts by construction: targets are analyzed independently
//! and reported in target order.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod catalog;
mod diag;
mod engine;
mod model_analysis;
mod plan_lints;
pub mod predicates;

pub use catalog::LintCode;
pub use diag::{Diagnostic, Gate, LintReport, Severity};
pub use engine::{
    config_coverage, has_errors, lint, lint_scenario, lint_scenario_file, LintOptions, LintRun,
};
pub use model_analysis::{analyze_config, AnalysisOptions, TargetEvidence};
pub use plan_lints::lint_plan;
