//! The named predicate catalog scenario `[[property]]` sections draw
//! from.
//!
//! Scenario files reference predicates by name; this module resolves a
//! name to a closure over [`ClusterState`]. Names are deliberately
//! cluster-level (`any_*` / `all_*`) rather than node-indexed: the lint
//! engine checks *non-triviality* of properties, and quantified forms
//! keep fixtures independent of the cluster size. A `node<i>_<shape>`
//! form (e.g. `node0_listening`) is accepted for targeted fixtures.

use tta_core::ClusterState;
use tta_protocol::ProtocolState;

/// A resolved named predicate.
pub type Predicate = Box<dyn Fn(&ClusterState) -> bool + Send + Sync>;

/// The catalog's fixed (non-indexed) names, with a one-line meaning
/// each. Used for diagnostics when resolution fails.
pub static NAMES: &[(&str, &str)] = &[
    ("any_listening", "some node is in the listen state"),
    ("all_listening", "every node is in the listen state"),
    ("any_cold_start", "some node is cold-starting"),
    (
        "any_integrated",
        "some node is integrated (active or passive)",
    ),
    (
        "all_integrated",
        "every node is integrated (active or passive)",
    ),
    ("any_active", "some node holds active membership"),
    ("all_active", "every node holds active membership"),
    ("any_frozen", "some node is frozen"),
    ("all_frozen", "every node is frozen"),
    (
        "no_victim",
        "the safety monitor has not latched a frozen victim",
    ),
    (
        "victim_latched",
        "the safety monitor has latched a frozen victim",
    ),
    (
        "replay_used",
        "at least one out-of-slot replay has occurred",
    ),
    (
        "buffer_occupied",
        "a coupler holds a replayable buffered frame",
    ),
];

fn state_pred(shape: &str) -> Option<fn(ProtocolState) -> bool> {
    Some(match shape {
        "listening" => |s| s == ProtocolState::Listen,
        "cold_start" => |s| s == ProtocolState::ColdStart,
        "integrated" => ProtocolState::is_integrated,
        "active" => |s| s == ProtocolState::Active,
        "frozen" => |s| s == ProtocolState::Freeze,
        _ => return None,
    })
}

/// Resolves `name` to a predicate over clusters of `nodes` nodes.
/// Returns `None` for names outside the catalog (lint `ML22`).
#[must_use]
pub fn resolve(name: &str, nodes: usize) -> Option<Predicate> {
    // Quantified protocol-state forms.
    if let Some(shape) = name.strip_prefix("any_") {
        if let Some(test) = state_pred(shape) {
            return Some(Box::new(move |s: &ClusterState| {
                s.nodes().iter().any(|n| test(n.protocol_state()))
            }));
        }
    }
    if let Some(shape) = name.strip_prefix("all_") {
        if let Some(test) = state_pred(shape) {
            return Some(Box::new(move |s: &ClusterState| {
                s.nodes().iter().all(|n| test(n.protocol_state()))
            }));
        }
    }
    // Node-indexed forms: node3_frozen.
    if let Some(rest) = name.strip_prefix("node") {
        if let Some((index, shape)) = rest.split_once('_') {
            if let (Ok(i), Some(test)) = (index.parse::<usize>(), state_pred(shape)) {
                if i < nodes {
                    return Some(Box::new(move |s: &ClusterState| {
                        test(s.nodes()[i].protocol_state())
                    }));
                }
                return None;
            }
        }
    }
    match name {
        "no_victim" => Some(Box::new(|s: &ClusterState| s.frozen_victim().is_none())),
        "victim_latched" => Some(Box::new(|s: &ClusterState| s.frozen_victim().is_some())),
        "replay_used" => Some(Box::new(|s: &ClusterState| s.out_of_slot_used() > 0)),
        "buffer_occupied" => Some(Box::new(|s: &ClusterState| {
            s.coupler_buffers().iter().any(|b| b.is_replayable())
        })),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_core::{ClusterConfig, ClusterModel};
    use tta_guardian::CouplerAuthority;

    #[test]
    fn catalog_names_all_resolve() {
        for (name, _) in NAMES {
            assert!(resolve(name, 4).is_some(), "{name} must resolve");
        }
        assert!(resolve("node0_frozen", 4).is_some());
        assert!(resolve("node3_active", 4).is_some());
        assert!(resolve("node4_active", 4).is_none(), "index out of range");
        assert!(resolve("any_confused", 4).is_none());
        assert!(resolve("zebra", 4).is_none());
    }

    #[test]
    fn predicates_evaluate_on_the_initial_state() {
        let model = ClusterModel::new(ClusterConfig::paper(CouplerAuthority::Passive));
        let init = model.initial_state();
        assert!(resolve("all_frozen", 4).unwrap()(&init));
        assert!(resolve("no_victim", 4).unwrap()(&init));
        assert!(!resolve("any_integrated", 4).unwrap()(&init));
        assert!(!resolve("replay_used", 4).unwrap()(&init));
    }
}
