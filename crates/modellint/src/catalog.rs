//! The stable lint-code registry.
//!
//! Codes are grouped by analysis family: `ML0x` property analysis,
//! `ML1x` model coverage, `ML2x` artifact syntax, `ML3x` scenario and
//! fault-plan semantics. Codes are append-only — a shipped code never
//! changes meaning or disappears, so `--deny`/`--allow` lists and CI
//! configurations stay valid across releases.

use crate::diag::Severity;

/// One registered lint: stable id, human slug, default severity and a
/// one-line summary (the table in DESIGN.md is generated from this).
#[derive(Debug)]
pub struct LintCode {
    /// Stable short id, e.g. `ML01`.
    pub id: &'static str,
    /// Human-readable slug, e.g. `vacuous-property`.
    pub slug: &'static str,
    /// Severity unless the analysis overrides it (e.g. downgraded to
    /// [`Severity::Note`] when the state budget truncated the search).
    pub default_severity: Severity,
    /// One-line description.
    pub summary: &'static str,
}

impl LintCode {
    /// `id-slug`, the form rendered in brackets: `ML01-vacuous-property`.
    #[must_use]
    pub fn full_name(&self) -> String {
        format!("{}-{}", self.id, self.slug)
    }
}

macro_rules! codes {
    ($($name:ident = $id:literal, $slug:literal, $sev:ident, $summary:literal;)*) => {
        $(
            #[doc = $summary]
            pub static $name: &LintCode = &LintCode {
                id: $id,
                slug: $slug,
                default_severity: Severity::$sev,
                summary: $summary,
            };
        )*
        /// Every registered lint, id order.
        pub static CATALOG: &[&LintCode] = &[$($name),*];
    };
}

codes! {
    // ── property analysis ──────────────────────────────────────────
    ML01 = "ML01", "vacuous-property", Warning,
        "a leads-to antecedent (or invariant guard) is satisfied by zero reachable states: the property holds without constraining anything";
    ML02 = "ML02", "unsatisfiable-predicate", Warning,
        "a predicate used as a goal (consequent, F/G/GF operand) is satisfied by zero reachable states";
    ML03 = "ML03", "tautological-predicate", Note,
        "a predicate is satisfied by every reachable state, so the property it appears in is discharged trivially";
    ML04 = "ML04", "unused-fairness", Warning,
        "a weak-fairness constraint labels zero edges of the reachable graph: it constrains no cycle";
    // ── model coverage ─────────────────────────────────────────────
    ML10 = "ML10", "dead-transition", Warning,
        "a coupler fault mode the configured authority admits is never taken anywhere in the explored space";
    ML11 = "ML11", "never-fired-guard", Note,
        "a model guard (replay budget cap, cold-start-replay filter, victim latch) never fires in the explored space";
    // ── artifact syntax ────────────────────────────────────────────
    ML20 = "ML20", "duplicate-key", Error,
        "a scenario file repeats a key or table, which the old parser silently resolved by drop";
    ML21 = "ML21", "invalid-artifact", Error,
        "a scenario file fails to parse or validate";
    ML22 = "ML22", "unknown-predicate", Error,
        "a [[property]] or expect block names a predicate the catalog does not define";
    // ── scenario & fault-plan semantics ────────────────────────────
    ML30 = "ML30", "window-beyond-horizon", Warning,
        "a fault window lies (partly) beyond the simulation horizon and can never (fully) fire";
    ML31 = "ML31", "shadowed-event", Warning,
        "a fault event is never the first active match on its channel: first-match-wins dispatch means it never takes effect";
    ML32 = "ML32", "degenerate-intermittent", Note,
        "an intermittent fault's period/duty make it equivalent to a transient burst within its window";
    ML33 = "ML33", "inconsistent-expectation", Warning,
        "an expect key can never be checked given the declared authority, topology or verdict";
    ML34 = "ML34", "unreachable-expect-predicate", Warning,
        "a predicate underlying expect.liveness/expect.recovery is satisfied by zero reachable states";
}

/// Looks up a code by id (`ML01`) or slug (`vacuous-property`) or full
/// name (`ML01-vacuous-property`), case-insensitively.
#[must_use]
pub fn find(name: &str) -> Option<&'static LintCode> {
    CATALOG.iter().copied().find(|c| {
        c.id.eq_ignore_ascii_case(name)
            || c.slug.eq_ignore_ascii_case(name)
            || c.full_name().eq_ignore_ascii_case(name)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_sorted() {
        for pair in CATALOG.windows(2) {
            assert!(pair[0].id < pair[1].id, "{} !< {}", pair[0].id, pair[1].id);
        }
    }

    #[test]
    fn find_accepts_all_spellings() {
        assert_eq!(find("ML01").unwrap().slug, "vacuous-property");
        assert_eq!(find("vacuous-property").unwrap().id, "ML01");
        assert_eq!(find("ml31-shadowed-event").unwrap().id, "ML31");
        assert!(find("ML99").is_none());
    }
}
