//! The Figure 3 clock-ratio curve (paper eq. 10).

use crate::limits::AnalysisError;
use serde::{Deserialize, Serialize};

/// Maximum admissible clock-rate *ratio* between the fastest and slowest
/// clock in the system (paper eq. 10):
///
/// `ρ_max / ρ_min = f_max / (f_max − f_min + 1 + le)`.
///
/// Valid combinations lie *below* the curve.
///
/// # Errors
///
/// [`AnalysisError::InvalidParameter`] if `f_min > f_max` or `f_max == 0`.
pub fn clock_ratio_limit(
    max_frame_bits: u32,
    min_frame_bits: u32,
    line_encoding_bits: u32,
) -> Result<f64, AnalysisError> {
    if max_frame_bits == 0 {
        return Err(AnalysisError::InvalidParameter {
            name: "max_frame_bits",
            value: 0.0,
        });
    }
    if min_frame_bits > max_frame_bits {
        return Err(AnalysisError::InvalidParameter {
            name: "min_frame_bits",
            value: f64::from(min_frame_bits),
        });
    }
    let denominator =
        f64::from(max_frame_bits) - f64::from(min_frame_bits) + 1.0 + f64::from(line_encoding_bits);
    Ok(f64::from(max_frame_bits) / denominator)
}

/// One point of the Figure 3 curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure3Point {
    /// Longest frame on the network (bits).
    pub max_frame_bits: u32,
    /// Shortest frame on the network (bits).
    pub min_frame_bits: u32,
    /// The admissible ρ_max/ρ_min ratio at this point.
    pub ratio_limit: f64,
}

/// Generates the Figure 3 data: for each `f_max` in `max_frames`, sweep
/// `f_min` from `min_frame_floor` up to `f_max` in `steps` equal steps and
/// evaluate the ratio limit. The paper plots the curve for `le = 4`.
///
/// # Panics
///
/// Panics if `steps == 0`.
#[must_use]
pub fn figure3_series(
    max_frames: &[u32],
    min_frame_floor: u32,
    steps: u32,
    line_encoding_bits: u32,
) -> Vec<Figure3Point> {
    assert!(steps > 0, "need at least one sweep step");
    let mut points = Vec::new();
    for &f_max in max_frames {
        if f_max < min_frame_floor {
            continue;
        }
        for i in 0..=steps {
            let f_min = min_frame_floor
                + ((u64::from(f_max - min_frame_floor) * u64::from(i)) / u64::from(steps)) as u32;
            if let Ok(ratio_limit) = clock_ratio_limit(f_max, f_min, line_encoding_bits) {
                points.push(Figure3Point {
                    max_frame_bits: f_max,
                    min_frame_bits: f_min,
                    ratio_limit,
                });
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spot_check_equal_128_bit_frames() {
        // "if the maximum and minimum frame size are both 128 bits the
        // ratio ... is f_max / 5 = 25" (it is 25.6; the paper rounds).
        let ratio = clock_ratio_limit(128, 128, 4).unwrap();
        assert!((ratio - 128.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn wide_frame_ranges_forbid_wide_clock_ranges() {
        // Monotonicity along the curve: growing the spread between f_min
        // and f_max lowers the admissible clock ratio.
        let narrow = clock_ratio_limit(1000, 990, 4).unwrap();
        let wide = clock_ratio_limit(1000, 100, 4).unwrap();
        assert!(narrow > wide);
    }

    #[test]
    fn equal_frames_ratio_approaches_f_over_le_plus_one() {
        // At f_min = f_max the denominator is 1 + le — the "significant
        // limit at high clock ratios" the paper highlights.
        for f in [64u32, 256, 1024] {
            let ratio = clock_ratio_limit(f, f, 4).unwrap();
            assert!((ratio - f64::from(f) / 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn series_lies_on_the_curve() {
        let points = figure3_series(&[128, 2076], 28, 16, 4);
        assert!(!points.is_empty());
        for p in &points {
            let expected = clock_ratio_limit(p.max_frame_bits, p.min_frame_bits, 4).unwrap();
            assert!((p.ratio_limit - expected).abs() < 1e-12);
            assert!(p.min_frame_bits >= 28 && p.min_frame_bits <= p.max_frame_bits);
        }
    }

    #[test]
    fn series_skips_infeasible_max_frames() {
        let points = figure3_series(&[10], 28, 4, 4);
        assert!(points.is_empty());
    }

    #[test]
    fn degenerate_parameters_error() {
        assert!(clock_ratio_limit(0, 0, 4).is_err());
        assert!(clock_ratio_limit(100, 200, 4).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one sweep step")]
    fn zero_steps_is_rejected() {
        let _ = figure3_series(&[128], 28, 0, 4);
    }
}
