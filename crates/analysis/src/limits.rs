//! Frame-size and clock-rate limits (paper equations 4 and 7–9).

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors from the limit computations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AnalysisError {
    /// The configuration admits no buffer at all: `f_min − 1 − le ≤ 0`,
    /// i.e. the shortest frame is too short to leave room for the
    /// mandatory line-encoding bits.
    NoBufferRoom {
        /// Shortest frame in bits.
        min_frame_bits: u32,
        /// Line-encoding overhead in bits.
        line_encoding_bits: u32,
    },
    /// ρ (or another parameter) is outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::NoBufferRoom {
                min_frame_bits,
                line_encoding_bits,
            } => write!(
                f,
                "no buffer headroom: f_min {min_frame_bits} leaves nothing after \
                 the mandatory {line_encoding_bits} line-encoding bits"
            ),
            AnalysisError::InvalidParameter { name, value } => {
                write!(f, "parameter {name} = {value} outside its valid domain")
            }
        }
    }
}

impl Error for AnalysisError {}

/// Largest allowable frame (paper eq. 4):
/// `f_max = (f_min − 1 − le) / ρ`.
///
/// Obtained by equating the guardian's minimum buffer (eq. 1) with the
/// maximum it is allowed to have (eq. 3).
///
/// # Errors
///
/// [`AnalysisError::NoBufferRoom`] if the short-frame budget is already
/// exhausted by line encoding; [`AnalysisError::InvalidParameter`] if
/// `rho` is not in `(0, 1)`.
pub fn max_frame_bits(
    min_frame_bits: u32,
    line_encoding_bits: u32,
    rho: f64,
) -> Result<f64, AnalysisError> {
    if !(rho.is_finite() && rho > 0.0 && rho < 1.0) {
        return Err(AnalysisError::InvalidParameter {
            name: "rho",
            value: rho,
        });
    }
    let headroom = f64::from(min_frame_bits) - 1.0 - f64::from(line_encoding_bits);
    if headroom <= 0.0 {
        return Err(AnalysisError::NoBufferRoom {
            min_frame_bits,
            line_encoding_bits,
        });
    }
    Ok(headroom / rho)
}

/// Largest allowable relative clock-rate difference (paper eq. 7):
/// `ρ = (f_min − 1 − le) / f_max`.
///
/// # Errors
///
/// [`AnalysisError::NoBufferRoom`] if line encoding exhausts the
/// short-frame budget; [`AnalysisError::InvalidParameter`] if
/// `max_frame_bits == 0`.
pub fn max_rho(
    min_frame_bits: u32,
    max_frame_bits: u32,
    line_encoding_bits: u32,
) -> Result<f64, AnalysisError> {
    if max_frame_bits == 0 {
        return Err(AnalysisError::InvalidParameter {
            name: "max_frame_bits",
            value: 0.0,
        });
    }
    let headroom = f64::from(min_frame_bits) - 1.0 - f64::from(line_encoding_bits);
    if headroom <= 0.0 {
        return Err(AnalysisError::NoBufferRoom {
            min_frame_bits,
            line_encoding_bits,
        });
    }
    Ok(headroom / f64::from(max_frame_bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_types::constants::{
        I_FRAME_PROTOCOL_BITS, LINE_ENCODING_BITS, N_FRAME_MIN_BITS, X_FRAME_MAX_BITS,
    };

    #[test]
    fn paper_eq_six_115000_bits() {
        // f_max = (28 − 1 − 4) / 0.0002 = 115,000 bits.
        let f_max = max_frame_bits(N_FRAME_MIN_BITS, LINE_ENCODING_BITS, 0.0002).unwrap();
        assert!((f_max - 115_000.0).abs() < 1e-6);
    }

    #[test]
    fn paper_eq_eight_minimal_protocol_operation() {
        // ρ = (28 − 1 − 4) / 76 = 0.3026 → 30.26 %.
        let rho = max_rho(N_FRAME_MIN_BITS, I_FRAME_PROTOCOL_BITS, LINE_ENCODING_BITS).unwrap();
        assert!((rho - 23.0 / 76.0).abs() < 1e-12);
        assert_eq!(format!("{:.2}%", rho * 100.0), "30.26%");
    }

    #[test]
    fn paper_eq_nine_maximum_x_frames() {
        // ρ = (28 − 1 − 4) / 2076 = 0.0111 → 1.11 %.
        let rho = max_rho(N_FRAME_MIN_BITS, X_FRAME_MAX_BITS, LINE_ENCODING_BITS).unwrap();
        assert!((rho - 23.0 / 2076.0).abs() < 1e-12);
        assert_eq!(format!("{:.2}%", rho * 100.0), "1.11%");
    }

    #[test]
    fn eq_four_and_seven_are_inverses() {
        let rho = max_rho(28, 1000, 4).unwrap();
        let f_max = max_frame_bits(28, 4, rho).unwrap();
        assert!((f_max - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn larger_rate_differences_shrink_frames() {
        let tight = max_frame_bits(28, 4, 0.01).unwrap();
        let loose = max_frame_bits(28, 4, 0.001).unwrap();
        assert!(loose > tight);
    }

    #[test]
    fn exhausted_headroom_is_reported() {
        let err = max_frame_bits(5, 4, 0.01).unwrap_err();
        assert!(matches!(err, AnalysisError::NoBufferRoom { .. }));
        assert!(err.to_string().contains("line-encoding"));
        let err = max_rho(5, 100, 4).unwrap_err();
        assert!(matches!(err, AnalysisError::NoBufferRoom { .. }));
    }

    #[test]
    fn invalid_rho_is_reported() {
        for bad in [0.0, 1.0, -0.5, f64::NAN] {
            let err = max_frame_bits(28, 4, bad).unwrap_err();
            assert!(matches!(
                err,
                AnalysisError::InvalidParameter { name: "rho", .. }
            ));
        }
    }

    #[test]
    fn zero_frame_is_reported() {
        let err = max_rho(28, 0, 4).unwrap_err();
        assert!(matches!(
            err,
            AnalysisError::InvalidParameter {
                name: "max_frame_bits",
                ..
            }
        ));
    }
}
