//! Buffer bounds (paper equations 1 and 3, plus the Bauer et al. ablation).

/// Minimum guardian buffer in bits (paper eq. 1):
/// `B_min = le + ρ · f_max`.
///
/// `le` is the line-encoding overhead, `rho` the relative clock-rate
/// difference (eq. 2), `f_max` the longest frame on the network.
///
/// # Panics
///
/// Panics if `rho` is outside `[0, 1)` or not finite.
#[must_use]
pub fn min_buffer_bits(line_encoding_bits: u32, rho: f64, max_frame_bits: u32) -> f64 {
    assert!(
        rho.is_finite() && (0.0..1.0).contains(&rho),
        "ρ must be in [0, 1), got {rho}"
    );
    f64::from(line_encoding_bits) + rho * f64::from(max_frame_bits)
}

/// The Bauer et al. variant of eq. 1 with the `ρ · f_max` term doubled
/// ("Bauer et al. find that the ρ·f_max term was multiplied by a factor
/// of 2, however the assumptions ... are unclear"). Kept as the A1
/// ablation: it halves the admissible clock-rate difference.
///
/// # Panics
///
/// Panics if `rho` is outside `[0, 1)` or not finite.
#[must_use]
pub fn bauer_min_buffer_bits(line_encoding_bits: u32, rho: f64, max_frame_bits: u32) -> f64 {
    assert!(
        rho.is_finite() && (0.0..1.0).contains(&rho),
        "ρ must be in [0, 1), got {rho}"
    );
    f64::from(line_encoding_bits) + 2.0 * rho * f64::from(max_frame_bits)
}

/// Maximum safe guardian buffer in bits (paper eq. 3):
/// `B_max = f_min − 1` — strictly less than the shortest frame, so the
/// guardian can never hold (and hence never replay) a complete frame.
///
/// # Panics
///
/// Panics if `min_frame_bits == 0`.
#[must_use]
pub fn max_buffer_bits(min_frame_bits: u32) -> u32 {
    assert!(min_frame_bits > 0, "frames have at least one bit");
    min_frame_bits - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_types::constants::{LINE_ENCODING_BITS, N_FRAME_MIN_BITS, X_FRAME_MAX_BITS};

    #[test]
    fn min_buffer_is_line_encoding_plus_slip() {
        // ρ = 0: only the line-encoding bits.
        assert!((min_buffer_bits(4, 0.0, 1000) - 4.0).abs() < f64::EPSILON);
        // 1% slip over 1000 bits: 10 extra bits.
        assert!((min_buffer_bits(4, 0.01, 1000) - 14.0).abs() < 1e-9);
    }

    #[test]
    fn bauer_variant_doubles_the_slip_term() {
        let ours = min_buffer_bits(4, 0.01, 1000);
        let bauer = bauer_min_buffer_bits(4, 0.01, 1000);
        assert!((bauer - ours - 10.0).abs() < 1e-9);
    }

    #[test]
    fn max_buffer_is_one_below_smallest_frame() {
        assert_eq!(max_buffer_bits(N_FRAME_MIN_BITS), 27);
        assert_eq!(max_buffer_bits(1), 0);
    }

    #[test]
    fn paper_scenario_respects_both_bounds() {
        // ±100 ppm and the longest TTP/C X-frame: B_min ≈ 4 + 0.42 bits —
        // comfortably below B_max = 27.
        let b_min = min_buffer_bits(LINE_ENCODING_BITS, 0.0002, X_FRAME_MAX_BITS);
        assert!(b_min < f64::from(max_buffer_bits(N_FRAME_MIN_BITS)));
    }

    #[test]
    #[should_panic(expected = "ρ must be in [0, 1)")]
    fn rho_is_range_checked() {
        let _ = min_buffer_bits(4, 1.0, 100);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_length_frames_are_rejected() {
        let _ = max_buffer_bits(0);
    }
}
