//! Plain-text tables for the experiment binaries.
//!
//! The `tta-bench` binaries print paper-style tables; this tiny formatter
//! keeps them aligned without pulling in a dependency.

use std::fmt;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    #[must_use]
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the header's.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity {} does not match {} headers",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]).row(["b", "10000"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("name "));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines.len(), 4);
        // Columns align: "value" column starts at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
    }

    #[test]
    fn tracks_row_count() {
        let mut t = Table::new(["a"]);
        assert!(t.is_empty());
        t.row(["x"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_is_rejected() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }
}
